//! Monochromatic reverse top-k and its why-not question in 2-D.
//!
//! Without a known customer population, `MRTOPk(q)` is the set of *all*
//! weighting vectors whose top-k contains `q` — in 2-D an exact union of
//! intervals of the first weight component (the paper's Figure 2). A
//! why-not vector is any weight outside those intervals; this example
//! shows how MQP widens the qualifying region to cover one.
//!
//! Run with: `cargo run --release --example monochromatic_2d`

use wqrtq::core::mqp::mqp;
use wqrtq::data::synthetic::independent;
use wqrtq::geom::Weight;
use wqrtq::query::mrtopk::{monochromatic_reverse_topk_2d, weight_in_result};
use wqrtq::rtree::RTree;

fn fmt_intervals(iv: &[wqrtq::query::mrtopk::WeightInterval]) -> String {
    if iv.is_empty() {
        return "∅".into();
    }
    iv.iter()
        .map(|i| format!("[{:.4}, {:.4}]", i.lo, i.hi))
        .collect::<Vec<_>>()
        .join(" ∪ ")
}

fn main() {
    let k = 15;
    let data = independent(5_000, 2, 31);
    let tree = RTree::bulk_load(2, &data.coords);

    // A product that is strong on attribute 0, weaker on attribute 1:
    // it qualifies for price-focused weights but not balanced ones.
    let q = [0.005, 0.35];

    let before = monochromatic_reverse_topk_2d(&data.coords, &q, k);
    println!("MRTOP{k}(q) for q = {q:?}:");
    println!(
        "  qualifying weights x (w = (x, 1−x)): {}",
        fmt_intervals(&before)
    );

    // A why-not weighting vector that cares mostly about attribute 1.
    let why_not_x = 0.10;
    assert!(
        !weight_in_result(&before, why_not_x),
        "pick a why-not weight outside the region"
    );
    println!("\nwhy-not vector: w = ({why_not_x}, {})", 1.0 - why_not_x);

    // Refine by modifying q (solution 1 works identically for the
    // monochromatic variant — Figure 3(a) of the paper).
    let wm = vec![Weight::from_first_2d(why_not_x)];
    let res = mqp(&tree, &q, k, &wm).expect("refinement succeeds");
    println!(
        "MQP: move q {:?} → ({:.4}, {:.4})   penalty {:.4}",
        q, res.q_prime[0], res.q_prime[1], res.penalty
    );

    let after = monochromatic_reverse_topk_2d(&data.coords, &res.q_prime, k);
    println!("\nMRTOP{k}(q′):");
    println!("  qualifying weights: {}", fmt_intervals(&after));
    assert!(
        weight_in_result(&after, why_not_x),
        "the why-not weight must now qualify"
    );
    println!("\nthe why-not vector x = {why_not_x} is now inside the region ✓");

    // The region can only have grown where it matters: every previously
    // qualifying weight whose intervals we re-check still qualifies.
    for i in &before {
        let mid = 0.5 * (i.lo + i.hi);
        assert!(
            weight_in_result(&after, mid),
            "refinement must not lose existing supporters at x = {mid}"
        );
    }
    println!("existing supporters retained ✓");
}
