//! Serving the paper's Figure 1 example over TCP.
//!
//! Starts a [`wqrtq_server::Server`] on an ephemeral port, registers the
//! products dataset and the customer population over the wire, then
//! drives pipelined queries through a [`wqrtq_server::Client`] — the same
//! protocol `server_bench` load-tests.
//!
//! ```text
//! cargo run --example server_quickstart
//! ```

use wqrtq::prelude::*;
use wqrtq_server::ClientFrame;

fn main() {
    let server = Server::builder()
        .workers(2)
        .admission_capacity(64)
        .bind("127.0.0.1:0")
        .expect("bind ephemeral port");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .register_dataset(
            "products",
            2,
            &[
                2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
            ],
        )
        .expect("register products");
    client
        .register_weights(
            "customers",
            &[
                vec![0.1, 0.9], // Kevin
                vec![0.5, 0.5], // Tony
                vec![0.3, 0.7], // Anna
                vec![0.9, 0.1], // Julia
            ],
        )
        .expect("register customers");

    // One blocking round trip.
    let response = client
        .submit(&Request::ReverseTopKBi {
            dataset: "products".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![4.0, 4.0],
            k: 3,
        })
        .expect("reverse top-k");
    println!("customers with Apple in their top-3: {response:?}");

    // Pipelining: several requests in flight on one connection, answers
    // matched back by request id (they may arrive out of order).
    let ids: Vec<u64> = (1..=3)
        .map(|k| {
            client
                .send(&ClientFrame::Submit(Request::TopK {
                    dataset: "products".into(),
                    weight: vec![0.5, 0.5],
                    k,
                }))
                .expect("pipelined send")
        })
        .collect();
    for _ in &ids {
        let (id, frame) = client.recv().expect("pipelined recv");
        println!("response for request {id}: {frame:?}");
    }

    println!("server stats: {:?}", server.stats());
    server.shutdown();
    println!("drained and shut down");
}
