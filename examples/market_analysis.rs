//! Market analysis with bichromatic reverse top-k (the paper's §1 use
//! case at scale).
//!
//! A utility provider models 5,000 households' expenditure sensitivities
//! as weighting vectors and positions a new tariff bundle `q`. The
//! reverse top-k query finds households that would shortlist the bundle;
//! the why-not machinery then answers "how do we win back a lost
//! segment?" with minimum-penalty suggestions.
//!
//! Run with: `cargo run --release --example market_analysis`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wqrtq::core::framework::{RefinedQuery, Wqrtq};
use wqrtq::data::realistic::household_like_scaled;
use wqrtq::geom::Weight;
use wqrtq::query::brtopk::bichromatic_reverse_topk_rta_with_stats;
use wqrtq::query::rank::rank_of_point;
use wqrtq::rtree::RTree;

fn main() {
    let k = 20;
    // Competing tariff bundles (6 cost attributes, smaller = better).
    let market = household_like_scaled(20_000, 11);
    let tree = RTree::bulk_load(market.dim, &market.coords);

    // Household sensitivity profiles: simplex weights around archetypes.
    let mut rng = StdRng::seed_from_u64(99);
    let customers: Vec<Weight> = (0..5_000)
        .map(|_| {
            let raw: Vec<f64> = (0..market.dim).map(|_| rng.gen_range(0.05..1.0)).collect();
            Weight::normalized(raw)
        })
        .collect();

    // Our bundle: competitive but not dominating.
    let q: Vec<f64> = {
        let base = market.point(4242);
        base.iter().map(|c| (c * 0.98).max(0.0)).collect()
    };

    let (result, stats) = bichromatic_reverse_topk_rta_with_stats(&tree, &customers, &q, k);
    println!(
        "reverse top-{k}: {} of {} households shortlist the bundle",
        result.len(),
        customers.len()
    );
    println!(
        "  (RTA pruning: {} buffer rejections, {} index probes)",
        stats.buffer_prunes, stats.tree_verifications
    );

    // Pick a lost segment: the three non-result households whose rank of
    // q is closest to k (the most winnable).
    let mut lost: Vec<(usize, usize)> = (0..customers.len())
        .filter(|i| !result.contains(i))
        .map(|i| (i, rank_of_point(&tree, &customers[i], &q)))
        .collect();
    lost.sort_by_key(|&(_, r)| r);
    let segment: Vec<Weight> = lost
        .iter()
        .take(3)
        .map(|&(i, _)| customers[i].clone())
        .collect();
    println!(
        "\nwhy-not segment (ranks of q): {:?}",
        lost.iter().take(3).map(|&(_, r)| r).collect::<Vec<_>>()
    );

    let wqrtq = Wqrtq::new(&tree, &q, k).expect("dimensions match");

    for (i, w) in segment.iter().enumerate() {
        let e = wqrtq.explain(w, 3);
        println!(
            "  household {i}: q ranks {} — {} cheaper bundles (top culprit scores {:.4})",
            e.rank,
            e.rank - 1,
            e.culprits.first().map(|c| c.score).unwrap_or(f64::NAN)
        );
    }

    println!("\nrefinement options (penalty-ordered):");
    let answers = wqrtq
        .all_refinements(&segment, 400, 400, 7)
        .expect("refinement succeeds");
    for a in &answers {
        match &a.refined {
            RefinedQuery::QueryPoint { q_prime } => {
                let cut: f64 = q.iter().zip(q_prime).map(|(a, b)| (a - b).max(0.0)).sum();
                println!(
                    "  reprice the bundle     penalty {:.4} (total attribute cut {:.4})",
                    a.penalty, cut
                );
            }
            RefinedQuery::Preferences { k: k2, .. } => println!(
                "  marketing campaign     penalty {:.4} (shift 3 profiles, k′ = {k2})",
                a.penalty
            ),
            RefinedQuery::Everything { k: k2, .. } => println!(
                "  combined strategy      penalty {:.4} (small reprice + nudge, k′ = {k2})",
                a.penalty
            ),
        }
        assert!(wqrtq.verify(&segment, a));
    }
    println!("\nall strategies verified against the index");
}
