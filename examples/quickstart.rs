//! Quickstart: the paper's Figure 1 scenario, end to end.
//!
//! Apple issues a reverse top-3 query for its new computer q = (4, 4).
//! Tony and Anna are returned, but existing customers Kevin and Julia are
//! not — the why-not question. We explain the omission and compute all
//! three minimum-penalty refinements.
//!
//! Run with: `cargo run --release --example quickstart`

use wqrtq::core::framework::{RefinedQuery, Wqrtq};
use wqrtq::data::figure1;
use wqrtq::query::brtopk::bichromatic_reverse_topk_rta;
use wqrtq::rtree::RTree;

fn main() {
    let data = figure1::dataset();
    let tree = RTree::bulk_load(2, &data.flat_products());
    let q = data.apple.coords();
    let k = 3;

    println!("== Reverse top-{k} query for Apple q = {q:?} ==");
    let result = bichromatic_reverse_topk_rta(&tree, &data.customers, q, k);
    for &i in &result {
        println!(
            "  in result: {:8} {:?}",
            data.customer_names[i], data.customers[i]
        );
    }
    let missing: Vec<usize> = (0..data.customers.len())
        .filter(|i| !result.contains(i))
        .collect();
    for &i in &missing {
        println!(
            "  MISSING:   {:8} {:?}",
            data.customer_names[i], data.customers[i]
        );
    }

    let wqrtq = Wqrtq::new(&tree, q, k).expect("dimensions match");
    let why_not = data.why_not_customers();

    println!("\n== Aspect 1: why are Kevin and Julia missing? ==");
    for (name, w) in ["Kevin", "Julia"].iter().zip(&why_not) {
        let e = wqrtq.explain(w, 10);
        let culprits: Vec<String> = e
            .culprits
            .iter()
            .map(|c| {
                format!(
                    "{} (score {:.2})",
                    data.product_names[c.id as usize], c.score
                )
            })
            .collect();
        println!(
            "  {name}: q ranks {} — beaten by {}",
            e.rank,
            culprits.join(", ")
        );
    }

    println!("\n== Aspect 2: minimum-penalty refinements ==");
    let answers = wqrtq
        .all_refinements(&why_not, 800, 800, 2015)
        .expect("refinement succeeds");
    for a in &answers {
        match &a.refined {
            RefinedQuery::QueryPoint { q_prime } => println!(
                "  MQP   penalty {:.3}: redesign the computer as ({:.2}, {:.2})",
                a.penalty, q_prime[0], q_prime[1]
            ),
            RefinedQuery::Preferences { why_not, k } => {
                println!(
                    "  MWK   penalty {:.3}: influence preferences (k′ = {k}):",
                    a.penalty
                );
                for (name, w) in ["Kevin", "Julia"].iter().zip(why_not) {
                    println!("          {name} → ({:.3}, {:.3})", w[0], w[1]);
                }
            }
            RefinedQuery::Everything {
                q_prime,
                why_not,
                k,
            } => {
                println!(
                    "  MQWK  penalty {:.3}: compromise — q′ = ({:.2}, {:.2}), k′ = {k}",
                    a.penalty, q_prime[0], q_prime[1]
                );
                for (name, w) in ["Kevin", "Julia"].iter().zip(why_not) {
                    println!("          {name} → ({:.3}, {:.3})", w[0], w[1]);
                }
            }
        }
        assert!(wqrtq.verify(&why_not, a), "refinement must verify");
    }
    println!("\nAll refinements verified: Kevin and Julia now see Apple in their top-k.");
}
