//! Brute-force differential check: new RTA vs the naive oracle on random
//! tie-heavy workloads (kept as a developer smoke tool).
use wqrtq_geom::{Point, Weight};
use wqrtq_query::brtopk::*;
use wqrtq_rtree::RTree;

fn main() {
    let mut state = 1u64;
    let mut rnd = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for trial in 0..20000 {
        let n = 5 + (rnd() * 40.0) as usize;
        let k = 1 + (rnd() * 5.0) as usize;
        let ties = 1 + (rnd() * 3.0) as usize;
        let q = [rnd() * 10.0, rnd() * 10.0];
        let mut pts: Vec<[f64; 2]> = (0..n).map(|_| [rnd() * 10.0, rnd() * 10.0]).collect();
        for _ in 0..ties {
            pts.push(q);
        }
        let points: Vec<Point> = pts.iter().map(|p| Point::from(*p)).collect();
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
        let weights: Vec<Weight> = (0..12)
            .map(|i| Weight::from_first_2d((i as f64 + 0.5) / 12.0))
            .collect();
        let naive = bichromatic_reverse_topk_naive(&points, &weights, &q, k);
        let rta = bichromatic_reverse_topk_rta(&tree, &weights, &q, k);
        assert_eq!(naive, rta, "trial {trial} n={n} k={k} ties={ties} q={q:?}");
    }
    println!("20000 tie-heavy trials: RTA == naive");
}
