//! The why-not advisor walkthrough: one request, a ranked plan.
//!
//! The paper's deliverable is not "run MQP, MWK and MQWK and compare by
//! hand" — it is a *recommendation*: the minimum-penalty refinement
//! under the combined penalty model `αΔk + βΔW` / `γΔq + λ·…`. This
//! example walks the Figure-1 market through all three surfaces of the
//! new `WhyNot` API:
//!
//! 1. the core facade ([`Wqrtq::advise`]) for one-shot library use,
//! 2. the engine ([`Request::WhyNot`]) for cached, pooled serving,
//! 3. wire protocol v2 ([`Client::submit_plan`]) with progressive
//!    partial frames streaming over TCP.
//!
//! ```text
//! cargo run --example whynot_advisor
//! ```

use wqrtq::data::figure1;
use wqrtq::prelude::*;

fn main() {
    let fig = figure1::dataset();
    let coords = fig.flat_products();
    let apple = fig.apple.coords().to_vec();

    // Kevin and Julia expected Apple in their top-3; it is not there.
    let kevin = vec![0.1, 0.9];
    let julia = vec![0.9, 0.1];

    // ── 1. The core facade: advise() in-process ──────────────────────
    let tree = RTree::bulk_load(2, &coords);
    let wqrtq = Wqrtq::new(&tree, &apple, 3).unwrap();
    let why_not = vec![Weight::new(kevin.clone()), Weight::new(julia.clone())];
    let options = WhyNotOptions::default();
    let plan = wqrtq.advise(&why_not, &options).unwrap();

    println!("core advisor — k'max = {}, ranked plan:", plan.k_max);
    for (i, step) in plan.steps.iter().enumerate() {
        let marker = if i == 0 {
            "→ recommended"
        } else {
            "  alternative"
        };
        println!(
            "{marker} {:>4}: penalty {:.4} (Δq {:.3}, Δk-term {:.3}, ΔW-term {:.3}), \
             verified: {}, exact: {}",
            step.strategy.name(),
            step.answer.penalty,
            step.breakdown.query_term,
            step.breakdown.k_term,
            step.breakdown.weight_term,
            step.verified,
            step.stats.exact,
        );
    }

    // ── 2. The engine: one cached, pooled request ────────────────────
    let engine = Engine::builder().workers(2).build();
    engine.register_dataset("products", 2, coords).unwrap();
    let request = Request::WhyNot {
        dataset: "products".into(),
        q: apple.clone(),
        k: 3,
        why_not: vec![kevin.clone(), julia.clone()],
        options: WhyNotOptions::default(),
    };
    match engine.submit(request.clone()) {
        Response::Plan(plan) => {
            let best = plan.recommended();
            println!(
                "\nengine — {} recommended at penalty {:.4} ({} explanations, {} steps)",
                best.strategy.name(),
                best.refinement.penalty,
                plan.explanations.len(),
                plan.steps.len(),
            );
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // ── 3. Wire v2: negotiation + progressive partial frames ─────────
    let server = Server::builder()
        .engine(engine)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = wqrtq::server::Client::connect_v2(server.local_addr()).unwrap();
    println!("\nwire v2 — negotiated protocol v{}", client.version());

    // A fresh query point so the plan is computed live (not a cache
    // hit) and the partial frames actually stream.
    let streamed = Request::WhyNot {
        dataset: "products".into(),
        q: vec![4.2, 3.9],
        k: 3,
        why_not: vec![kevin, julia],
        options: WhyNotOptions::default(),
    };
    let plan = client
        .submit_plan(&streamed, |delta| match delta {
            PlanDelta::Explained { index, explanation } => println!(
                "  partial: vector #{index} ranks {} ({} culprits)",
                explanation.rank,
                explanation.culprits.len()
            ),
            PlanDelta::Step(step) => println!(
                "  partial: {} done at penalty {:.4}",
                step.strategy.name(),
                step.refinement.penalty
            ),
        })
        .unwrap();
    println!(
        "  final: {} recommended at penalty {:.4}",
        plan.recommended().strategy.name(),
        plan.recommended().refinement.penalty,
    );
    server.shutdown();
}
