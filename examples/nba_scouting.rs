//! Scouting with a 13-dimensional NBA-like dataset.
//!
//! A player's season line `q` (13 stat categories, minimisation form:
//! 0 = best) should appear in the top-k of several coaching staffs'
//! evaluation profiles, but does not. The why-not machinery explains
//! which competing seasons block each profile and computes the cheapest
//! training plan (MQP: which categories to improve and by how much) and
//! the cheapest scheme change (MWK: how the staff could re-weight).
//!
//! Run with: `cargo run --release --example nba_scouting`

use wqrtq::core::framework::{RefinedQuery, Wqrtq};
use wqrtq::data::realistic::nba_like_scaled;
use wqrtq::geom::Weight;
use wqrtq::query::rank::rank_of_point;
use wqrtq::rtree::RTree;

const CATS: [&str; 13] = [
    "PTS", "REB", "AST", "STL", "BLK", "FG%", "3P%", "FT%", "MIN", "GP", "TOV", "PF", "+/-",
];

fn main() {
    let k = 25;
    let league = nba_like_scaled(8_000, 2024);
    let tree = RTree::bulk_load(league.dim, &league.coords);

    // Our player: the league's ~60th season by balanced score, slightly
    // improved (so q is not an exact dataset point). Close enough to the
    // top that modest changes can crack the shortlists.
    let balanced = Weight::uniform(13);
    let mut scored: Vec<(usize, f64)> = (0..league.len())
        .map(|i| (i, balanced.score(league.point(i))))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let q: Vec<f64> = league
        .point(scored[60].0)
        .iter()
        .map(|c| (c * 0.97).max(0.0))
        .collect();

    // Three coaching profiles: offense-first, defense-first, balanced.
    let mut offense = vec![0.02; 13];
    offense[0] = 0.30; // PTS
    offense[2] = 0.25; // AST
    offense[6] = 0.23; // 3P%
    let mut defense = vec![0.02; 13];
    defense[1] = 0.28; // REB
    defense[3] = 0.25; // STL
    defense[4] = 0.25; // BLK
    let staffs = vec![
        ("offense-first", Weight::normalized(offense)),
        ("defense-first", Weight::normalized(defense)),
        ("balanced", Weight::uniform(13)),
    ];

    println!("player line vs league (top-{k} target):");
    for (name, w) in &staffs {
        let r = rank_of_point(&tree, w, &q);
        let verdict = if r <= k { "IN" } else { "out" };
        println!("  {name:14} rank {r:5} [{verdict}]");
    }

    // The why-not set: every profile that leaves the player out.
    let why_not: Vec<Weight> = staffs
        .iter()
        .filter(|(_, w)| rank_of_point(&tree, w, &q) > k)
        .map(|(_, w)| w.clone())
        .collect();
    if why_not.is_empty() {
        println!("no why-not profiles — nothing to refine");
        return;
    }
    println!("\n{} profile(s) exclude the player", why_not.len());

    let wqrtq = Wqrtq::new(&tree, &q, k).expect("dimensions match");

    // Training plan: MQP tells us which categories to improve.
    let answer = wqrtq.modify_query(&why_not).expect("MQP succeeds");
    if let RefinedQuery::QueryPoint { q_prime } = &answer.refined {
        println!("\ntraining plan (penalty {:.4}):", answer.penalty);
        for (i, (old, new)) in q.iter().zip(q_prime).enumerate() {
            let gain = old - new;
            if gain > 1e-4 {
                println!(
                    "  improve {:4} by {:5.1}% of the league scale",
                    CATS[i],
                    gain * 100.0
                );
            }
        }
    }
    assert!(wqrtq.verify(&why_not, &answer));

    // Alternative: how little would the staffs need to re-weight?
    let answer = wqrtq
        .modify_preferences(&why_not, 600, 7)
        .expect("MWK succeeds");
    if let RefinedQuery::Preferences {
        why_not: refined,
        k: k2,
    } = &answer.refined
    {
        println!(
            "\nscheme change (penalty {:.4}, k′ = {k2}):",
            answer.penalty
        );
        for (orig, new) in why_not.iter().zip(refined) {
            let shift: f64 = orig
                .as_slice()
                .iter()
                .zip(new.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum();
            println!("  profile total weight shift: {shift:.4}");
        }
    }
    assert!(wqrtq.verify(&why_not, &answer));

    // And the negotiated compromise.
    let answer = wqrtq
        .modify_all(&why_not, 300, 300, 7)
        .expect("MQWK succeeds");
    println!(
        "\ncompromise penalty: {:.4} (never worse than either)",
        answer.penalty
    );
    assert!(wqrtq.verify(&why_not, &answer));
}
