//! Serving a mixed batch through the concurrent engine.
//!
//! Registers the paper's Figure-1 example and a synthetic 3-D dataset in
//! the catalog, fans a mixed batch (all five request kinds) across a
//! multi-worker [`Engine`], re-submits it to show the result cache at
//! work, and prints the metrics snapshot.
//!
//! ```text
//! cargo run --release --example engine_serving
//! ```

use wqrtq::data::figure1;
use wqrtq::data::synthetic::independent;
use wqrtq::prelude::*;

fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let engine = Engine::builder()
        .workers(workers)
        .cache_capacity(128)
        .build();

    // Catalog: the Figure-1 running example + a 20K-point synthetic set.
    let fig = figure1::dataset();
    engine
        .register_dataset("figure1", 2, fig.flat_products())
        .expect("register figure1");
    engine
        .register_weights("customers", fig.customers.clone())
        .expect("register customers");
    let ds = independent(20_000, 3, 2015);
    engine
        .register_dataset("synthetic", 3, ds.coords)
        .expect("register synthetic");

    // A mixed batch: every request kind, two datasets.
    let mut batch = vec![
        Request::TopK {
            dataset: "figure1".into(),
            weight: vec![0.5, 0.5],
            k: 3,
        },
        Request::ReverseTopKBi {
            dataset: "figure1".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![4.0, 4.0],
            k: 3,
        },
        Request::ReverseTopKMono {
            dataset: "figure1".into(),
            q: vec![4.0, 4.0],
            k: 3,
            samples: 0,
            seed: 0,
        },
        Request::WhyNotExplain {
            dataset: "figure1".into(),
            weight: vec![0.1, 0.9],
            q: vec![4.0, 4.0],
            limit: 5,
        },
        Request::WhyNotRefine {
            dataset: "figure1".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
            strategy: RefineStrategy::Mqp,
        },
        Request::WhyNotRefine {
            dataset: "figure1".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
            strategy: RefineStrategy::Mwk {
                sample_size: 200,
                seed: 7,
            },
        },
    ];
    for i in 0..24 {
        let t = i as f64 / 24.0;
        batch.push(Request::TopK {
            dataset: "synthetic".into(),
            weight: vec![0.2 + 0.5 * t, 0.5 - 0.3 * t, 0.3 - 0.2 * t],
            k: 10,
        });
    }

    println!(
        "submitting a batch of {} requests over {} workers…\n",
        batch.len(),
        engine.worker_count()
    );
    let responses = engine.submit_batch(batch.clone());

    describe("TOP3(Tony) on Figure 1", &responses[0], &fig);
    describe("BRTOP3(Apple) population", &responses[1], &fig);
    describe("MRTOP3(Apple) intervals", &responses[2], &fig);
    describe("Why-not Kevin, culprits", &responses[3], &fig);
    describe("MQP refinement", &responses[4], &fig);
    describe("MWK refinement", &responses[5], &fig);

    // Second pass: identical batch, now served from the result cache.
    let again = engine.submit_batch(batch);
    assert_eq!(responses, again, "cache must be transparent");

    println!("\n{}", engine.metrics());
}

fn describe(label: &str, response: &Response, fig: &figure1::Figure1) {
    match response {
        Response::TopK(points) => {
            let names: Vec<&str> = points
                .iter()
                .map(|&(id, _)| fig.product_names[id as usize])
                .collect();
            println!("{label}: {names:?}");
        }
        Response::ReverseTopKBi(members) => {
            let names: Vec<&str> = members.iter().map(|&i| fig.customer_names[i]).collect();
            println!("{label}: {names:?}");
        }
        Response::MonoExact(intervals) => {
            let pretty: Vec<String> = intervals
                .iter()
                .map(|(lo, hi)| format!("[{lo:.3}, {hi:.3}]"))
                .collect();
            println!("{label}: qualifying w₁ ranges {pretty:?}");
        }
        Response::MonoSampled {
            volume_fraction, ..
        } => println!(
            "{label}: ≈{:.1}% of the weight simplex",
            100.0 * volume_fraction
        ),
        Response::Explanation { rank, culprits, .. } => {
            let names: Vec<&str> = culprits
                .iter()
                .map(|&(id, _)| fig.product_names[id as usize])
                .collect();
            println!("{label}: rank {rank}, outranked by {names:?}");
        }
        Response::Refinement(r) => println!(
            "{label}: penalty {:.4}, q′ {:?}, k′ {:?}",
            r.penalty, r.q_prime, r.k
        ),
        Response::Plan(plan) => {
            let best = plan.recommended();
            println!(
                "{label}: {} recommended at penalty {:.4} ({} alternatives)",
                best.strategy.name(),
                best.refinement.penalty,
                plan.steps.len() - 1
            );
        }
        Response::Mutated { live_len } => {
            println!("{label}: mutation applied, {live_len} live points");
        }
        Response::Stats(stats) => {
            println!(
                "{label}: {} requests served",
                stats.metrics.total_requests()
            );
        }
        Response::Error(e) => println!("{label}: ERROR {e}"),
    }
}
