//! # WQRTQ — Why-not Questions on Reverse Top-k Queries
//!
//! A Rust reproduction of *Gao, Liu, Chen, Zheng, Zhou: "Answering Why-not
//! Questions on Reverse Top-k Queries", PVLDB 8(7), 2015*.
//!
//! Given a reverse top-k query (monochromatic or bichromatic) whose result
//! does not contain a set of expected weighting vectors `Wm`, this library
//!
//! 1. **explains** which data points are responsible for the omission, and
//! 2. **refines** the query with minimum penalty so that the refined result
//!    contains `Wm`, via three strategies:
//!    * [`core::mqp`](mod@core::mqp) — modify the query point `q` (safe region + QP),
//!    * [`core::mwk`](mod@core::mwk) — modify `Wm` and `k` (hyperplane sampling),
//!    * [`core::mqwk`](mod@core::mqwk) — modify `q`, `Wm` and `k` simultaneously.
//!
//! The facade crate re-exports every sub-crate under a stable path. See the
//! README for a quick start and `DESIGN.md` for the architecture.
//!
//! ```
//! use wqrtq::data::figure1;
//! use wqrtq::query::brtopk::bichromatic_reverse_topk_naive;
//!
//! let example = figure1::dataset();
//! let res = bichromatic_reverse_topk_naive(
//!     &example.products, &example.customers, example.apple.coords(), 3);
//! // Tony and Anna rank Apple among their top-3 (paper §1).
//! assert_eq!(res, vec![1, 2]);
//! ```

pub use wqrtq_core as core;
pub use wqrtq_data as data;
pub use wqrtq_engine as engine;
pub use wqrtq_geom as geom;
pub use wqrtq_linalg as linalg;
pub use wqrtq_obs as obs;
pub use wqrtq_qp as qp;
pub use wqrtq_query as query;
pub use wqrtq_rtree as rtree;
pub use wqrtq_server as server;

pub use wqrtq_core::framework::{RefinedQuery, Wqrtq, WqrtqAnswer};
pub use wqrtq_engine::Engine;
pub use wqrtq_geom::{Point, Weight};

/// The common imports for serving workloads: the engine with its request
/// vocabulary, the one-shot framework facade, and the vocabulary types.
///
/// ```
/// use wqrtq::prelude::*;
///
/// let engine = Engine::builder().workers(2).build();
/// engine.register_dataset("p", 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let response = engine.submit(Request::TopK {
///     dataset: "p".into(),
///     weight: vec![0.5, 0.5],
///     k: 1,
/// });
/// assert!(!response.is_error());
/// ```
pub mod prelude {
    pub use wqrtq_core::advisor::{
        PenaltyBreakdown, RankedStep, RefinementPlan, StrategyKind, WhyNotOptions,
    };
    pub use wqrtq_core::framework::{RefinedQuery, Wqrtq, WqrtqAnswer};
    pub use wqrtq_core::penalty::Tolerances;
    pub use wqrtq_engine::{
        CatalogStats, DatasetEpoch, Engine, EngineBuilder, HistogramSnapshot, MetricsSnapshot,
        Plan, PlanDelta, PlanExplanation, PlanStep, RefineStrategy, Request, RequestKind, Response,
        ServerCounters, SlowRequest, Stage, StatsSnapshot, TraceSnapshot, WeightSet,
    };
    pub use wqrtq_geom::{DeltaView, Point, Weight};
    pub use wqrtq_rtree::RTree;
    pub use wqrtq_server::{Client, Server, ServerBuilder};
}
