//! LU factorisation with partial pivoting for general square systems.
//!
//! Used where symmetry is not guaranteed (e.g. validating QP KKT systems in
//! tests) and as a fallback solver.

use crate::matrix::Matrix;

/// Error returned for (numerically) singular matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular;

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for Singular {}

/// A packed LU factorisation `P·A = L·U`.
#[derive(Clone, Debug)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factors a general square matrix with partial pivoting.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn factor(a: &Matrix) -> Result<Self, Singular> {
        assert_eq!(a.rows(), a.cols(), "matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Pivot selection.
            let mut pivot = col;
            let mut best = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-14 {
                return Err(Singular);
            }
            if pivot != col {
                perm.swap(pivot, col);
                sign = -sign;
                for c in 0..n {
                    let tmp = lu[(pivot, c)];
                    lu[(pivot, c)] = lu[(col, c)];
                    lu[(col, c)] = tmp;
                }
            }
            // Elimination.
            let d = lu[(col, col)];
            for r in (col + 1)..n {
                let f = lu[(r, col)] / d;
                lu[(r, col)] = f;
                for c in (col + 1)..n {
                    let v = lu[(col, c)];
                    lu[(r, c)] -= f * v;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "dimension mismatch");
        // Apply permutation, then forward substitution (unit lower).
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for k in 0..i {
                let f = self.lu[(i, k)];
                y[i] -= f * y[k];
            }
        }
        // Backward substitution (upper).
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let f = self.lu[(i, k)];
                y[i] -= f * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[7.0, 9.0]);
        assert_eq!(x, vec![9.0, 7.0]);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::factor(&a), Err(Singular)));
    }

    #[test]
    fn determinant_of_identity() {
        let lu = Lu::factor(&Matrix::identity(4)).unwrap();
        assert_eq!(lu.det(), 1.0);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_is_identity(
            m in proptest::collection::vec(-3.0f64..3.0, 16),
            b in proptest::collection::vec(-5.0f64..5.0, 4),
        ) {
            let mut a = Matrix::from_rows(4, 4, m);
            a.add_diag(5.0); // keep well-conditioned
            let lu = Lu::factor(&a).unwrap();
            let x = lu.solve(&b);
            let r = a.matvec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-7);
            }
        }
    }
}
