//! Dense row-major matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or any entry is non-finite.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "matrix entries must be finite"
        );
        Self { rows, cols, data }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A diagonal matrix from the given entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|r| crate::dot(self.row(r), x)).collect()
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            crate::axpy(xr, self.row(r), &mut out);
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if inner dimensions mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `AᵀDA` for a diagonal `D` given by `d` — the reduced-KKT update of
    /// the interior-point method, computed without materialising `D`.
    ///
    /// # Panics
    /// Panics if `d.len() != rows`.
    pub fn t_diag_self(&self, d: &[f64]) -> Matrix {
        assert_eq!(d.len(), self.rows, "dimension mismatch");
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for (r, &dr) in d.iter().enumerate() {
            if dr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for i in 0..n {
                let s = dr * row[i];
                if s == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += s * row[j];
                }
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "column mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_rows(self.rows, self.cols, data)
    }

    /// Adds `v` to every diagonal entry (in place).
    ///
    /// # Panics
    /// Panics unless the matrix is square.
    pub fn add_diag(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "matrix must be square");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Maximum absolute entry.
    pub fn norm_inf(&self) -> f64 {
        crate::norm_inf(&self.data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        let d = Matrix::diag(&[2.0, 5.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_rows_length_check() {
        let _ = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn t_diag_self_matches_explicit_product() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 0.0, 2.0, 1.0, 0.0, 3.0]);
        let d = [2.0, 0.5, 1.0];
        let fast = a.t_diag_self(&d);
        let explicit = a.transpose().matmul(&Matrix::diag(&d)).matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((fast[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_and_add_diag() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let c = a.add(&b);
        assert_eq!(c[(0, 0)], 2.0);
        a.add_diag(3.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    proptest! {
        #[test]
        fn matvec_t_is_transpose_matvec(
            data in proptest::collection::vec(-10.0f64..10.0, 12),
            x in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            let a = Matrix::from_rows(3, 4, data);
            let lhs = a.matvec_t(&x);
            let rhs = a.transpose().matvec(&x);
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn matmul_identity_is_noop(
            data in proptest::collection::vec(-10.0f64..10.0, 9),
        ) {
            let a = Matrix::from_rows(3, 3, data);
            let i = Matrix::identity(3);
            let prod = a.matmul(&i);
            for r in 0..3 {
                for c in 0..3 {
                    prop_assert!((prod[(r, c)] - a[(r, c)]).abs() < 1e-12);
                }
            }
        }
    }
}
