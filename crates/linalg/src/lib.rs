#![warn(missing_docs)]

//! Small dense linear algebra for the WQRTQ quadratic-programming solver.
//!
//! The QP subproblems solved by MQP/MQWK are tiny (the data dimensionality
//! is 2–13 in the paper), so a cache-friendly row-major dense [`Matrix`]
//! with direct factorisations is both simpler and faster than any sparse
//! machinery:
//!
//! * [`cholesky::Cholesky`] — SPD factorisation used for the reduced KKT
//!   systems of the interior-point method (with diagonal regularisation
//!   fallback for near-singular systems).
//! * [`lu::Lu`] — partially pivoted LU for general square systems.

pub mod cholesky;
pub mod lu;
pub mod matrix;

pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::Matrix;

/// `y ← y + a·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm (0 for empty slices).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
