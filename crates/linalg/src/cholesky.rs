//! Cholesky factorisation of symmetric positive-definite systems.
//!
//! The interior-point QP solver repeatedly solves reduced KKT systems
//! `(H + Gᵀ·D·G)·Δx = r` whose matrix is SPD by construction but can become
//! ill-conditioned as the barrier parameter shrinks. [`Cholesky::factor`]
//! therefore retries with growing diagonal regularisation (Tikhonov jitter)
//! before giving up — standard practice in IPM implementations.

use crate::matrix::Matrix;

/// Error returned when a matrix is not positive definite even after
/// regularisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// A lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors an SPD matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "matrix must be square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Factors `A + εI`, growing `ε` geometrically from `jitter0` until the
    /// factorisation succeeds (at most `tries` attempts).
    pub fn factor_regularized(
        a: &Matrix,
        jitter0: f64,
        tries: u32,
    ) -> Result<Self, NotPositiveDefinite> {
        if let Ok(c) = Self::factor(a) {
            return Ok(c);
        }
        let scale = a.norm_inf().max(1.0);
        let mut jitter = jitter0 * scale;
        for _ in 0..tries {
            let mut reg = a.clone();
            reg.add_diag(jitter);
            if let Ok(c) = Self::factor(&reg) {
                return Ok(c);
            }
            jitter *= 10.0;
        }
        Err(NotPositiveDefinite)
    }

    /// Solves `A·x = b` via forward/back substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factor size.
    #[allow(clippy::needless_range_loop)] // triangular indexing is clearer
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "dimension mismatch");
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn factor_identity() {
        let c = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert_eq!(c.solve(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn factor_known_spd() {
        // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, √2]].
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((c.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((c.l()[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
        let x = c.solve(&[2.0, 3.0]);
        let r = a.matvec(&x);
        assert!((r[0] - 2.0).abs() < 1e-10 && (r[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(matches!(Cholesky::factor(&a), Err(NotPositiveDefinite)));
    }

    #[test]
    fn regularization_rescues_singular_matrix() {
        // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        assert!(Cholesky::factor(&a).is_err());
        let c = Cholesky::factor_regularized(&a, 1e-10, 12).unwrap();
        let x = c.solve(&[1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn regularization_gives_up_eventually() {
        // Strongly indefinite: even large jitter within `tries` fails.
        let a = Matrix::from_rows(2, 2, vec![-1e12, 0.0, 0.0, -1e12]);
        assert!(Cholesky::factor_regularized(&a, 1e-12, 2).is_err());
    }

    proptest! {
        #[test]
        fn solve_recovers_solution_of_random_spd(
            m in proptest::collection::vec(-2.0f64..2.0, 9),
            x_true in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // Build SPD as BᵀB + I.
            let b = Matrix::from_rows(3, 3, m);
            let mut a = b.transpose().matmul(&b);
            a.add_diag(1.0);
            let rhs = a.matvec(&x_true);
            let c = Cholesky::factor(&a).unwrap();
            let x = c.solve(&rhs);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6, "xi={xi} ti={ti}");
            }
        }
    }
}
