#![warn(missing_docs)]

//! A d-dimensional R-tree for branch-and-bound query processing.
//!
//! The paper's algorithms (BRS top-k, `FindIncom`, rank computation) all
//! traverse an R-tree over the product dataset `P`. This crate implements
//! that index from scratch:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing (the standard way
//!   to build a static R-tree over a known dataset);
//! * [`RTree::insert`] — dynamic insertion with linear-split overflow
//!   handling, so incremental workloads work too;
//! * [`search::BestFirst`] — best-first (priority-queue) traversal under a
//!   monotone lower bound, the core of the BRS top-k algorithm \[29\];
//! * [`RTree::count_score_below`] — counted aggregates per subtree make
//!   rank queries ("how many points score strictly less than q?")
//!   sub-linear;
//! * [`RTree::probe_topk_membership`] — the early-exit, count-only rank
//!   test behind reverse top-k serving: best-first descent over MBR score
//!   bounds that stops as soon as either membership outcome is proven,
//!   with an allocation-free reusable [`ProbeScratch`];
//! * [`RTree::split_by_dominance`] — the pruned traversal behind
//!   `FindIncom` (Algorithm 2, lines 20–29);
//! * [`DominanceIndex`] — the build-time k-dominance pre-filter:
//!   per-point dominator counts plus per-subtree minima, consulted by
//!   [`RTree::probe_topk_membership_masked`] to skip points and whole
//!   subtrees that can never decide a top-k verdict.
//!
//! Node fanout defaults to 64 entries (~4 KiB per node at d = 3 and two
//! `f64` corners per entry), mirroring the paper's 4096-byte pages.

pub mod bulk;
pub mod mask;
pub mod node;
pub mod search;
pub mod stats;
pub mod tree;

pub use mask::{DominanceIndex, CULPRIT_PLANE_K, CULPRIT_PLANE_TIERS, DEFAULT_DOMINANCE_CAP};
pub use node::{Node, NodeId};
pub use search::{BestFirst, CulpritBuf, ProbeResult, ProbeScratch};
pub use stats::TraversalStats;
pub use tree::RTree;

/// Default maximum number of entries per node.
pub const DEFAULT_FANOUT: usize = 64;

/// A totally ordered `f64` wrapper for priority queues.
///
/// Scores produced by finite weights over finite coordinates are always
/// finite, so `total_cmp` ordering is safe here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_orders_like_f64() {
        let mut v = vec![OrdF64(3.0), OrdF64(-1.0), OrdF64(2.0)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(2.0), OrdF64(3.0)]);
    }
}
