//! Branch-and-bound traversals: best-first ranking, counted rank queries,
//! and the dominance split behind `FindIncom`.

use crate::node::{Node, NodeId};
use crate::tree::RTree;
use crate::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wqrtq_geom::{dominates, score};

/// A point produced by [`BestFirst`] in ascending score order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedPoint<'a> {
    /// The point's caller-assigned id.
    pub id: u32,
    /// Its score under the traversal's weighting vector.
    pub score: f64,
    /// Its coordinates (borrowed from the tree).
    pub coords: &'a [f64],
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum HeapItem {
    Node(NodeId),
    Point { leaf: NodeId, slot: u32, id: u32 },
}

/// Best-first traversal under a linear scoring function — the incremental
/// ranking engine of the BRS top-k algorithm. Each call to `next` returns
/// the unvisited point with the globally smallest score, so taking the
/// first `k` elements yields `TOPk(w)` and scanning until the query point
/// would appear yields its exact rank.
pub struct BestFirst<'a> {
    tree: &'a RTree,
    weight: Vec<f64>,
    heap: BinaryHeap<Reverse<(OrdF64, HeapItem)>>,
    nodes_visited: usize,
}

impl<'a> BestFirst<'a> {
    fn new(tree: &'a RTree, weight: Vec<f64>) -> Self {
        assert_eq!(weight.len(), tree.dim(), "weight dimension mismatch");
        let mut heap = BinaryHeap::new();
        if !tree.is_empty() {
            let root = tree.root_id();
            let bound = tree.node(root).mbr().min_score(&weight);
            heap.push(Reverse((OrdF64(bound), HeapItem::Node(root))));
        }
        Self {
            tree,
            weight,
            heap,
            nodes_visited: 0,
        }
    }

    /// Tree nodes expanded so far — the `|RT|` cost term of the paper's
    /// theorems, exposed so serving layers can report per-query index
    /// work without a second traversal.
    pub fn nodes_visited(&self) -> usize {
        self.nodes_visited
    }

    /// Returns the next point in ascending score order, with coordinates.
    pub fn next_entry(&mut self) -> Option<RankedPoint<'a>> {
        let dim = self.tree.dim();
        while let Some(Reverse((OrdF64(bound), item))) = self.heap.pop() {
            match item {
                HeapItem::Point { leaf, slot, id } => {
                    let coords = self.tree.node(leaf).point(slot as usize, dim);
                    return Some(RankedPoint {
                        id,
                        score: bound,
                        coords,
                    });
                }
                HeapItem::Node(node_id) => {
                    self.nodes_visited += 1;
                    match self.tree.node(node_id) {
                        Node::Leaf { ids, coords, .. } => {
                            for (slot, &id) in ids.iter().enumerate() {
                                let p = &coords[slot * dim..(slot + 1) * dim];
                                let s = score(&self.weight, p);
                                self.heap.push(Reverse((
                                    OrdF64(s),
                                    HeapItem::Point {
                                        leaf: node_id,
                                        slot: slot as u32,
                                        id,
                                    },
                                )));
                            }
                        }
                        Node::Internal { children, .. } => {
                            for &c in children {
                                let b = self.tree.node(c).mbr().min_score(&self.weight);
                                self.heap.push(Reverse((OrdF64(b), HeapItem::Node(c))));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

impl Iterator for BestFirst<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        self.next_entry().map(|r| (r.id, r.score))
    }
}

/// The `FindIncom` classification of a dataset relative to a query point:
/// the set `D` of points dominating `q` and the set `I` of points
/// incomparable with `q` (points dominated by `q` are pruned away, whole
/// subtrees at a time).
#[derive(Clone, Debug, Default)]
pub struct DominanceSplit {
    /// Ids of points dominating `q`.
    pub dominating_ids: Vec<u32>,
    /// Flat `|D| × dim` coordinates of the dominating points.
    pub dominating_coords: Vec<f64>,
    /// Ids of points incomparable with `q`.
    pub incomparable_ids: Vec<u32>,
    /// Flat `|I| × dim` coordinates of the incomparable points.
    pub incomparable_coords: Vec<f64>,
}

impl DominanceSplit {
    /// `|D|`.
    pub fn num_dominating(&self) -> usize {
        self.dominating_ids.len()
    }

    /// `|I|`.
    pub fn num_incomparable(&self) -> usize {
        self.incomparable_ids.len()
    }
}

impl RTree {
    /// Starts a best-first (ascending score) traversal under `weight`.
    pub fn best_first(&self, weight: &[f64]) -> BestFirst<'_> {
        BestFirst::new(self, weight.to_vec())
    }

    /// Counts points whose score under `weight` is below `threshold`
    /// (strictly below when `strict`, else `≤`). Sub-trees entirely below
    /// contribute their cached counts; sub-trees entirely above are pruned.
    pub fn count_score_below(&self, weight: &[f64], threshold: f64, strict: bool) -> usize {
        self.count_score_below_capped(weight, threshold, strict, usize::MAX)
    }

    /// Like [`RTree::count_score_below`] but stops descending once the
    /// count reaches `cap` (the returned value may exceed `cap` by the
    /// size of the last counted subtree). Used for "is the rank ≤ k?"
    /// tests that don't need exact counts.
    pub fn count_score_below_capped(
        &self,
        weight: &[f64],
        threshold: f64,
        strict: bool,
        cap: usize,
    ) -> usize {
        assert_eq!(weight.len(), self.dim(), "weight dimension mismatch");
        if self.is_empty() {
            return 0;
        }
        let mut count = 0usize;
        let mut stack = vec![self.root_id()];
        let dim = self.dim();
        while let Some(node_id) = stack.pop() {
            if count >= cap {
                break;
            }
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() {
                continue;
            }
            let lo = mbr.min_score(weight);
            let hi = mbr.max_score(weight);
            let below = |s: f64| {
                if strict {
                    s < threshold
                } else {
                    s <= threshold
                }
            };
            if !below(lo) {
                continue; // entire subtree at-or-above the threshold
            }
            if below(hi) {
                count += node.count(); // entire subtree below
                continue;
            }
            match node {
                Node::Leaf { ids, coords, .. } => {
                    for slot in 0..ids.len() {
                        let p = &coords[slot * dim..(slot + 1) * dim];
                        if below(score(weight, p)) {
                            count += 1;
                        }
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// The `FindIncom` traversal (Algorithm 2 of the paper, lines 20–29):
    /// classifies all points not dominated by `q` into dominating (`D`)
    /// and incomparable (`I`) sets, pruning every subtree whose MBR is
    /// entirely dominated by `q`.
    pub fn split_by_dominance(&self, q: &[f64]) -> DominanceSplit {
        assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        let mut out = DominanceSplit::default();
        if self.is_empty() {
            return out;
        }
        let dim = self.dim();
        let mut stack = vec![self.root_id()];
        while let Some(node_id) = stack.pop() {
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() || mbr.entirely_dominated_by(q) {
                continue;
            }
            match node {
                Node::Leaf { ids, coords, .. } => {
                    for (slot, &id) in ids.iter().enumerate() {
                        let p = &coords[slot * dim..(slot + 1) * dim];
                        if dominates(p, q) {
                            out.dominating_ids.push(id);
                            out.dominating_coords.extend_from_slice(p);
                        } else if !dominates(q, p) {
                            out.incomparable_ids.push(id);
                            out.incomparable_coords.extend_from_slice(p);
                        }
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Figure 1/2 dataset (price, heat).
    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, // p1
            6.0, 3.0, // p2
            1.0, 9.0, // p3
            9.0, 3.0, // p4
            7.0, 5.0, // p5
            5.0, 8.0, // p6
            3.0, 7.0, // p7
        ]
    }

    fn scatter(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = seed | 1;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
        }
        v
    }

    #[test]
    fn best_first_reproduces_figure_1c_for_tony() {
        // Tony = (0.5, 0.5): ranking p1(1.5) < p2(4.5) < p3,p7(5.0) < p5(6.0)…
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let order: Vec<(u32, f64)> = t.best_first(&[0.5, 0.5]).collect();
        assert_eq!(order.len(), 7);
        assert_eq!(order[0], (0, 1.5)); // p1
        assert_eq!(order[1], (1, 4.5)); // p2
        let scores: Vec<f64> = order.iter().map(|(_, s)| *s).collect();
        assert!(scores.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn best_first_scores_are_globally_sorted() {
        let pts = scatter(500, 3, 7);
        let t = RTree::bulk_load_with_fanout(3, &pts, 8);
        let w = [0.2, 0.3, 0.5];
        let ranked: Vec<(u32, f64)> = t.best_first(&w).collect();
        assert_eq!(ranked.len(), 500);
        // Matches brute force ordering of scores.
        let mut brute: Vec<f64> = (0..500)
            .map(|i| score(&w, &pts[i * 3..i * 3 + 3]))
            .collect();
        brute.sort_by(f64::total_cmp);
        for (r, b) in ranked.iter().zip(&brute) {
            assert!((r.1 - b).abs() < 1e-12);
        }
    }

    #[test]
    fn best_first_entry_exposes_coords() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut bf = t.best_first(&[0.5, 0.5]);
        let first = bf.next_entry().unwrap();
        assert_eq!(first.coords, &[2.0, 1.0]);
        assert_eq!(first.id, 0);
    }

    #[test]
    fn best_first_on_empty_tree() {
        let t = RTree::new(2, 8);
        assert_eq!(t.best_first(&[0.5, 0.5]).next(), None);
    }

    #[test]
    fn count_below_matches_figure_1() {
        // Under Kevin = (0.1, 0.9), scores: 1.1, 3.3, 8.2, 3.6, 5.2, 7.7, 6.6.
        // Points strictly below q's score 4.0: p1, p2, p4 → 3 (why q is not
        // in Kevin's top-3: rank 4).
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        assert_eq!(t.count_score_below(&[0.1, 0.9], 4.0, true), 3);
        // Non-strict at a tie threshold: p3 scores exactly 8.2.
        assert_eq!(t.count_score_below(&[0.1, 0.9], 8.2, false), 7);
        assert_eq!(t.count_score_below(&[0.1, 0.9], 8.2, true), 6);
    }

    #[test]
    fn count_below_capped_stops_early_but_never_undercounts() {
        let pts = scatter(1000, 2, 11);
        let t = RTree::bulk_load_with_fanout(2, &pts, 16);
        let w = [0.6, 0.4];
        let exact = t.count_score_below(&w, 5.0, true);
        let capped = t.count_score_below_capped(&w, 5.0, true, 10);
        assert!(capped >= 10.min(exact));
        assert!(capped <= exact);
    }

    #[test]
    fn dominance_split_matches_figure_2a() {
        // q = (4,4): p1=(2,1) dominates q; p2, p3, p4, p7 are incomparable;
        // p5=(7,5) and p6=(5,8) are dominated by q.
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut split = t.split_by_dominance(&[4.0, 4.0]);
        split.dominating_ids.sort();
        split.incomparable_ids.sort();
        assert_eq!(split.dominating_ids, vec![0]);
        assert_eq!(split.incomparable_ids, vec![1, 2, 3, 6]);
        assert_eq!(split.num_dominating(), 1);
        assert_eq!(split.num_incomparable(), 4);
        assert_eq!(split.dominating_coords, vec![2.0, 1.0]);
    }

    #[test]
    fn dominance_split_equal_point_counts_as_incomparable() {
        // The paper's FindIncom adds any point not dominated by q to I;
        // a point equal to q is not dominated, so it lands in I.
        let mut pts = fig_points();
        pts.extend([4.0, 4.0]);
        let t = RTree::bulk_load_with_fanout(2, &pts, 4);
        let split = t.split_by_dominance(&[4.0, 4.0]);
        assert!(split.incomparable_ids.contains(&7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn count_below_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..300),
            wraw in (0.01f64..1.0, 0.01f64..1.0),
            threshold in 0.0f64..20.0,
            strict in proptest::bool::ANY,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let sum = wraw.0 + wraw.1;
            let w = [wraw.0 / sum, wraw.1 / sum];
            let brute = pts.iter().filter(|(a, b)| {
                let s = w[0] * a + w[1] * b;
                if strict { s < threshold } else { s <= threshold }
            }).count();
            prop_assert_eq!(t.count_score_below(&w, threshold, strict), brute);
        }

        #[test]
        fn dominance_split_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..200),
            q in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let t = RTree::bulk_load_with_fanout(3, &flat, 8);
            let qv = [q.0, q.1, q.2];
            let mut split = t.split_by_dominance(&qv);
            split.dominating_ids.sort();
            split.incomparable_ids.sort();
            let mut brute_d = Vec::new();
            let mut brute_i = Vec::new();
            for (i, (a, b, c)) in pts.iter().enumerate() {
                let p = [*a, *b, *c];
                if dominates(&p, &qv) {
                    brute_d.push(i as u32);
                } else if !dominates(&qv, &p) {
                    brute_i.push(i as u32);
                }
            }
            prop_assert_eq!(split.dominating_ids, brute_d);
            prop_assert_eq!(split.incomparable_ids, brute_i);
        }

        #[test]
        fn best_first_is_a_permutation_in_score_order(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..150),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 4);
            let w = [0.3, 0.7];
            let ranked: Vec<(u32, f64)> = t.best_first(&w).collect();
            prop_assert_eq!(ranked.len(), pts.len());
            let mut ids: Vec<u32> = ranked.iter().map(|(i, _)| *i).collect();
            ids.sort();
            prop_assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u32));
            prop_assert!(ranked.windows(2).all(|w2| w2[0].1 <= w2[1].1));
        }
    }
}
