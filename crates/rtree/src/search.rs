//! Branch-and-bound traversals: best-first ranking, counted rank queries,
//! and the dominance split behind `FindIncom`.

use crate::node::{Node, NodeId};
use crate::tree::RTree;
use crate::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wqrtq_geom::{dominates, score};

/// A point produced by [`BestFirst`] in ascending score order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedPoint<'a> {
    /// The point's caller-assigned id.
    pub id: u32,
    /// Its score under the traversal's weighting vector.
    pub score: f64,
    /// Its coordinates (borrowed from the tree).
    pub coords: &'a [f64],
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum HeapItem {
    Node(NodeId),
    Point { leaf: NodeId, slot: u32, id: u32 },
}

/// Best-first traversal under a linear scoring function — the incremental
/// ranking engine of the BRS top-k algorithm. Each call to `next` returns
/// the unvisited point with the globally smallest score, so taking the
/// first `k` elements yields `TOPk(w)` and scanning until the query point
/// would appear yields its exact rank.
pub struct BestFirst<'a> {
    tree: &'a RTree,
    weight: Vec<f64>,
    heap: BinaryHeap<Reverse<(OrdF64, HeapItem)>>,
    nodes_visited: usize,
    /// `(index, k_eff)`: skip points with ≥ `k_eff` strict dominators.
    mask: Option<(&'a crate::DominanceIndex, usize)>,
}

impl<'a> BestFirst<'a> {
    fn new(tree: &'a RTree, weight: Vec<f64>) -> Self {
        Self::with_mask(tree, weight, None)
    }

    fn with_mask(
        tree: &'a RTree,
        weight: Vec<f64>,
        mask: Option<(&'a crate::DominanceIndex, usize)>,
    ) -> Self {
        assert_eq!(weight.len(), tree.dim(), "weight dimension mismatch");
        let mut heap = BinaryHeap::new();
        if !tree.is_empty() {
            let root = tree.root_id();
            let excluded = match mask {
                Some((dom, k_eff)) => dom.node_excluded(root, k_eff),
                None => false,
            };
            if excluded {
                // Unreachable for k_eff ≥ 1 (a Pareto-minimal point has
                // zero dominators), but cheap to keep sound.
                if let Some((dom, _)) = mask {
                    dom.note_skips(tree.len() as u64);
                }
            } else {
                let bound = tree.node(root).mbr().min_score(&weight);
                heap.push(Reverse((OrdF64(bound), HeapItem::Node(root))));
            }
        }
        Self {
            tree,
            weight,
            heap,
            nodes_visited: 0,
            mask,
        }
    }

    /// Tree nodes expanded so far — the `|RT|` cost term of the paper's
    /// theorems, exposed so serving layers can report per-query index
    /// work without a second traversal.
    pub fn nodes_visited(&self) -> usize {
        self.nodes_visited
    }

    /// Returns the next point in ascending score order, with coordinates.
    pub fn next_entry(&mut self) -> Option<RankedPoint<'a>> {
        let dim = self.tree.dim();
        while let Some(Reverse((OrdF64(bound), item))) = self.heap.pop() {
            match item {
                HeapItem::Point { leaf, slot, id } => {
                    let coords = self.tree.node(leaf).point(slot as usize, dim);
                    return Some(RankedPoint {
                        id,
                        score: bound,
                        coords,
                    });
                }
                HeapItem::Node(node_id) => {
                    self.nodes_visited += 1;
                    let mut skipped = 0u64;
                    match self.tree.node(node_id) {
                        Node::Leaf { ids, coords, .. } => {
                            for (slot, &id) in ids.iter().enumerate() {
                                if let Some((dom, k_eff)) = self.mask {
                                    if dom.is_excluded(id, k_eff) {
                                        skipped += 1;
                                        continue;
                                    }
                                }
                                let p = &coords[slot * dim..(slot + 1) * dim];
                                let s = score(&self.weight, p);
                                self.heap.push(Reverse((
                                    OrdF64(s),
                                    HeapItem::Point {
                                        leaf: node_id,
                                        slot: slot as u32,
                                        id,
                                    },
                                )));
                            }
                        }
                        Node::Internal { children, .. } => {
                            for &c in children {
                                if let Some((dom, k_eff)) = self.mask {
                                    if dom.node_excluded(c, k_eff) {
                                        skipped += self.tree.node(c).count() as u64;
                                        continue;
                                    }
                                }
                                let b = self.tree.node(c).mbr().min_score(&self.weight);
                                self.heap.push(Reverse((OrdF64(b), HeapItem::Node(c))));
                            }
                        }
                    }
                    if skipped > 0 {
                        if let Some((dom, _)) = self.mask {
                            dom.note_skips(skipped);
                        }
                    }
                }
            }
        }
        None
    }
}

impl Iterator for BestFirst<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        self.next_entry().map(|r| (r.id, r.score))
    }
}

/// Reusable state for [`RTree::probe_topk_membership`]: the best-first
/// priority queue survives across probes, so a serving worker performs
/// zero heap allocations per rank test once the queue has grown to the
/// tree's working depth.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    heap: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
}

impl ProbeScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Culprit points collected by a membership probe: ids and flat
/// coordinates in parallel. Ids let callers deduplicate — the same point
/// can surface in probe after probe, and an RTA threshold pool that
/// counted it twice would prune unsoundly.
#[derive(Debug, Default)]
pub struct CulpritBuf {
    /// Point ids, parallel to `coords`.
    pub ids: Vec<u32>,
    /// Flat row-major coordinates.
    pub coords: Vec<f64>,
}

impl CulpritBuf {
    /// Empties both buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.coords.clear();
    }

    /// Number of collected points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Outcome of one early-exit membership probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeResult {
    /// Whether `q ∈ TOPk(w)` under the strict-better tie semantics.
    pub in_topk: bool,
    /// Points proven strictly better than the threshold when the probe
    /// stopped. Exact iff the probe proved membership or exhausted the
    /// tree; a lower bound (≥ `k`) when it proved non-membership.
    pub better: usize,
    /// Tree nodes expanded (the paper's `|RT|` cost term).
    pub nodes_visited: usize,
}

/// The `FindIncom` classification of a dataset relative to a query point:
/// the set `D` of points dominating `q` and the set `I` of points
/// incomparable with `q` (points dominated by `q` are pruned away, whole
/// subtrees at a time).
#[derive(Clone, Debug, Default)]
pub struct DominanceSplit {
    /// Ids of points dominating `q`.
    pub dominating_ids: Vec<u32>,
    /// Flat `|D| × dim` coordinates of the dominating points.
    pub dominating_coords: Vec<f64>,
    /// Ids of points incomparable with `q`.
    pub incomparable_ids: Vec<u32>,
    /// Flat `|I| × dim` coordinates of the incomparable points.
    pub incomparable_coords: Vec<f64>,
}

impl DominanceSplit {
    /// `|D|`.
    pub fn num_dominating(&self) -> usize {
        self.dominating_ids.len()
    }

    /// `|I|`.
    pub fn num_incomparable(&self) -> usize {
        self.incomparable_ids.len()
    }
}

impl RTree {
    /// Starts a best-first (ascending score) traversal under `weight`.
    pub fn best_first(&self, weight: &[f64]) -> BestFirst<'_> {
        BestFirst::new(self, weight.to_vec())
    }

    /// [`RTree::best_first`] consulting a [`crate::DominanceIndex`]:
    /// points with at least `k_eff` strict dominators are never emitted,
    /// and subtrees whose every point is masked are never descended.
    ///
    /// For non-negative `weight` and `k ≤ k_eff ≤ dom.cap()` the first
    /// `k` emitted *scores* equal those of the unmasked traversal
    /// bit-for-bit (each masked point has ≥ `k_eff` dominators scoring no
    /// worse, so the k-th order statistic is unchanged); identities may
    /// differ among exact score ties. Callers must check
    /// `dom.usable_for(k_eff)` and weight non-negativity themselves and
    /// fall back to [`RTree::best_first`] otherwise.
    ///
    /// # Panics
    /// Panics if `weight.len() != dim` or the index was built from a
    /// structurally different tree.
    pub fn best_first_masked<'a>(
        &'a self,
        weight: &[f64],
        dom: &'a crate::DominanceIndex,
        k_eff: usize,
    ) -> BestFirst<'a> {
        assert_eq!(
            dom.node_slots(),
            self.nodes.len(),
            "dominance index does not match this tree"
        );
        BestFirst::with_mask(self, weight.to_vec(), Some((dom, k_eff)))
    }

    /// Counts points whose score under `weight` is below `threshold`
    /// (strictly below when `strict`, else `≤`). Sub-trees entirely below
    /// contribute their cached counts; sub-trees entirely above are pruned.
    pub fn count_score_below(&self, weight: &[f64], threshold: f64, strict: bool) -> usize {
        self.count_score_below_capped(weight, threshold, strict, usize::MAX)
    }

    /// Like [`RTree::count_score_below`] but stops descending once the
    /// count reaches `cap` (the returned value may exceed `cap` by the
    /// size of the last counted subtree). Used for "is the rank ≤ k?"
    /// tests that don't need exact counts.
    pub fn count_score_below_capped(
        &self,
        weight: &[f64],
        threshold: f64,
        strict: bool,
        cap: usize,
    ) -> usize {
        assert_eq!(weight.len(), self.dim(), "weight dimension mismatch");
        if self.is_empty() {
            return 0;
        }
        let mut count = 0usize;
        let mut stack = vec![self.root_id()];
        let dim = self.dim();
        while let Some(node_id) = stack.pop() {
            if count >= cap {
                break;
            }
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() {
                continue;
            }
            let lo = mbr.min_score(weight);
            let hi = mbr.max_score(weight);
            let below = |s: f64| {
                if strict {
                    s < threshold
                } else {
                    s <= threshold
                }
            };
            if !below(lo) {
                continue; // entire subtree at-or-above the threshold
            }
            if below(hi) {
                count += node.count(); // entire subtree below
                continue;
            }
            match node {
                Node::Leaf { ids, coords, .. } => {
                    for slot in 0..ids.len() {
                        let p = &coords[slot * dim..(slot + 1) * dim];
                        if below(score(weight, p)) {
                            count += 1;
                        }
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// Early-exit membership probe: decides `q ∈ TOPk(w)` (given
    /// `threshold = f(w, q)`) with a best-first descent over MBR score
    /// *lower* bounds, stopping the moment either outcome is proven:
    ///
    /// * **not a member** as soon as `k` strictly-better points are
    ///   counted (subtrees whose MBR upper bound is below the threshold
    ///   count wholesale via the cached per-node counts);
    /// * **a member** as soon as the smallest remaining lower bound
    ///   reaches the threshold — best-first order makes every remaining
    ///   subtree at least that bad, so the running count is already the
    ///   exact number of better points and `count < k` proves membership.
    ///
    /// `culprits` optionally collects up to `k` individually-scored
    /// better points (ids + coordinates, appended; the caller clears) —
    /// the RTA threshold buffer is seeded from them. Wholesale-counted
    /// subtrees are *not* expanded just to extract coordinates.
    ///
    /// # Panics
    /// Panics if `weight.len() != dim`.
    pub fn probe_topk_membership(
        &self,
        weight: &[f64],
        threshold: f64,
        k: usize,
        scratch: &mut ProbeScratch,
        culprits: Option<&mut CulpritBuf>,
    ) -> ProbeResult {
        self.probe_impl(weight, threshold, k, scratch, culprits, None)
    }

    /// [`RTree::probe_topk_membership`] consulting a
    /// [`crate::DominanceIndex`] built from this tree: subtrees whose
    /// every point has at least `k_eff` strict dominators are skipped
    /// without descending, as are masked points in scanned leaves, while
    /// wholesale-counted subtrees still count everything.
    ///
    /// The verdict (`in_topk`) is bit-identical to the unmasked probe
    /// whenever the mask soundness conditions hold: non-negative
    /// `weight`, `k ≤ k_eff ≤ dom.cap()`, and `k_eff` inflated by the
    /// live-view tombstone count (see `DominanceIndex`'s module docs).
    /// `better` may undercount — use only for verdicts. Callers are
    /// responsible for checking `dom.usable_for(k_eff)` and falling back
    /// to the unmasked probe otherwise; this method falls back on its
    /// own when `weight` has a negative entry.
    ///
    /// # Panics
    /// Panics if `weight.len() != dim` or the index was built from a
    /// structurally different tree.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_topk_membership_masked(
        &self,
        weight: &[f64],
        threshold: f64,
        k: usize,
        k_eff: usize,
        dom: &crate::DominanceIndex,
        scratch: &mut ProbeScratch,
        culprits: Option<&mut CulpritBuf>,
    ) -> ProbeResult {
        if weight.iter().any(|&x| x < 0.0) {
            return self.probe_impl(weight, threshold, k, scratch, culprits, None);
        }
        assert_eq!(
            dom.node_slots(),
            self.nodes.len(),
            "dominance index does not match this tree"
        );
        self.probe_impl(weight, threshold, k, scratch, culprits, Some((dom, k_eff)))
    }

    fn probe_impl(
        &self,
        weight: &[f64],
        threshold: f64,
        k: usize,
        scratch: &mut ProbeScratch,
        mut culprits: Option<&mut CulpritBuf>,
        mask: Option<(&crate::DominanceIndex, usize)>,
    ) -> ProbeResult {
        assert_eq!(weight.len(), self.dim(), "weight dimension mismatch");
        let mut result = ProbeResult {
            in_topk: false,
            better: 0,
            nodes_visited: 0,
        };
        if k == 0 {
            return result;
        }
        if self.is_empty() {
            result.in_topk = true;
            return result;
        }
        let dim = self.dim();
        let heap = &mut scratch.heap;
        heap.clear();
        let mut skipped = 0u64;
        let excluded = |node: NodeId| match mask {
            Some((dom, k_eff)) => dom.node_excluded(node, k_eff),
            None => false,
        };
        let root = self.root_id();
        if excluded(root) {
            // Every point is masked: the better-set must be empty (a
            // non-empty one would contain unmasked points), so q is in.
            if let Some((dom, _)) = mask {
                dom.note_skips(self.len() as u64);
            }
            result.in_topk = true;
            return result;
        }
        heap.push(Reverse((
            OrdF64(self.node(root).mbr().min_score(weight)),
            root,
        )));
        'probe: {
            while let Some(Reverse((OrdF64(lo), node_id))) = heap.pop() {
                if lo >= threshold {
                    // Best-first order: every remaining subtree scores ≥ lo,
                    // so `better` is exact and q's rank is better + 1 ≤ k.
                    result.in_topk = true;
                    break 'probe;
                }
                let node = self.node(node_id);
                let mbr = node.mbr();
                if mbr.is_empty() {
                    continue;
                }
                result.nodes_visited += 1;
                if mbr.max_score(weight) < threshold {
                    // Whole subtree strictly better: count without
                    // expanding (masked points included — wholesale
                    // overcounts are verdict-safe).
                    result.better += node.count();
                    if result.better >= k {
                        break 'probe;
                    }
                    continue;
                }
                match node {
                    Node::Leaf { ids, coords, .. } => {
                        for (p, &id) in coords.chunks_exact(dim).zip(ids) {
                            if let Some((dom, k_eff)) = mask {
                                if dom.is_excluded(id, k_eff) {
                                    skipped += 1;
                                    continue;
                                }
                            }
                            if score(weight, p) < threshold {
                                result.better += 1;
                                if let Some(out) = culprits.as_deref_mut() {
                                    if out.len() < k {
                                        out.ids.push(id);
                                        out.coords.extend_from_slice(p);
                                    }
                                }
                                if result.better >= k {
                                    break 'probe;
                                }
                            }
                        }
                    }
                    Node::Internal { children, .. } => {
                        for &c in children {
                            if excluded(c) {
                                skipped += self.node(c).count() as u64;
                                continue;
                            }
                            let b = self.node(c).mbr().min_score(weight);
                            if b < threshold {
                                heap.push(Reverse((OrdF64(b), c)));
                            }
                        }
                    }
                }
            }
            // Heap exhausted: the count is exact (masked skips can only
            // remove points a sound mask proves irrelevant) and below k.
            result.in_topk = true;
        }
        if let Some((dom, _)) = mask {
            dom.note_skips(skipped);
        }
        result
    }

    /// The `FindIncom` traversal (Algorithm 2 of the paper, lines 20–29):
    /// classifies all points not dominated by `q` into dominating (`D`)
    /// and incomparable (`I`) sets, pruning every subtree whose MBR is
    /// entirely dominated by `q`.
    pub fn split_by_dominance(&self, q: &[f64]) -> DominanceSplit {
        assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        let mut out = DominanceSplit::default();
        if self.is_empty() {
            return out;
        }
        let dim = self.dim();
        let mut stack = vec![self.root_id()];
        while let Some(node_id) = stack.pop() {
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() || mbr.entirely_dominated_by(q) {
                continue;
            }
            match node {
                Node::Leaf { ids, coords, .. } => {
                    for (slot, &id) in ids.iter().enumerate() {
                        let p = &coords[slot * dim..(slot + 1) * dim];
                        if dominates(p, q) {
                            out.dominating_ids.push(id);
                            out.dominating_coords.extend_from_slice(p);
                        } else if !dominates(q, p) {
                            out.incomparable_ids.push(id);
                            out.incomparable_coords.extend_from_slice(p);
                        }
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Figure 1/2 dataset (price, heat).
    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, // p1
            6.0, 3.0, // p2
            1.0, 9.0, // p3
            9.0, 3.0, // p4
            7.0, 5.0, // p5
            5.0, 8.0, // p6
            3.0, 7.0, // p7
        ]
    }

    fn scatter(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = seed | 1;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
        }
        v
    }

    #[test]
    fn best_first_reproduces_figure_1c_for_tony() {
        // Tony = (0.5, 0.5): ranking p1(1.5) < p2(4.5) < p3,p7(5.0) < p5(6.0)…
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let order: Vec<(u32, f64)> = t.best_first(&[0.5, 0.5]).collect();
        assert_eq!(order.len(), 7);
        assert_eq!(order[0], (0, 1.5)); // p1
        assert_eq!(order[1], (1, 4.5)); // p2
        let scores: Vec<f64> = order.iter().map(|(_, s)| *s).collect();
        assert!(scores.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn best_first_scores_are_globally_sorted() {
        let pts = scatter(500, 3, 7);
        let t = RTree::bulk_load_with_fanout(3, &pts, 8);
        let w = [0.2, 0.3, 0.5];
        let ranked: Vec<(u32, f64)> = t.best_first(&w).collect();
        assert_eq!(ranked.len(), 500);
        // Matches brute force ordering of scores.
        let mut brute: Vec<f64> = (0..500)
            .map(|i| score(&w, &pts[i * 3..i * 3 + 3]))
            .collect();
        brute.sort_by(f64::total_cmp);
        for (r, b) in ranked.iter().zip(&brute) {
            assert!((r.1 - b).abs() < 1e-12);
        }
    }

    #[test]
    fn best_first_entry_exposes_coords() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut bf = t.best_first(&[0.5, 0.5]);
        let first = bf.next_entry().unwrap();
        assert_eq!(first.coords, &[2.0, 1.0]);
        assert_eq!(first.id, 0);
    }

    #[test]
    fn best_first_on_empty_tree() {
        let t = RTree::new(2, 8);
        assert_eq!(t.best_first(&[0.5, 0.5]).next(), None);
    }

    #[test]
    fn count_below_matches_figure_1() {
        // Under Kevin = (0.1, 0.9), scores: 1.1, 3.3, 8.2, 3.6, 5.2, 7.7, 6.6.
        // Points strictly below q's score 4.0: p1, p2, p4 → 3 (why q is not
        // in Kevin's top-3: rank 4).
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        assert_eq!(t.count_score_below(&[0.1, 0.9], 4.0, true), 3);
        // Non-strict at a tie threshold: p3 scores exactly 8.2.
        assert_eq!(t.count_score_below(&[0.1, 0.9], 8.2, false), 7);
        assert_eq!(t.count_score_below(&[0.1, 0.9], 8.2, true), 6);
    }

    #[test]
    fn count_below_capped_stops_early_but_never_undercounts() {
        let pts = scatter(1000, 2, 11);
        let t = RTree::bulk_load_with_fanout(2, &pts, 16);
        let w = [0.6, 0.4];
        let exact = t.count_score_below(&w, 5.0, true);
        let capped = t.count_score_below_capped(&w, 5.0, true, 10);
        assert!(capped >= 10.min(exact));
        assert!(capped <= exact);
    }

    #[test]
    fn dominance_split_matches_figure_2a() {
        // q = (4,4): p1=(2,1) dominates q; p2, p3, p4, p7 are incomparable;
        // p5=(7,5) and p6=(5,8) are dominated by q.
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut split = t.split_by_dominance(&[4.0, 4.0]);
        split.dominating_ids.sort();
        split.incomparable_ids.sort();
        assert_eq!(split.dominating_ids, vec![0]);
        assert_eq!(split.incomparable_ids, vec![1, 2, 3, 6]);
        assert_eq!(split.num_dominating(), 1);
        assert_eq!(split.num_incomparable(), 4);
        assert_eq!(split.dominating_coords, vec![2.0, 1.0]);
    }

    #[test]
    fn dominance_split_equal_point_counts_as_incomparable() {
        // The paper's FindIncom adds any point not dominated by q to I;
        // a point equal to q is not dominated, so it lands in I.
        let mut pts = fig_points();
        pts.extend([4.0, 4.0]);
        let t = RTree::bulk_load_with_fanout(2, &pts, 4);
        let split = t.split_by_dominance(&[4.0, 4.0]);
        assert!(split.incomparable_ids.contains(&7));
    }

    #[test]
    fn probe_matches_paper_membership() {
        // Figure 1: q = (4,4), k = 3 → Tony and Anna in, Kevin and Julia out.
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut scratch = ProbeScratch::new();
        let cases = [
            ([0.1, 0.9], false), // Kevin: rank 4
            ([0.5, 0.5], true),  // Tony: rank 2
            ([0.3, 0.7], true),  // Anna: rank 3
            ([0.9, 0.1], false), // Julia: rank 4
        ];
        for (w, expect) in cases {
            let sq = score(&w, &[4.0, 4.0]);
            let r = t.probe_topk_membership(&w, sq, 3, &mut scratch, None);
            assert_eq!(r.in_topk, expect, "weight {w:?}");
            assert!(r.nodes_visited > 0);
            if r.in_topk {
                // Exact count on membership: rank = better + 1 ≤ k.
                assert!(r.better < 3);
            } else {
                assert!(r.better >= 3);
            }
        }
    }

    #[test]
    fn probe_tie_keeps_query_in() {
        let t = RTree::bulk_load(2, &[1.0, 1.0, 2.0, 2.0]);
        let mut scratch = ProbeScratch::new();
        // q = (2,2) ties the second point: only one point strictly better.
        let r = t.probe_topk_membership(&[0.5, 0.5], 2.0, 2, &mut scratch, None);
        assert!(r.in_topk);
        assert_eq!(r.better, 1);
    }

    #[test]
    fn probe_edge_cases() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut scratch = ProbeScratch::new();
        // k = 0: never a member.
        let r = t.probe_topk_membership(&[0.5, 0.5], 100.0, 0, &mut scratch, None);
        assert!(!r.in_topk);
        // Empty tree: always a member for k ≥ 1.
        let empty = RTree::new(2, 8);
        let r = empty.probe_topk_membership(&[0.5, 0.5], 0.0, 1, &mut scratch, None);
        assert!(r.in_topk);
        // k > n: always a member even when every point beats q.
        let r = t.probe_topk_membership(&[0.5, 0.5], 100.0, 8, &mut scratch, None);
        assert!(r.in_topk);
        assert_eq!(r.better, 7);
        // k = n with every point strictly better: rank n+1 → not a member.
        let r = t.probe_topk_membership(&[0.5, 0.5], 100.0, 7, &mut scratch, None);
        assert!(!r.in_topk);
    }

    #[test]
    fn probe_collects_culprit_coordinates() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut scratch = ProbeScratch::new();
        let mut culprits = CulpritBuf::default();
        let w = [0.1, 0.9];
        let r = t.probe_topk_membership(&w, 4.0, 3, &mut scratch, Some(&mut culprits));
        assert!(!r.in_topk);
        assert!(!culprits.is_empty());
        assert!(culprits.len() <= 3);
        assert_eq!(culprits.coords.len(), culprits.ids.len() * 2);
        // Every collected point really beats the threshold, and each id
        // maps to its own coordinates.
        for (p, &id) in culprits.coords.chunks_exact(2).zip(&culprits.ids) {
            assert!(score(&w, p) < 4.0);
            assert_eq!(p, &fig_points()[id as usize * 2..id as usize * 2 + 2]);
        }
        culprits.clear();
        assert!(culprits.is_empty());
    }

    #[test]
    fn probe_scratch_is_reusable_across_trees_and_weights() {
        let pts = scatter(800, 3, 3);
        let t = RTree::bulk_load_with_fanout(3, &pts, 8);
        let mut scratch = ProbeScratch::new();
        for i in 0..50 {
            let x = 0.1 + 0.8 * (i as f64 / 50.0);
            let w = [x / 2.0, (1.0 - x) / 2.0, 0.5];
            let q = [5.0, 5.0, 5.0];
            let sq = score(&w, &q);
            let probe = t.probe_topk_membership(&w, sq, 10, &mut scratch, None);
            let exact = t.count_score_below(&w, sq, true);
            assert_eq!(probe.in_topk, exact < 10, "weight {w:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn probe_agrees_with_exact_count(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..400),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..12,
            wraw in (0.01f64..1.0, 0.01f64..1.0),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let sum = wraw.0 + wraw.1;
            let w = [wraw.0 / sum, wraw.1 / sum];
            let sq = score(&w, &[q.0, q.1]);
            let mut scratch = ProbeScratch::new();
            let r = t.probe_topk_membership(&w, sq, k, &mut scratch, None);
            let exact = t.count_score_below(&w, sq, true);
            prop_assert_eq!(r.in_topk, exact < k);
            if r.in_topk {
                prop_assert_eq!(r.better, exact);
            } else {
                prop_assert!(r.better >= k);
                prop_assert!(r.better <= exact);
            }
        }

        #[test]
        fn count_below_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..300),
            wraw in (0.01f64..1.0, 0.01f64..1.0),
            threshold in 0.0f64..20.0,
            strict in proptest::bool::ANY,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let sum = wraw.0 + wraw.1;
            let w = [wraw.0 / sum, wraw.1 / sum];
            let brute = pts.iter().filter(|(a, b)| {
                let s = w[0] * a + w[1] * b;
                if strict { s < threshold } else { s <= threshold }
            }).count();
            prop_assert_eq!(t.count_score_below(&w, threshold, strict), brute);
        }

        #[test]
        fn dominance_split_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..200),
            q in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let t = RTree::bulk_load_with_fanout(3, &flat, 8);
            let qv = [q.0, q.1, q.2];
            let mut split = t.split_by_dominance(&qv);
            split.dominating_ids.sort();
            split.incomparable_ids.sort();
            let mut brute_d = Vec::new();
            let mut brute_i = Vec::new();
            for (i, (a, b, c)) in pts.iter().enumerate() {
                let p = [*a, *b, *c];
                if dominates(&p, &qv) {
                    brute_d.push(i as u32);
                } else if !dominates(&qv, &p) {
                    brute_i.push(i as u32);
                }
            }
            prop_assert_eq!(split.dominating_ids, brute_d);
            prop_assert_eq!(split.incomparable_ids, brute_i);
        }

        #[test]
        fn best_first_is_a_permutation_in_score_order(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..150),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 4);
            let w = [0.3, 0.7];
            let ranked: Vec<(u32, f64)> = t.best_first(&w).collect();
            prop_assert_eq!(ranked.len(), pts.len());
            let mut ids: Vec<u32> = ranked.iter().map(|(i, _)| *i).collect();
            ids.sort();
            prop_assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u32));
            prop_assert!(ranked.windows(2).all(|w2| w2[0].1 <= w2[1].1));
        }
    }
}
