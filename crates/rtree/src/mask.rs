//! The k-dominance pre-filter: per-point dominator counts materialised
//! at index-build time, in the spirit of Chester et al., *Indexing
//! Reverse Top-k Queries*.
//!
//! A point strictly dominated by `k` others can never be a top-k member
//! under any non-negative weight vector: each dominator's computed score
//! is no larger (round-to-nearest multiplies and adds are monotone and
//! both sides run the same operation order), so at least `k` points rank
//! at or ahead of it. [`DominanceIndex`] stores, for every point of one
//! tree, the number of points strictly dominating it (saturated at a
//! build cap), plus the minimum of those counts per subtree so probes
//! can skip whole all-masked subtrees in O(1).
//!
//! ## Verdict preservation, not count preservation
//!
//! Masked traversals ([`crate::RTree::probe_topk_membership_masked`])
//! keep wholesale subtree counts (which include masked points) while
//! skipping masked points wherever points are scored individually. The
//! resulting count `c` is not the exact better-count, but for any
//! exclusion threshold `k_eff` and verdict cap `cap ≤ k_eff` it
//! satisfies `c ≥ cap ⟺ exact ≥ cap`: if `exact ≥ cap`, order the
//! better-set by dominance — a masked point needs `k_eff` strict
//! predecessors, so the first `min(|B|, k_eff) ≥ cap` points of the
//! order are unmasked and still counted. Exact-rank and enumeration
//! paths must never consult the mask.
//!
//! ## Lifecycle under mutation
//!
//! The mask describes one *base epoch* — it is built from the bulk-loaded
//! tree and shared immutably until compaction rebuilds the base.
//! Appends never join the mask (delta rows are corrected separately and
//! can only add dominators, which keeps exclusions sound). Deletes are
//! absorbed by inflating the exclusion threshold: with `D` tombstones,
//! a point excluded at `k_eff = cap + D` still has at least `cap` live
//! dominators, so callers pass `k_eff = cap + tombstone_count` and fall
//! back to the unmasked path when that exceeds the build cap.

use crate::node::{Node, NodeId};
use crate::tree::RTree;
use std::sync::atomic::{AtomicU64, Ordering};
use wqrtq_geom::{dominates, FlatPoints};

/// Default saturation cap for dominator counts: generous against any
/// realistic `k + tombstones` while keeping the count storage at u16.
pub const DEFAULT_DOMINANCE_CAP: u16 = 1024;

/// Skyband thresholds of the nested culprit planes: one compact
/// [`FlatPoints`] per tier, holding every point with fewer than that
/// many dominators. A capped verdict picks the smallest tier at or
/// above its cap — small caps (the common `k ≈ 10` regime) scan the
/// tight inner skyband instead of the full outer one, and the middle
/// tier absorbs the cap inflation view verdicts pay per tombstone.
pub const CULPRIT_PLANE_TIERS: [u16; 3] = [10, 32, 128];

/// Exclusion-threshold ceiling of the culprit planes (the largest
/// tier): verdicts with caps above this fall back to masked probes.
pub const CULPRIT_PLANE_K: u16 = 128;

/// Largest fraction of the dataset the culprit plane may hold (as a
/// denominator): above `n / PLANE_MAX_FRACTION` points the plane would
/// barely shrink the scan while doubling resident coordinates, so the
/// build skips it and callers fall back to masked tree probes.
const PLANE_MAX_FRACTION: usize = 4;

/// Immutable dominator-count index over one tree's points (one base
/// epoch). Cheap to share (`Arc`) across serving workers; the only
/// mutable state is the relaxed skip counter.
#[derive(Debug)]
pub struct DominanceIndex {
    /// `counts[id]` = number of points strictly dominating point `id`,
    /// saturated at `cap`.
    counts: Vec<u16>,
    /// Minimum of `counts` over each tree node's subtree, indexed by
    /// node arena slot (parallel to the tree it was built from).
    node_min: Vec<u16>,
    cap: u16,
    /// Nested culprit planes, ascending by skyband threshold: each entry
    /// `(t, plane)` is a clustered [`FlatPoints`] over the `t`-skyband
    /// (every point with fewer than `t` dominators). Tiers whose skyband
    /// would exceed a quarter of the dataset are dropped (high
    /// dimensions / tiny sets), where a compact scan stops paying for
    /// itself; verdicts then fall back to masked tree probes.
    planes: Vec<(u16, FlatPoints)>,
    /// Points skipped by masked traversals since build (telemetry).
    skips: AtomicU64,
}

impl DominanceIndex {
    /// Builds the index with [`DEFAULT_DOMINANCE_CAP`].
    pub fn build(tree: &RTree) -> Self {
        Self::build_with_cap(tree, DEFAULT_DOMINANCE_CAP)
    }

    /// Builds the index, saturating per-point dominator counts at `cap`.
    ///
    /// One capped branch-and-bound count per point: subtrees with any
    /// per-dimension lower bound above the point are pruned, subtrees
    /// entirely at-or-below it (strictly below somewhere) count
    /// wholesale, and only genuinely straddling leaves scan entries.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn build_with_cap(tree: &RTree, cap: u16) -> Self {
        assert!(cap > 0, "dominance cap must be positive");
        let mut max_id = 0usize;
        let mut seen = false;
        tree.for_each_point(|id, _| {
            max_id = max_id.max(id as usize);
            seen = true;
        });
        let mut counts = vec![0u16; if seen { max_id + 1 } else { 0 }];
        let mut stack = Vec::new();
        tree.for_each_point(|id, p| {
            counts[id as usize] = count_dominators_capped(tree, p, cap as usize, &mut stack);
        });
        let mut node_min = vec![0u16; tree.nodes.len()];
        if !tree.is_empty() {
            fill_node_min(tree, tree.root_id(), &counts, &mut node_min);
        }
        let mut planes = Vec::new();
        if tree.len() >= PLANE_MAX_FRACTION {
            let dim = tree.dim();
            for tier in CULPRIT_PLANE_TIERS {
                let t = tier.min(cap);
                if planes.last().is_some_and(|(prev, _)| *prev >= t) {
                    continue; // cap collapsed this tier into the previous one
                }
                let skyband = counts.iter().filter(|&&c| c < t).count();
                if skyband > tree.len() / PLANE_MAX_FRACTION {
                    break; // larger tiers are supersets — all too dense
                }
                let mut rows = Vec::with_capacity(skyband * dim);
                tree.for_each_point(|id, p| {
                    if counts[id as usize] < t {
                        rows.extend_from_slice(p);
                    }
                });
                planes.push((t, FlatPoints::from_row_major(dim, &rows)));
            }
        }
        Self {
            counts,
            node_min,
            cap,
            planes,
            skips: AtomicU64::new(0),
        }
    }

    /// The saturation cap the counts were built with.
    #[inline]
    pub fn cap(&self) -> u16 {
        self.cap
    }

    /// Per-point dominator counts (saturated), indexed by point id —
    /// the raw slice consumed by the flat masked kernels.
    #[inline]
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Whether exclusion at `k_eff` is sound against the saturated
    /// counts: a stored count of `cap` only certifies "≥ cap"
    /// dominators, so thresholds above the cap must use the unmasked
    /// path.
    #[inline]
    pub fn usable_for(&self, k_eff: usize) -> bool {
        k_eff > 0 && k_eff <= self.cap as usize
    }

    /// Whether point `id` is excluded at threshold `k_eff` (has at
    /// least `k_eff` strict dominators). Ids outside the built range
    /// are never excluded.
    #[inline]
    pub fn is_excluded(&self, id: u32, k_eff: usize) -> bool {
        self.counts
            .get(id as usize)
            .is_some_and(|&c| (c as usize) >= k_eff)
    }

    /// Whether every point under `node` is excluded at `k_eff`.
    #[inline]
    pub(crate) fn node_excluded(&self, node: NodeId, k_eff: usize) -> bool {
        (self.node_min[node.idx()] as usize) >= k_eff
    }

    /// Number of tree nodes this index was built over (must match the
    /// tree it is consulted with).
    #[inline]
    pub(crate) fn node_slots(&self) -> usize {
        self.node_min.len()
    }

    /// Whether a `cap`-capped verdict may be served by a culprit plane:
    /// some tier's skyband threshold is at or above `cap`.
    #[inline]
    pub fn plane_usable_for(&self, cap: usize) -> bool {
        cap > 0
            && self
                .planes
                .last()
                .is_some_and(|(t, _)| (*t as usize) >= cap)
    }

    /// The nested culprit planes, ascending by skyband threshold.
    #[inline]
    pub fn culprit_planes(&self) -> &[(u16, FlatPoints)] {
        &self.planes
    }

    /// Serves the verdict "do at least `cap` points score strictly
    /// below `threshold` under `w`?" from a culprit plane alone, using
    /// the smallest tier whose threshold covers `cap`.
    ///
    /// Sound in both directions: the plane is a subset of the dataset,
    /// so its count never overshoots the exact one; and if the exact
    /// better-set `B` has at least `cap` elements, its first `cap`
    /// points in dominance order each have fewer than `cap ≤ tier`
    /// dominators (every dominator of a better point is itself better,
    /// so position `i` bounds the dominator count by `i − 1`) — all of
    /// them are in the tier's skyband and the capped plane count reaches
    /// `cap`. Deleted base points are counted like live ones, so view
    /// callers inflate `cap` by the dead better-count, exactly as with
    /// the probe cap. Returns `None` (caller falls back to a scan or
    /// probe) when no tier covers `cap` or `w` has a negative entry
    /// (the dominance argument needs monotone scoring).
    pub fn plane_outranked(&self, w: &[f64], threshold: f64, cap: usize) -> Option<bool> {
        if cap == 0 || w.iter().any(|&x| x < 0.0) {
            return None;
        }
        let (_, plane) = self.planes.iter().find(|(t, _)| (*t as usize) >= cap)?;
        self.note_skips((self.counts.len() - plane.len()) as u64);
        Some(plane.count_better_than_capped(w, threshold, cap) >= cap)
    }

    /// Samples up to `max_rows` culprit points — points scoring
    /// strictly below `threshold` under `w` — from the same tier a
    /// [`DominanceIndex::plane_outranked`] call with this `cap` would
    /// scan, appending to `out`. Returns the rows pushed (0 when no
    /// tier covers `cap`).
    ///
    /// Every row is a real dataset point, so a caller may feed the
    /// sample to a threshold-prune pool without affecting any verdict:
    /// pools re-score their rows per weight, and k distinct dataset
    /// points beating `q` prove it outranked regardless of how they
    /// were found. The ids are *plane-local* point indices — stable
    /// identities for pool deduplication within one base epoch, **not**
    /// dataset ids (a pool must never mix the two id spaces).
    pub fn plane_culprits_into(
        &self,
        w: &[f64],
        threshold: f64,
        cap: usize,
        max_rows: usize,
        out: &mut crate::search::CulpritBuf,
    ) -> usize {
        if cap == 0 {
            return 0;
        }
        match self.planes.iter().find(|(t, _)| (*t as usize) >= cap) {
            Some((_, plane)) => {
                plane.collect_better_into(w, threshold, max_rows, &mut out.ids, &mut out.coords)
            }
            None => 0,
        }
    }

    /// Points skipped by masked traversals since build.
    pub fn skips(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }

    /// Folds one traversal's skip tally into the cumulative counter.
    #[inline]
    pub(crate) fn note_skips(&self, n: u64) {
        if n > 0 {
            self.skips.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Counts points of `tree` strictly dominating `p`, stopping at `cap`.
fn count_dominators_capped(tree: &RTree, p: &[f64], cap: usize, stack: &mut Vec<NodeId>) -> u16 {
    stack.clear();
    if tree.is_empty() {
        return 0;
    }
    stack.push(tree.root_id());
    let dim = tree.dim();
    let mut count = 0usize;
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        let mbr = node.mbr();
        if mbr.is_empty() || mbr.lo().iter().zip(p).any(|(l, x)| l > x) {
            continue; // nothing in here is ≤ p in every dimension
        }
        let hi = mbr.hi();
        if hi.iter().zip(p).all(|(h, x)| h <= x) && hi.iter().zip(p).any(|(h, x)| h < x) {
            // Every point sits at-or-below p and strictly below in some
            // dimension: the whole subtree dominates p.
            count += node.count();
            if count >= cap {
                return cap as u16;
            }
            continue;
        }
        match node {
            Node::Leaf { ids, coords, .. } => {
                for slot in 0..ids.len() {
                    if dominates(&coords[slot * dim..(slot + 1) * dim], p) {
                        count += 1;
                        if count >= cap {
                            return cap as u16;
                        }
                    }
                }
            }
            Node::Internal { children, .. } => stack.extend(children.iter().copied()),
        }
    }
    count.min(cap) as u16
}

/// Bottom-up minimum dominator count per subtree.
fn fill_node_min(tree: &RTree, id: NodeId, counts: &[u16], node_min: &mut [u16]) -> u16 {
    let m = match tree.node(id) {
        Node::Leaf { ids, .. } => ids
            .iter()
            .map(|&i| counts.get(i as usize).copied().unwrap_or(0))
            .min()
            .unwrap_or(u16::MAX),
        Node::Internal { children, .. } => children
            .iter()
            .map(|&c| fill_node_min(tree, c, counts, node_min))
            .min()
            .unwrap_or(u16::MAX),
    };
    node_min[id.idx()] = m;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_geom::score;

    fn scatter(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = seed | 1;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
        }
        v
    }

    fn brute_counts(pts: &[f64], dim: usize) -> Vec<usize> {
        let rows: Vec<&[f64]> = pts.chunks_exact(dim).collect();
        rows.iter()
            .map(|p| rows.iter().filter(|q| dominates(q, p)).count())
            .collect()
    }

    #[test]
    fn counts_match_brute_force() {
        for dim in [2usize, 3, 4] {
            let pts = scatter(400, dim, dim as u64 + 7);
            let tree = RTree::bulk_load_with_fanout(dim, &pts, 8);
            let dom = DominanceIndex::build(&tree);
            let brute = brute_counts(&pts, dim);
            for (id, &b) in brute.iter().enumerate() {
                assert_eq!(
                    dom.counts()[id] as usize,
                    b.min(DEFAULT_DOMINANCE_CAP as usize),
                    "dim {dim} id {id}"
                );
            }
        }
    }

    #[test]
    fn duplicates_do_not_dominate_each_other() {
        // 300 copies of one point: nobody dominates anybody, so nothing
        // may ever be masked (the acyclicity that keeps ties sound).
        let pts: Vec<f64> = (0..300).flat_map(|_| [5.0, 5.0]).collect();
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build(&tree);
        assert!(dom.counts().iter().all(|&c| c == 0));
        assert!(!dom.is_excluded(0, 1));
    }

    #[test]
    fn saturation_respects_cap_and_usability() {
        let mut pts = vec![0.0, 0.0]; // dominates everything below
        pts.extend(scatter(500, 2, 3).iter().map(|x| x + 1.0));
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build_with_cap(&tree, 4);
        assert_eq!(dom.cap(), 4);
        assert!(dom.counts().iter().all(|&c| c <= 4));
        assert!(dom.usable_for(1) && dom.usable_for(4));
        assert!(!dom.usable_for(5) && !dom.usable_for(0));
        // The origin point dominates ≥ 4 others? No — it is dominated by
        // nobody; everything else is dominated by it.
        assert_eq!(dom.counts()[0], 0);
        assert!(dom.counts()[1..].iter().all(|&c| c >= 1));
    }

    #[test]
    fn node_min_is_a_lower_bound_everywhere() {
        let pts = scatter(600, 3, 11);
        let tree = RTree::bulk_load_with_fanout(3, &pts, 8);
        let dom = DominanceIndex::build(&tree);
        // Walk every node and check min(counts of subtree) == node_min.
        fn subtree_min(tree: &RTree, id: NodeId, counts: &[u16]) -> u16 {
            match tree.node(id) {
                Node::Leaf { ids, .. } => ids.iter().map(|&i| counts[i as usize]).min().unwrap(),
                Node::Internal { children, .. } => children
                    .iter()
                    .map(|&c| subtree_min(tree, c, counts))
                    .min()
                    .unwrap(),
            }
        }
        let root = tree.root_id();
        assert_eq!(
            dom.node_min[root.idx()],
            subtree_min(&tree, root, dom.counts())
        );
        assert_eq!(dom.node_slots(), tree.nodes.len());
    }

    #[test]
    fn masked_probe_matches_unmasked_with_ties() {
        let mut pts = scatter(900, 2, 5);
        // Inject exact duplicates (tie territory).
        let dup: Vec<f64> = pts[..40].to_vec();
        pts.extend_from_slice(&dup);
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build(&tree);
        let mut scratch = crate::ProbeScratch::new();
        for wraw in [[0.2, 0.8], [0.5, 0.5], [0.85, 0.15]] {
            for qi in (0..pts.len() / 2).step_by(37) {
                let q = &pts[qi * 2..qi * 2 + 2];
                let t = score(&wraw, q);
                for k in [1usize, 3, 10] {
                    let plain = tree.probe_topk_membership(&wraw, t, k, &mut scratch, None);
                    let masked =
                        tree.probe_topk_membership_masked(&wraw, t, k, k, &dom, &mut scratch, None);
                    assert_eq!(masked.in_topk, plain.in_topk, "w {wraw:?} q {q:?} k {k}");
                }
            }
        }
        assert!(dom.skips() > 0, "the mask should have skipped something");
    }

    #[test]
    fn empty_tree_builds_empty_index() {
        let tree = RTree::new(3, 8);
        let dom = DominanceIndex::build(&tree);
        assert!(dom.counts().is_empty());
        assert!(!dom.is_excluded(0, 1));
        assert!(!dom.plane_usable_for(1));
        assert_eq!(dom.plane_outranked(&[0.5, 0.5, 0.0], 1.0, 1), None);
    }

    #[test]
    fn plane_verdicts_match_full_counts() {
        // Every tier's capped verdict must equal brute-force counting
        // over the *entire* dataset — for caps served by the inner tier,
        // the outer tier, and caps between the two. Caps above the
        // retained ceiling must decline instead of guessing.
        let pts = scatter(3000, 2, 17);
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build(&tree);
        let planes = dom.culprit_planes();
        assert!(planes.len() >= 2, "3000 uniform 2-d points keep both tiers");
        assert!(planes.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(planes.windows(2).all(|w| w[0].1.len() <= w[1].1.len()));
        let ceiling = planes.last().unwrap().0 as usize;
        assert!(dom.plane_usable_for(ceiling) && !dom.plane_usable_for(ceiling + 1));
        for wraw in [[0.3, 0.7], [0.5, 0.5], [0.9, 0.1]] {
            for qi in (0..1500).step_by(131) {
                let q = &pts[qi * 2..qi * 2 + 2];
                let t = score(&wraw, q);
                let exact = pts.chunks_exact(2).filter(|p| score(&wraw, p) < t).count();
                for cap in [1usize, 4, 16, 17, 60, 128, 129] {
                    let expected = (cap <= ceiling).then_some(exact >= cap);
                    assert_eq!(
                        dom.plane_outranked(&wraw, t, cap),
                        expected,
                        "w {wraw:?} q {q:?} cap {cap} exact {exact}"
                    );
                }
            }
        }
        assert!(dom.skips() > 0, "plane verdicts should report skips");
    }

    #[test]
    fn plane_tiers_collapse_under_a_small_cap() {
        // cap = 8 < every tier threshold: the tiers collapse into one
        // 8-skyband plane, and caps above the build cap decline.
        let pts = scatter(800, 2, 23);
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build_with_cap(&tree, 8);
        assert_eq!(dom.culprit_planes().len(), 1);
        assert_eq!(dom.culprit_planes()[0].0, 8);
        assert!(dom.plane_usable_for(8) && !dom.plane_usable_for(9));
        // Negative weight entries break the dominance argument.
        assert_eq!(dom.plane_outranked(&[-0.1, 1.1], 2.0, 4), None);
        // Caps beyond the ceiling, and cap = 0, decline.
        assert_eq!(dom.plane_outranked(&[0.5, 0.5], 2.0, 9), None);
        assert_eq!(dom.plane_outranked(&[0.5, 0.5], 2.0, 0), None);
    }

    #[test]
    fn dense_skyband_drops_the_plane() {
        // All-duplicate data: nothing dominates anything, the skyband is
        // the whole dataset, and keeping a plane would just be a full
        // copy — the build must decline it.
        let pts: Vec<f64> = (0..300).flat_map(|_| [5.0, 5.0]).collect();
        let tree = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build(&tree);
        assert!(dom.culprit_planes().is_empty());
        assert_eq!(dom.plane_outranked(&[0.5, 0.5], 6.0, 1), None);
    }
}
