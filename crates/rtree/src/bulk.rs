//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` points into `⌈n / fanout⌉` leaves by recursively sorting
//! on each dimension and slicing into `⌈L^(1/d)⌉` slabs, producing compact,
//! low-overlap leaves. Upper levels are built by packing consecutive runs
//! of the (spatially ordered) lower level, up to the root.

use crate::node::{Node, NodeId};
use crate::tree::RTree;
use wqrtq_geom::Mbr;

/// Builds an [`RTree`] over the flat `n × dim` coordinate buffer.
///
/// # Panics
/// Panics if `dim == 0`, `fanout < 4`, or the buffer length is not a
/// multiple of `dim`.
pub fn str_bulk_load(dim: usize, points: &[f64], fanout: usize) -> RTree {
    assert!(dim > 0, "dimension must be positive");
    assert!(fanout >= 4, "fanout must be at least 4");
    assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
    let n = points.len() / dim;

    let mut tree = RTree::new(dim, fanout);
    if n == 0 {
        return tree;
    }
    tree.nodes.clear();

    // Order point indices with recursive sort-tile slicing.
    let mut order: Vec<u32> = (0..n as u32).collect();
    str_order(points, dim, fanout, &mut order, 0);

    // Pack leaves from consecutive runs of the STR order.
    let mut level: Vec<NodeId> = Vec::with_capacity(n.div_ceil(fanout));
    for chunk in order.chunks(fanout) {
        let mut mbr = Mbr::empty(dim);
        let mut ids = Vec::with_capacity(chunk.len());
        let mut coords = Vec::with_capacity(chunk.len() * dim);
        for &id in chunk {
            let p = &points[id as usize * dim..(id as usize + 1) * dim];
            mbr.expand(p);
            ids.push(id);
            coords.extend_from_slice(p);
        }
        level.push(tree.push_node(Node::Leaf { mbr, ids, coords }));
    }

    // Pack upper levels until a single root remains.
    while level.len() > 1 {
        let mut next: Vec<NodeId> = Vec::with_capacity(level.len().div_ceil(fanout));
        for chunk in level.chunks(fanout) {
            let mut mbr = Mbr::empty(dim);
            let mut count = 0;
            for &c in chunk {
                mbr.union(tree.node(c).mbr());
                count += tree.node(c).count();
            }
            next.push(tree.push_node(Node::Internal {
                mbr,
                children: chunk.to_vec(),
                count,
            }));
        }
        level = next;
    }

    tree.root = level[0];
    tree.len = n;
    tree
}

/// Recursively orders `order[..]` so that consecutive runs of `fanout`
/// indices form spatially compact tiles.
fn str_order(points: &[f64], dim: usize, fanout: usize, order: &mut [u32], axis: usize) {
    let n = order.len();
    if n <= fanout {
        return;
    }
    order.sort_unstable_by(|&a, &b| {
        let va = points[a as usize * dim + axis];
        let vb = points[b as usize * dim + axis];
        va.total_cmp(&vb)
    });
    if axis + 1 == dim {
        return; // final axis: chunking happens at the caller
    }
    // Number of slabs along this axis: S = ⌈L^(1/(d−axis))⌉ with
    // L = ⌈n / fanout⌉ leaves remaining.
    let leaves = n.div_ceil(fanout) as f64;
    let remaining = (dim - axis) as f64;
    let slabs = leaves.powf(1.0 / remaining).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_order(points, dim, fanout, &mut order[start..end], axis + 1);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, dim: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = 42u64;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        v
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let t = str_bulk_load(2, &[], 8);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn single_point() {
        let t = str_bulk_load(3, &[1.0, 2.0, 3.0], 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn exact_fanout_boundary() {
        // n == fanout → one leaf; n == fanout + 1 → needs two leaves + root.
        let pts = scatter(8, 2);
        let t = str_bulk_load(2, &pts, 8);
        assert_eq!(t.node_count(), 1);
        let pts9 = scatter(9, 2);
        let t9 = str_bulk_load(2, &pts9, 8);
        assert!(t9.node_count() >= 3);
        t9.validate().unwrap();
    }

    #[test]
    fn leaves_tile_space_with_low_overlap() {
        // STR on a uniform grid should produce leaves whose total area is
        // close to the root area (little overlap).
        let mut pts = Vec::new();
        for x in 0..32 {
            for y in 0..32 {
                pts.extend([x as f64, y as f64]);
            }
        }
        let t = str_bulk_load(2, &pts, 16);
        t.validate().unwrap();
        let root_area = t.root_mbr().unwrap().area();
        let mut leaf_area = 0.0;
        for node in &t.nodes {
            if let Node::Leaf { mbr, .. } = node {
                leaf_area += mbr.area();
            }
        }
        assert!(
            leaf_area < 1.5 * root_area,
            "leaf area {leaf_area} vs root {root_area}"
        );
    }

    #[test]
    fn high_dimensional_bulk_load() {
        let pts = scatter(500, 13); // NBA-like dimensionality
        let t = str_bulk_load(13, &pts, 32);
        assert_eq!(t.len(), 500);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_buffer_panics() {
        let _ = str_bulk_load(2, &[1.0, 2.0, 3.0], 8);
    }
}
