//! Traversal instrumentation.
//!
//! The paper's cost models (Theorems 1–3) are expressed in node accesses
//! (`|RT|` terms). These counted variants of the query primitives let
//! tests and benches verify that branch-and-bound really prunes — e.g.
//! that a selective rank query touches a small fraction of the tree —
//! instead of trusting wall-clock alone.

use crate::node::Node;
use crate::tree::RTree;
use wqrtq_geom::score;

/// Node-access counters for one traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Internal nodes visited.
    pub internal_visited: usize,
    /// Leaf nodes visited.
    pub leaves_visited: usize,
    /// Subtrees accepted wholesale via their cached counts.
    pub subtrees_counted: usize,
    /// Subtrees pruned without descending.
    pub subtrees_pruned: usize,
}

impl TraversalStats {
    /// Total node accesses.
    pub fn nodes_visited(&self) -> usize {
        self.internal_visited + self.leaves_visited
    }
}

impl RTree {
    /// [`RTree::count_score_below`] with node-access counters.
    pub fn count_score_below_stats(
        &self,
        weight: &[f64],
        threshold: f64,
        strict: bool,
    ) -> (usize, TraversalStats) {
        assert_eq!(weight.len(), self.dim(), "weight dimension mismatch");
        let mut stats = TraversalStats::default();
        if self.is_empty() {
            return (0, stats);
        }
        let mut count = 0usize;
        let mut stack = vec![self.root_id()];
        let dim = self.dim();
        while let Some(node_id) = stack.pop() {
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() {
                continue;
            }
            let lo = mbr.min_score(weight);
            let hi = mbr.max_score(weight);
            let below = |s: f64| {
                if strict {
                    s < threshold
                } else {
                    s <= threshold
                }
            };
            if !below(lo) {
                stats.subtrees_pruned += 1;
                continue;
            }
            if below(hi) {
                stats.subtrees_counted += 1;
                count += node.count();
                continue;
            }
            match node {
                Node::Leaf { ids, coords, .. } => {
                    stats.leaves_visited += 1;
                    for slot in 0..ids.len() {
                        let p = &coords[slot * dim..(slot + 1) * dim];
                        if below(score(weight, p)) {
                            count += 1;
                        }
                    }
                }
                Node::Internal { children, .. } => {
                    stats.internal_visited += 1;
                    stack.extend(children.iter().copied());
                }
            }
        }
        (count, stats)
    }

    /// [`RTree::split_by_dominance`]-style traversal counting only the
    /// node accesses (the `FindIncom` cost of Theorem 2).
    pub fn dominance_traversal_stats(&self, q: &[f64]) -> TraversalStats {
        assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        let mut stats = TraversalStats::default();
        if self.is_empty() {
            return stats;
        }
        let mut stack = vec![self.root_id()];
        while let Some(node_id) = stack.pop() {
            let node = self.node(node_id);
            let mbr = node.mbr();
            if mbr.is_empty() || mbr.entirely_dominated_by(q) {
                stats.subtrees_pruned += 1;
                continue;
            }
            match node {
                Node::Leaf { .. } => stats.leaves_visited += 1,
                Node::Internal { children, .. } => {
                    stats.internal_visited += 1;
                    stack.extend(children.iter().copied());
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = seed | 1;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        v
    }

    #[test]
    fn counted_variant_matches_plain_count() {
        let pts = scatter(5_000, 3, 3);
        let t = RTree::bulk_load_with_fanout(3, &pts, 16);
        let w = [0.2, 0.5, 0.3];
        for threshold in [0.05, 0.2, 0.5, 1.2] {
            let plain = t.count_score_below(&w, threshold, true);
            let (counted, _) = t.count_score_below_stats(&w, threshold, true);
            assert_eq!(plain, counted, "threshold {threshold}");
        }
    }

    #[test]
    fn selective_queries_touch_few_nodes() {
        // A tight threshold must visit a small fraction of the tree —
        // the branch-and-bound claim behind Theorem 1's |RT| factor.
        let pts = scatter(20_000, 3, 7);
        let t = RTree::bulk_load_with_fanout(3, &pts, 32);
        let w = [1.0 / 3.0; 3];
        let (_, stats) = t.count_score_below_stats(&w, 0.08, true);
        assert!(
            stats.nodes_visited() < t.node_count() / 5,
            "visited {} of {} nodes",
            stats.nodes_visited(),
            t.node_count()
        );
        assert!(stats.subtrees_pruned > 0);
    }

    #[test]
    fn unselective_queries_count_subtrees_wholesale() {
        let pts = scatter(20_000, 2, 9);
        let t = RTree::bulk_load_with_fanout(2, &pts, 32);
        // Threshold above every score: everything counted via subtrees.
        let (count, stats) = t.count_score_below_stats(&[0.5, 0.5], 10.0, true);
        assert_eq!(count, 20_000);
        assert_eq!(stats.leaves_visited, 0);
        assert_eq!(stats.subtrees_counted, 1); // the root itself
    }

    #[test]
    fn dominance_pruning_skips_dominated_subtrees() {
        let pts = scatter(20_000, 3, 11);
        let t = RTree::bulk_load_with_fanout(3, &pts, 32);
        // A very good query point dominates most of the data.
        let stats = t.dominance_traversal_stats(&[0.05, 0.05, 0.05]);
        assert!(
            stats.subtrees_pruned > 0,
            "expected pruned subtrees: {stats:?}"
        );
        assert!(stats.nodes_visited() < t.node_count());
    }

    #[test]
    fn empty_tree_stats() {
        let t = RTree::new(2, 8);
        let (c, s) = t.count_score_below_stats(&[0.5, 0.5], 1.0, true);
        assert_eq!(c, 0);
        assert_eq!(s, TraversalStats::default());
        assert_eq!(s.nodes_visited(), 0);
    }
}
