//! R-tree node representation.
//!
//! Nodes live in a flat arena indexed by [`NodeId`]; leaves store point
//! ids alongside a flattened coordinate buffer for cache-friendly scans,
//! and every node caches the number of points beneath it so that counting
//! queries can take whole subtrees in O(1).

use wqrtq_geom::Mbr;

/// Index of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An R-tree node: either a leaf holding data points or an internal node
/// holding child references.
#[derive(Clone, Debug)]
pub enum Node {
    /// A leaf bucket of data points.
    Leaf {
        /// Bounding box of the stored points.
        mbr: Mbr,
        /// Caller-provided point identifiers.
        ids: Vec<u32>,
        /// Row-major coordinates, `ids.len() × dim`.
        coords: Vec<f64>,
    },
    /// An internal routing node.
    Internal {
        /// Bounding box of all children.
        mbr: Mbr,
        /// Child node ids.
        children: Vec<NodeId>,
        /// Total number of points in the subtree.
        count: usize,
    },
}

impl Node {
    /// The node's bounding box.
    pub fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => mbr,
        }
    }

    /// Number of points under this node.
    pub fn count(&self) -> usize {
        match self {
            Node::Leaf { ids, .. } => ids.len(),
            Node::Internal { count, .. } => *count,
        }
    }

    /// Number of direct entries (points or children).
    pub fn num_entries(&self) -> usize {
        match self {
            Node::Leaf { ids, .. } => ids.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    /// Whether this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// An empty leaf of the given dimensionality.
    pub(crate) fn empty_leaf(dim: usize) -> Self {
        Node::Leaf {
            mbr: Mbr::empty(dim),
            ids: Vec::new(),
            coords: Vec::new(),
        }
    }

    /// Coordinates of the `slot`-th point in a leaf.
    ///
    /// # Panics
    /// Panics if called on an internal node or with an out-of-range slot.
    #[inline]
    pub fn point(&self, slot: usize, dim: usize) -> &[f64] {
        match self {
            Node::Leaf { coords, .. } => &coords[slot * dim..(slot + 1) * dim],
            Node::Internal { .. } => panic!("point() called on internal node"),
        }
    }

    /// Recomputes a leaf MBR from scratch.
    pub fn recompute_leaf_mbr(&mut self, dim: usize) {
        if let Node::Leaf { mbr, ids, coords } = self {
            let mut fresh = Mbr::empty(dim);
            for slot in 0..ids.len() {
                fresh.expand(&coords[slot * dim..(slot + 1) * dim]);
            }
            *mbr = fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_accessors() {
        let mut leaf = Node::empty_leaf(2);
        if let Node::Leaf { ids, coords, .. } = &mut leaf {
            ids.extend([7, 9]);
            coords.extend([1.0, 2.0, 3.0, 4.0]);
        }
        leaf.recompute_leaf_mbr(2);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.count(), 2);
        assert_eq!(leaf.num_entries(), 2);
        assert_eq!(leaf.point(1, 2), &[3.0, 4.0]);
        assert_eq!(leaf.mbr().lo(), &[1.0, 2.0]);
        assert_eq!(leaf.mbr().hi(), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "internal node")]
    fn point_on_internal_panics() {
        let n = Node::Internal {
            mbr: Mbr::from_point(&[0.0]),
            children: vec![],
            count: 0,
        };
        let _ = n.point(0, 1);
    }
}
