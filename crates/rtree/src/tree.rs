//! The R-tree container: construction, insertion, statistics, invariants.

use crate::bulk;
use crate::node::{Node, NodeId};
use crate::DEFAULT_FANOUT;
use wqrtq_geom::Mbr;

/// A d-dimensional R-tree over `(u32, point)` entries.
///
/// Build statically with [`RTree::bulk_load`] (STR packing) or start from
/// [`RTree::new`] and [`RTree::insert`] points incrementally; the two can
/// be mixed.
#[derive(Clone, Debug)]
pub struct RTree {
    pub(crate) dim: usize,
    pub(crate) fanout: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) len: usize,
}

impl RTree {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `fanout < 4`.
    pub fn new(dim: usize, fanout: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(fanout >= 4, "fanout must be at least 4");
        Self {
            dim,
            fanout,
            nodes: vec![Node::empty_leaf(dim)],
            root: NodeId(0),
            len: 0,
        }
    }

    /// Bulk loads a dataset with Sort-Tile-Recursive packing and the
    /// default fanout. `points` is a flat row-major buffer of
    /// `n × dim` coordinates; point `i` gets id `i as u32`.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn bulk_load(dim: usize, points: &[f64]) -> Self {
        Self::bulk_load_with_fanout(dim, points, DEFAULT_FANOUT)
    }

    /// [`RTree::bulk_load`] with an explicit fanout.
    pub fn bulk_load_with_fanout(dim: usize, points: &[f64], fanout: usize) -> Self {
        bulk::str_bulk_load(dim, points, fanout)
    }

    /// Dimensionality of the indexed points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes (the paper's `|RT|` cost factor).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.node(self.root);
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = self.node(children[0]);
        }
        h
    }

    /// Root bounding box (`None` when empty).
    pub fn root_mbr(&self) -> Option<&Mbr> {
        if self.is_empty() {
            None
        } else {
            Some(self.node(self.root).mbr())
        }
    }

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.idx()]
    }

    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Root node id (for traversal code in this crate).
    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }

    /// Inserts a point with the given id.
    ///
    /// # Panics
    /// Panics if `point.len() != dim`.
    pub fn insert(&mut self, id: u32, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        let root = self.root;
        if let Some(sibling) = self.insert_rec(root, id, point) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let mbr = self.node(old_root).mbr().unioned(self.node(sibling).mbr());
            let count = self.node(old_root).count() + self.node(sibling).count();
            let new_root = self.push_node(Node::Internal {
                mbr,
                children: vec![old_root, sibling],
                count,
            });
            self.root = new_root;
        }
        self.len += 1;
    }

    /// Recursive insert; returns a new sibling node id when `node` split.
    fn insert_rec(&mut self, node_id: NodeId, id: u32, point: &[f64]) -> Option<NodeId> {
        let dim = self.dim;
        let fanout = self.fanout;
        match self.node_mut(node_id) {
            Node::Leaf { mbr, ids, coords } => {
                ids.push(id);
                coords.extend_from_slice(point);
                if mbr.is_empty() {
                    *mbr = Mbr::from_point(point);
                } else {
                    mbr.expand(point);
                }
                if ids.len() > fanout {
                    return Some(self.split_leaf(node_id));
                }
                None
            }
            Node::Internal { .. } => {
                let child = self.choose_subtree(node_id, point);
                let split = self.insert_rec(child, id, point);
                // Refresh this node's MBR and count.
                let mut new_children: Option<NodeId> = None;
                if let Some(sibling) = split {
                    new_children = Some(sibling);
                }
                if let Node::Internal {
                    mbr,
                    children,
                    count,
                } = self.node_mut(node_id)
                {
                    *count += 1;
                    if let Some(sib) = new_children {
                        children.push(sib);
                    }
                    let _ = mbr;
                }
                self.refresh_internal_mbr(node_id);
                let overflow = matches!(
                    self.node(node_id),
                    Node::Internal { children, .. } if children.len() > fanout
                );
                if overflow {
                    return Some(self.split_internal(node_id));
                }
                let _ = dim;
                None
            }
        }
    }

    /// Picks the child whose MBR needs the least enlargement (ties by
    /// smaller area) — the classic Guttman descent.
    fn choose_subtree(&self, node_id: NodeId, point: &[f64]) -> NodeId {
        let Node::Internal { children, .. } = self.node(node_id) else {
            unreachable!("choose_subtree on leaf");
        };
        let mut best = children[0];
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for &c in children {
            let m = self.node(c).mbr();
            let enl = if m.is_empty() {
                f64::INFINITY
            } else {
                m.enlargement(point)
            };
            let area = m.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = c;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Splits an over-full leaf with the linear-cost seed heuristic;
    /// returns the new sibling's id.
    #[allow(clippy::needless_range_loop)] // parallel ids/coords indexing
    fn split_leaf(&mut self, node_id: NodeId) -> NodeId {
        let dim = self.dim;
        let (ids, coords) = match self.node_mut(node_id) {
            Node::Leaf { ids, coords, .. } => (std::mem::take(ids), std::mem::take(coords)),
            Node::Internal { .. } => unreachable!("split_leaf on internal"),
        };
        let n = ids.len();
        let point = |i: usize| &coords[i * dim..(i + 1) * dim];
        let (seed_a, seed_b) = linear_seeds(n, point);

        let mut a_ids = vec![ids[seed_a]];
        let mut a_coords = point(seed_a).to_vec();
        let mut a_mbr = Mbr::from_point(point(seed_a));
        let mut b_ids = vec![ids[seed_b]];
        let mut b_coords = point(seed_b).to_vec();
        let mut b_mbr = Mbr::from_point(point(seed_b));
        for i in 0..n {
            if i == seed_a || i == seed_b {
                continue;
            }
            let p = point(i);
            if a_mbr.enlargement(p) <= b_mbr.enlargement(p) {
                a_ids.push(ids[i]);
                a_coords.extend_from_slice(p);
                a_mbr.expand(p);
            } else {
                b_ids.push(ids[i]);
                b_coords.extend_from_slice(p);
                b_mbr.expand(p);
            }
        }
        *self.node_mut(node_id) = Node::Leaf {
            mbr: a_mbr,
            ids: a_ids,
            coords: a_coords,
        };
        self.push_node(Node::Leaf {
            mbr: b_mbr,
            ids: b_ids,
            coords: b_coords,
        })
    }

    /// Splits an over-full internal node; returns the new sibling's id.
    #[allow(clippy::needless_range_loop)] // parallel children/centers indexing
    fn split_internal(&mut self, node_id: NodeId) -> NodeId {
        let children = match self.node_mut(node_id) {
            Node::Internal { children, .. } => std::mem::take(children),
            Node::Leaf { .. } => unreachable!("split_internal on leaf"),
        };
        let n = children.len();
        let center = |i: usize| -> Vec<f64> {
            let m = self.node(children[i]).mbr();
            m.lo()
                .iter()
                .zip(m.hi())
                .map(|(l, h)| 0.5 * (l + h))
                .collect()
        };
        let centers: Vec<Vec<f64>> = (0..n).map(center).collect();
        let (seed_a, seed_b) = linear_seeds(n, |i| centers[i].as_slice());

        let mut group_a = vec![children[seed_a]];
        let mut a_mbr = self.node(children[seed_a]).mbr().clone();
        let mut group_b = vec![children[seed_b]];
        let mut b_mbr = self.node(children[seed_b]).mbr().clone();
        for i in 0..n {
            if i == seed_a || i == seed_b {
                continue;
            }
            let m = self.node(children[i]).mbr().clone();
            let grown_a = a_mbr.unioned(&m).area() - a_mbr.area();
            let grown_b = b_mbr.unioned(&m).area() - b_mbr.area();
            if grown_a <= grown_b {
                group_a.push(children[i]);
                a_mbr.union(&m);
            } else {
                group_b.push(children[i]);
                b_mbr.union(&m);
            }
        }
        let count_a: usize = group_a.iter().map(|&c| self.node(c).count()).sum();
        let count_b: usize = group_b.iter().map(|&c| self.node(c).count()).sum();
        *self.node_mut(node_id) = Node::Internal {
            mbr: a_mbr,
            children: group_a,
            count: count_a,
        };
        self.push_node(Node::Internal {
            mbr: b_mbr,
            children: group_b,
            count: count_b,
        })
    }

    /// Recomputes an internal node's MBR from its children.
    fn refresh_internal_mbr(&mut self, node_id: NodeId) {
        let (children, dim) = match self.node(node_id) {
            Node::Internal { children, .. } => (children.clone(), self.dim),
            Node::Leaf { .. } => return,
        };
        let mut mbr = Mbr::empty(dim);
        for c in &children {
            let m = self.node(*c).mbr();
            if !m.is_empty() {
                mbr.union(m);
            }
        }
        if let Node::Internal { mbr: slot, .. } = self.node_mut(node_id) {
            *slot = mbr;
        }
    }

    /// Visits every `(id, coords)` pair (test/debug helper; O(n)).
    pub fn for_each_point(&self, mut f: impl FnMut(u32, &[f64])) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Leaf { ids, coords, .. } => {
                    for (slot, pid) in ids.iter().enumerate() {
                        f(*pid, &coords[slot * self.dim..(slot + 1) * self.dim]);
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Checks every structural invariant; returns a description of the
    /// first violation. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_points = 0usize;
        self.validate_rec(self.root, true, &mut seen_points)?;
        if seen_points != self.len {
            return Err(format!(
                "len {} != visited points {}",
                self.len, seen_points
            ));
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        node_id: NodeId,
        is_root: bool,
        seen_points: &mut usize,
    ) -> Result<(), String> {
        let node = self.node(node_id);
        if node.num_entries() > self.fanout && !node.is_leaf() {
            return Err(format!("node {node_id:?} exceeds fanout"));
        }
        match node {
            Node::Leaf { mbr, ids, coords } => {
                if ids.len() > self.fanout {
                    return Err(format!("leaf {node_id:?} exceeds fanout"));
                }
                if coords.len() != ids.len() * self.dim {
                    return Err(format!("leaf {node_id:?} coords length mismatch"));
                }
                for slot in 0..ids.len() {
                    let p = &coords[slot * self.dim..(slot + 1) * self.dim];
                    if !mbr.contains(p) {
                        return Err(format!("leaf {node_id:?} MBR misses point {slot}"));
                    }
                }
                *seen_points += ids.len();
                if ids.is_empty() && !is_root {
                    return Err(format!("non-root leaf {node_id:?} is empty"));
                }
                Ok(())
            }
            Node::Internal {
                mbr,
                children,
                count,
            } => {
                if children.is_empty() {
                    return Err(format!("internal {node_id:?} has no children"));
                }
                let mut child_count = 0;
                for &c in children {
                    let cm = self.node(c).mbr();
                    if !cm.is_empty() && (!mbr.contains(cm.lo()) || !mbr.contains(cm.hi())) {
                        return Err(format!("internal {node_id:?} MBR misses child {c:?}"));
                    }
                    child_count += self.node(c).count();
                    self.validate_rec(c, false, seen_points)?;
                }
                if child_count != *count {
                    return Err(format!(
                        "internal {node_id:?} count {count} != children sum {child_count}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Linear split seed selection: in each dimension find the entries with
/// the highest low value and the lowest high value; normalise the
/// separation by the dimension's width and pick the dimension with the
/// greatest normalised separation.
fn linear_seeds<'a>(n: usize, point: impl Fn(usize) -> &'a [f64]) -> (usize, usize) {
    debug_assert!(n >= 2);
    let dim = point(0).len();
    let mut best_sep = f64::NEG_INFINITY;
    let mut pair = (0, 1);
    for d in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut max_lo = (f64::NEG_INFINITY, 0usize);
        let mut min_hi = (f64::INFINITY, 0usize);
        for i in 0..n {
            let v = point(i)[d];
            lo = lo.min(v);
            hi = hi.max(v);
            if v > max_lo.0 {
                max_lo = (v, i);
            }
            if v < min_hi.0 {
                min_hi = (v, i);
            }
        }
        let width = (hi - lo).max(1e-12);
        let sep = (max_lo.0 - min_hi.0) / width;
        if sep > best_sep && max_lo.1 != min_hi.1 {
            best_sep = sep;
            pair = (min_hi.1, max_lo.1);
        }
    }
    if pair.0 == pair.1 {
        pair = (0, if n > 1 { 1 } else { 0 });
    }
    pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid_points(n: usize, dim: usize) -> Vec<f64> {
        // Deterministic pseudo-random scatter without external deps.
        let mut v = Vec::with_capacity(n * dim);
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..n * dim {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64 * 100.0);
        }
        v
    }

    #[test]
    fn empty_tree_properties() {
        let t = RTree::new(3, 8);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.root_mbr().is_none());
        t.validate().unwrap();
    }

    #[test]
    fn insert_points_and_validate() {
        let mut t = RTree::new(2, 4);
        let pts = grid_points(200, 2);
        for i in 0..200 {
            t.insert(i as u32, &pts[i * 2..i * 2 + 2]);
            if i % 37 == 0 {
                t.validate().unwrap();
            }
        }
        assert_eq!(t.len(), 200);
        t.validate().unwrap();
        assert!(t.height() > 1);
        let mut count = 0;
        t.for_each_point(|_, _| count += 1);
        assert_eq!(count, 200);
    }

    #[test]
    fn bulk_load_and_validate() {
        let pts = grid_points(1000, 3);
        let t = RTree::bulk_load_with_fanout(3, &pts, 16);
        assert_eq!(t.len(), 1000);
        t.validate().unwrap();
        // Every original point must be present with its id.
        let mut seen = vec![false; 1000];
        t.for_each_point(|id, c| {
            assert_eq!(c, &pts[id as usize * 3..id as usize * 3 + 3]);
            seen[id as usize] = true;
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bulk_load_small_dataset_is_single_leaf() {
        let pts = grid_points(5, 2);
        let t = RTree::bulk_load_with_fanout(2, &pts, 16);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn mixed_bulk_then_insert() {
        let pts = grid_points(300, 2);
        let mut t = RTree::bulk_load_with_fanout(2, &pts, 8);
        let extra = grid_points(100, 2);
        for i in 0..100 {
            t.insert(1000 + i as u32, &extra[i * 2..i * 2 + 2]);
        }
        assert_eq!(t.len(), 400);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_coordinates_are_fine() {
        let mut t = RTree::new(2, 4);
        for i in 0..50 {
            t.insert(i, &[1.0, 1.0]);
        }
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dim_panics() {
        let mut t = RTree::new(3, 4);
        t.insert(0, &[1.0, 2.0]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let pts = grid_points(4096, 2);
        let t = RTree::bulk_load_with_fanout(2, &pts, 8);
        // 4096 points at fanout 8: ≥ 512 leaves → height ≥ 4.
        assert!(t.height() >= 4, "height = {}", t.height());
        assert!(t.height() <= 7, "height = {}", t.height());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn invariants_hold_for_random_inserts(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
            fanout in 4usize..12,
        ) {
            let mut t = RTree::new(2, fanout);
            for (i, (x, y)) in pts.iter().enumerate() {
                t.insert(i as u32, &[*x, *y]);
            }
            prop_assert_eq!(t.len(), pts.len());
            prop_assert!(t.validate().is_ok());
        }

        #[test]
        fn invariants_hold_for_bulk_loads(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0), 1..400),
            fanout in 4usize..32,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let t = RTree::bulk_load_with_fanout(3, &flat, fanout);
            prop_assert_eq!(t.len(), pts.len());
            prop_assert!(t.validate().is_ok());
        }
    }
}
