//! The dominance frontier and the MQWK *reuse* technique (§4.4).
//!
//! `FindIncom` classifies the dataset relative to a query point into
//! dominators `D`, incomparable points `I`, and (pruned) points dominated
//! by `q`. The rank of `q` under any strictly positive weighting vector
//! follows from `D` and `I` alone:
//! `rank = 1 + |D| + |{p ∈ I : f(w, p) < f(w, q)}|`.
//!
//! MQWK evaluates many sampled query points `q′ ⪯ q`. Because `q′`
//! dominates `q`, every point dominated by `q` stays dominated by `q′`,
//! so one R-tree traversal for the original `q` yields a *frontier*
//! (`D ∪ I`) that is a superset of every sample's frontier and can be
//! re-classified per sample without touching the index again — the
//! paper's reuse technique (revised `FindIncom`, §4.4).

use wqrtq_geom::{dominates, score, DeltaView, FlatPoints};
use wqrtq_rtree::{search::DominanceSplit, RTree};

/// The classified frontier of a query point: everything needed to rank
/// that point under arbitrary (positive) weighting vectors without the
/// R-tree.
#[derive(Clone, Debug)]
pub struct DominanceFrontier {
    dim: usize,
    q: Vec<f64>,
    /// Flat `|D| × dim` coordinates of points dominating `q` (they beat
    /// it under every strictly positive weight).
    dominating: Vec<f64>,
    /// Flat `|I| × dim` coordinates of the incomparable points.
    incomparable: Vec<f64>,
    /// Column-major mirror of `incomparable` feeding the fused count
    /// kernel — `rank_under` runs in inner loops of MWK/MQWK (one call
    /// per sampled weight), so the scan layout matters.
    incomparable_cols: FlatPoints,
}

impl DominanceFrontier {
    /// Runs `FindIncom` against the index and captures the result, in
    /// **canonical (id-ascending) order** — the traversal's own order
    /// depends on the tree's build parameters, and a frontier that varies
    /// with fanout would make the MWK sampler's candidate sequence (and
    /// hence sampled refinements) structure-dependent.
    pub fn from_tree(tree: &RTree, q: &[f64]) -> Self {
        let dim = tree.dim();
        let split = tree.split_by_dominance(q);
        let sorted = |ids: &[u32], coords: &[f64]| -> Vec<f64> {
            let mut rows: Vec<(u32, &[f64])> = ids
                .iter()
                .zip(coords.chunks_exact(dim))
                .map(|(&id, row)| (id, row))
                .collect();
            rows.sort_by_key(|(id, _)| *id);
            rows.into_iter().flat_map(|(_, row)| row.to_vec()).collect()
        };
        Self::from_parts(
            dim,
            q.to_vec(),
            sorted(&split.dominating_ids, &split.dominating_coords),
            sorted(&split.incomparable_ids, &split.incomparable_coords),
        )
    }

    /// Builds from a pre-computed dominance split.
    pub fn from_split(dim: usize, q: &[f64], split: &DominanceSplit) -> Self {
        Self::from_parts(
            dim,
            q.to_vec(),
            split.dominating_coords.clone(),
            split.incomparable_coords.clone(),
        )
    }

    /// Runs `FindIncom` over a delta overlay: the base index's pruned
    /// traversal classifies the base rows, tombstoned rows are dropped,
    /// and the appended rows are classified by direct dominance tests
    /// (`O(Δ)`).
    ///
    /// Both sets are assembled in **canonical (id-ascending) order**, so
    /// the frontier — and everything seeded from it, like the MWK weight
    /// sampler's candidate sequence — is identical for any two structures
    /// holding the same live rows. In particular it matches the frontier
    /// of a dataset rebuilt from [`DeltaView::materialize_row_major`].
    pub fn from_view(tree: &RTree, view: &DeltaView, q: &[f64]) -> Self {
        let dim = tree.dim();
        let split = tree.split_by_dominance(q);
        // (id, which-set) pairs, merged id-ascending across base + delta.
        let mut dominating: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut incomparable: Vec<(u32, Vec<f64>)> = Vec::new();
        for (i, &id) in split.dominating_ids.iter().enumerate() {
            if !view.is_deleted(id) {
                dominating.push((id, split.dominating_coords[i * dim..(i + 1) * dim].to_vec()));
            }
        }
        for (i, &id) in split.incomparable_ids.iter().enumerate() {
            if !view.is_deleted(id) {
                incomparable.push((
                    id,
                    split.incomparable_coords[i * dim..(i + 1) * dim].to_vec(),
                ));
            }
        }
        for (i, &id) in view.delta_ids().iter().enumerate() {
            let p = view.delta_row(i);
            if dominates(p, q) {
                dominating.push((id, p.to_vec()));
            } else if !dominates(q, p) {
                incomparable.push((id, p.to_vec()));
            }
        }
        dominating.sort_by_key(|(id, _)| *id);
        incomparable.sort_by_key(|(id, _)| *id);
        let flatten = |rows: Vec<(u32, Vec<f64>)>| -> Vec<f64> {
            rows.into_iter().flat_map(|(_, c)| c).collect()
        };
        Self::from_parts(dim, q.to_vec(), flatten(dominating), flatten(incomparable))
    }

    fn from_parts(dim: usize, q: Vec<f64>, dominating: Vec<f64>, incomparable: Vec<f64>) -> Self {
        let incomparable_cols = FlatPoints::from_row_major(dim, &incomparable);
        Self {
            dim,
            q,
            dominating,
            incomparable,
            incomparable_cols,
        }
    }

    /// Re-classifies this frontier for a new query point `q′ ⪯ q`
    /// (component-wise) — the reuse path of MQWK. Correct because every
    /// point dominated by `q` is also dominated by `q′`, so only the
    /// frontier members need a fresh dominance test.
    ///
    /// # Panics
    /// Panics (debug builds) if `q′` does not dominate-or-equal `q`.
    pub fn reclassify(&self, q_prime: &[f64]) -> DominanceFrontier {
        debug_assert!(
            q_prime.iter().zip(&self.q).all(|(a, b)| a <= b),
            "reuse requires q′ ⪯ q"
        );
        let dim = self.dim;
        let mut dominating = Vec::new();
        let mut incomparable = Vec::new();
        {
            let mut scan = |p: &[f64]| {
                if dominates(p, q_prime) {
                    dominating.extend_from_slice(p);
                } else if !dominates(q_prime, p) {
                    incomparable.extend_from_slice(p);
                }
            };
            for i in 0..self.num_incomparable() {
                scan(&self.incomparable[i * dim..(i + 1) * dim]);
            }
            for i in 0..self.num_dominating() {
                scan(&self.dominating[i * dim..(i + 1) * dim]);
            }
        }
        DominanceFrontier::from_parts(dim, q_prime.to_vec(), dominating, incomparable)
    }

    /// `|D|`.
    pub fn num_dominating(&self) -> usize {
        self.dominating.len() / self.dim
    }

    /// `|I|`.
    pub fn num_incomparable(&self) -> usize {
        self.incomparable.len() / self.dim
    }

    /// The query point this frontier is relative to.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// Coordinates of the `i`-th incomparable point.
    pub fn incomparable_point(&self, i: usize) -> &[f64] {
        &self.incomparable[i * self.dim..(i + 1) * self.dim]
    }

    /// The possible rank range of `q`: `[|D| + 1, |D| + |I| + 1]` (§4.3).
    pub fn rank_range(&self) -> (usize, usize) {
        (
            self.num_dominating() + 1,
            self.num_dominating() + self.num_incomparable() + 1,
        )
    }

    /// Exact rank of `q` under a strictly positive weighting vector,
    /// computed from `D` and `I` only (Algorithm 2, lines 4–9), via the
    /// fused column-major count kernel.
    pub fn rank_under(&self, w: &[f64]) -> usize {
        let sq = score(w, &self.q);
        self.num_dominating() + self.incomparable_cols.count_better_than(w, sq) + 1
    }

    /// Fused score kernel over the incomparable set: writes `f(w, I_i)`
    /// for every incomparable point into `out` (capacity reused). The
    /// weight sampler uses this to find each anchor's culprits in one
    /// sequential sweep instead of a strided per-point loop.
    pub fn incomparable_scores_into(&self, w: &[f64], out: &mut Vec<f64>) {
        self.incomparable_cols.scores_into(w, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_query::rank::rank_of_point;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    #[test]
    fn figure_2a_frontier() {
        let f = DominanceFrontier::from_tree(&fig_tree(), &[4.0, 4.0]);
        assert_eq!(f.num_dominating(), 1); // p1
        assert_eq!(f.num_incomparable(), 4); // p2, p3, p4, p7
        assert_eq!(f.rank_range(), (2, 6));
    }

    #[test]
    fn frontier_rank_matches_tree_rank() {
        let tree = fig_tree();
        let q = [4.0, 4.0];
        let f = DominanceFrontier::from_tree(&tree, &q);
        for w in [[0.1, 0.9], [0.3, 0.7], [0.5, 0.5], [0.9, 0.1], [0.25, 0.75]] {
            assert_eq!(
                f.rank_under(&w),
                rank_of_point(&tree, &w, &q),
                "weight {w:?}"
            );
        }
    }

    #[test]
    fn reclassify_matches_fresh_traversal() {
        let tree = fig_tree();
        let base = DominanceFrontier::from_tree(&tree, &[4.0, 4.0]);
        for q_prime in [[3.5, 3.8], [3.0, 3.0], [4.0, 2.0], [0.5, 0.5], [4.0, 4.0]] {
            let reused = base.reclassify(&q_prime);
            let fresh = DominanceFrontier::from_tree(&tree, &q_prime);
            assert_eq!(
                reused.num_dominating(),
                fresh.num_dominating(),
                "D mismatch at {q_prime:?}"
            );
            assert_eq!(
                reused.num_incomparable(),
                fresh.num_incomparable(),
                "I mismatch at {q_prime:?}"
            );
            for w in [[0.2, 0.8], [0.6, 0.4]] {
                assert_eq!(reused.rank_under(&w), fresh.rank_under(&w));
            }
        }
    }

    #[test]
    fn rank_range_brackets_every_weight() {
        let tree = fig_tree();
        let f = DominanceFrontier::from_tree(&tree, &[4.0, 4.0]);
        let (lo, hi) = f.rank_range();
        for i in 1..20 {
            let x = i as f64 / 20.0;
            let r = f.rank_under(&[x, 1.0 - x]);
            assert!((lo..=hi).contains(&r), "rank {r} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn view_frontier_matches_rebuilt_canonical_frontier() {
        use std::sync::Arc;
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let tree = fig_tree();
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        let (live, _) = view.materialize_row_major();
        let rebuilt = RTree::bulk_load(2, &live);
        let plain = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &live)));
        let q = [4.0, 4.0];
        let got = DominanceFrontier::from_view(&tree, &view, &q);
        let oracle = DominanceFrontier::from_view(&rebuilt, &plain, &q);
        // Identical coordinate sequences, not merely identical counts:
        // the MWK sampler consumes the frontier in order.
        assert_eq!(got.dominating, oracle.dominating);
        assert_eq!(got.incomparable, oracle.incomparable);
        for w in [[0.2, 0.8], [0.5, 0.5], [0.7, 0.3]] {
            assert_eq!(got.rank_under(&w), oracle.rank_under(&w));
        }
        // Reclassification (the MQWK reuse path) stays aligned too.
        let ra = got.reclassify(&[3.0, 3.5]);
        let rb = oracle.reclassify(&[3.0, 3.5]);
        assert_eq!(ra.dominating, rb.dominating);
        assert_eq!(ra.incomparable, rb.incomparable);
    }

    #[test]
    fn moving_query_to_origin_dominates_everything() {
        let tree = fig_tree();
        let base = DominanceFrontier::from_tree(&tree, &[4.0, 4.0]);
        let f = base.reclassify(&[0.0, 0.0]);
        assert_eq!(f.num_dominating(), 0);
        assert_eq!(f.num_incomparable(), 0);
        assert_eq!(f.rank_under(&[0.5, 0.5]), 1);
    }
}
