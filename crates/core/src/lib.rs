#![warn(missing_docs)]

//! # WQRTQ core — answering why-not questions on reverse top-k queries
//!
//! This crate implements the contribution of *Gao, Liu, Chen, Zheng, Zhou:
//! "Answering Why-not Questions on Reverse Top-k Queries", PVLDB 8(7),
//! 2015*: given a reverse top-k query (monochromatic or bichromatic) whose
//! result does not contain a set `Wm` of expected weighting vectors,
//!
//! 1. **explain** the omission — [`explain`](fn@explain) returns, per why-not vector,
//!    the data points that outrank the query product (the paper's "first
//!    aspect"), and
//! 2. **refine** the query with minimum penalty so the refined result
//!    contains `Wm` (the "second aspect"), via three strategies:
//!
//! | Module   | Modifies        | Technique |
//! |----------|-----------------|-----------|
//! | [`mqp`](mod@mqp)  | query point `q` | safe region (Lemmas 1–3) + quadratic programming |
//! | [`mwk`](mod@mwk)  | `Wm` and `k`    | weight-space hyperplane sampling + candidate scan (Lemmas 4–6) |
//! | [`mqwk`](mod@mqwk) | `q`, `Wm`, `k`  | query-point sampling + MQP + MWK + R-tree reuse |
//!
//! The [`framework`] module ties the three into the unified `WQRTQ`
//! facade of the paper's Figure 4, and the [`advisor`] module answers
//! the whole why-not question in one call — explanation plus every
//! applicable strategy, verified and ranked cheapest-first into a
//! [`RefinementPlan`]. Penalty semantics follow Equations (1), (3), (4)
//! and (5); see `DESIGN.md` for the calibration of the normalising
//! constants against the paper's worked examples.

pub mod advisor;
pub mod baseline;
pub mod error;
pub mod exact2d;
pub mod explain;
pub mod framework;
pub mod incomparable;
pub mod mqp;
pub mod mqwk;
pub mod mwk;
pub mod penalty;
pub mod safe_region;
pub mod sampling;

pub use advisor::{
    AdvisorEvent, PenaltyBreakdown, RankedStep, RefinementPlan, StepStats, StrategyKind,
    WhyNotOptions,
};
pub use error::WhyNotError;
pub use exact2d::{mwk_exact_2d, Exact2dResult};
pub use explain::{
    explain, explain_view, explain_view_with_stats, explain_with_stats, Explanation,
};
pub use framework::{RefinedQuery, Wqrtq, WqrtqAnswer};
pub use incomparable::DominanceFrontier;
pub use mqp::{mqp, mqp_masked, mqp_view, mqp_view_masked, MqpResult};
pub use mqwk::{mqwk, mqwk_view, MqwkResult};
pub use mwk::{mwk, mwk_view, MwkResult};
pub use penalty::Tolerances;
pub use safe_region::SafeRegion;
