//! MQP — Modifying the Query Point (Algorithm 1 of the paper).
//!
//! For every why-not weighting vector `wᵢ` the branch-and-bound top-k
//! search finds its top-k-th point `pᵢ`; by Lemmas 2–3, any `q′` with
//! `f(wᵢ, q′) ≤ f(wᵢ, pᵢ)` for all `i` (and `0 ≤ q′ ≤ q`) makes every
//! why-not vector appear in the refined reverse top-k result. The optimal
//! `q′` (minimum `‖q − q′‖`, Eq. 1) is found with interior-point
//! quadratic programming rather than by materialising the safe region,
//! which would not scale with dimensionality (§4.2).

use crate::error::WhyNotError;
use crate::penalty::query_point_penalty;
use crate::safe_region::SafeRegion;
use wqrtq_geom::{DeltaView, Weight};
use wqrtq_qp::{solve, QpProblem};
use wqrtq_rtree::{DominanceIndex, RTree};

/// Result of the MQP refinement.
#[derive(Clone, Debug)]
pub struct MqpResult {
    /// The refined query point `q′` (inside the safe region).
    pub q_prime: Vec<f64>,
    /// Its penalty `‖q − q′‖ / ‖q‖` (Eq. 1).
    pub penalty: f64,
    /// Interior-point iterations spent in the QP solve.
    pub qp_iterations: u32,
    /// The score thresholds `f(wᵢ, pᵢ)` used as constraints.
    pub thresholds: Vec<f64>,
}

/// Runs MQP: returns the minimum-penalty refined query point.
///
/// Assumes non-negative data coordinates (true for all paper datasets),
/// under which `q′ = 0` is always feasible and the QP can never be
/// infeasible.
pub fn mqp(
    tree: &RTree,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
) -> Result<MqpResult, WhyNotError> {
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    // Phase 1: top-k-th point per why-not vector (Algorithm 1, lines 1–12)
    // — shared with the safe-region constructor.
    let region = SafeRegion::build(tree, q, k, why_not)?;
    optimise_over(region, q, why_not)
}

/// [`mqp`] over a delta overlay: the safe region's constraints come from
/// the merged live ranking, so the refined point is the one a rebuilt
/// dataset would produce.
pub fn mqp_view(
    tree: &RTree,
    view: &DeltaView,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
) -> Result<MqpResult, WhyNotError> {
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    let region = SafeRegion::build_view(tree, view, q, k, why_not)?;
    optimise_over(region, q, why_not)
}

/// [`mqp`] consulting a [`DominanceIndex`] built from `tree` during the
/// constraint-finding phase. Bit-identical to [`mqp`]: the safe region's
/// thresholds survive masking exactly, and the QP sees the same problem.
pub fn mqp_masked(
    tree: &RTree,
    dom: &DominanceIndex,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
) -> Result<MqpResult, WhyNotError> {
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    let region = SafeRegion::build_masked(tree, dom, q, k, why_not)?;
    optimise_over(region, q, why_not)
}

/// [`mqp_view`] consulting a [`DominanceIndex`] built from the view's
/// *base* tree; bit-identical to [`mqp_view`].
pub fn mqp_view_masked(
    tree: &RTree,
    view: &DeltaView,
    dom: &DominanceIndex,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
) -> Result<MqpResult, WhyNotError> {
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    let region = SafeRegion::build_view_masked(tree, view, dom, q, k, why_not)?;
    optimise_over(region, q, why_not)
}

/// Phase 2 of Algorithm 1: optimise `‖q − q′‖` over a built safe region.
fn optimise_over(
    region: SafeRegion,
    q: &[f64],
    why_not: &[Weight],
) -> Result<MqpResult, WhyNotError> {
    // Fast path: q already safe (every vector already admits it).
    if region.contains(q) {
        return Ok(MqpResult {
            q_prime: q.to_vec(),
            penalty: 0.0,
            qp_iterations: 0,
            thresholds: region.thresholds().to_vec(),
        });
    }

    // Phase 2: quadratic programming (lines 13–14).
    let mut problem = QpProblem::least_change(q);
    for (w, &rhs) in why_not.iter().zip(region.thresholds()) {
        problem.add_inequality(w.as_slice().to_vec(), rhs);
    }
    problem.set_bounds(vec![0.0; q.len()], q.to_vec());
    let sol = solve(&problem).map_err(|e| WhyNotError::QpFailure(e.to_string()))?;

    // Clamp infinitesimal constraint slack from the interior-point method
    // back onto the box, and snap coordinates that converged to the lower
    // bound exactly onto it: interior-point iterates stop ~1e-12 short of
    // the boundary, but rank ties at the k-th score are decided by exact
    // comparison, so a q′ hovering above a score-0 tie group would stay
    // outranked by it (degenerate workloads where the k-th threshold is
    // exactly zero). Snapping down can only decrease scores, so the ≤
    // constraints stay satisfied.
    let q_prime: Vec<f64> = sol
        .x
        .iter()
        .zip(q)
        .map(|(xi, qi)| {
            let x = xi.clamp(0.0, *qi);
            if x < 1e-9 * qi.max(1.0) {
                0.0
            } else {
                x
            }
        })
        .collect();

    Ok(MqpResult {
        penalty: query_point_penalty(q, &q_prime),
        q_prime,
        qp_iterations: sol.iterations,
        thresholds: region.thresholds().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_query::rank::is_in_topk;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn paper_example_refinement_is_analytic_optimum() {
        let res = mqp(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        // Geometric optimum (both constraints active): (3.375, 3.625).
        assert!((res.q_prime[0] - 3.375).abs() < 1e-5, "{:?}", res.q_prime);
        assert!((res.q_prime[1] - 3.625).abs() < 1e-5, "{:?}", res.q_prime);
        let expected_penalty = (0.625f64.powi(2) + 0.375f64.powi(2)).sqrt() / 32f64.sqrt();
        assert!((res.penalty - expected_penalty).abs() < 1e-5);
        assert!(res.qp_iterations > 0);
    }

    #[test]
    fn refined_point_satisfies_reverse_topk_membership() {
        let tree = fig_tree();
        let res = mqp(&tree, &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        for w in kevin_julia() {
            assert!(
                is_in_topk(&tree, &w, &res.q_prime, 3),
                "refined q′ {:?} must be in top-3 of {w:?}",
                res.q_prime
            );
        }
    }

    #[test]
    fn mqp_beats_paper_hand_examples() {
        // The optimum must cost no more than the paper's illustrative
        // refinements q′=(3,2.5) (0.318) and q″=(2.5,3.5) (0.279).
        let res = mqp(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        assert!(res.penalty < 0.279);
    }

    #[test]
    fn agrees_with_exact_2d_geometry() {
        let tree = fig_tree();
        let wn = kevin_julia();
        let q = [4.0, 4.0];
        let res = mqp(&tree, &q, 3, &wn).unwrap();
        let sr = SafeRegion::build(&tree, &q, 3, &wn).unwrap();
        let exact = sr.closest_point_2d().unwrap();
        assert!((res.q_prime[0] - exact[0]).abs() < 1e-5);
        assert!((res.q_prime[1] - exact[1]).abs() < 1e-5);
    }

    #[test]
    fn already_satisfied_query_needs_no_change() {
        // Tony and Anna already contain q: MQP is a no-op with penalty 0.
        let tree = fig_tree();
        let members = vec![Weight::new(vec![0.5, 0.5]), Weight::new(vec![0.3, 0.7])];
        let res = mqp(&tree, &[4.0, 4.0], 3, &members).unwrap();
        assert_eq!(res.q_prime, vec![4.0, 4.0]);
        assert_eq!(res.penalty, 0.0);
        assert_eq!(res.qp_iterations, 0);
    }

    #[test]
    fn single_why_not_vector() {
        let tree = fig_tree();
        let kevin = vec![Weight::new(vec![0.1, 0.9])];
        let res = mqp(&tree, &[4.0, 4.0], 3, &kevin).unwrap();
        assert!(is_in_topk(&tree, &kevin[0], &res.q_prime, 3));
        // Only Kevin's constraint binds: q′ should sit on H(w1, p4).
        let s = 0.1 * res.q_prime[0] + 0.9 * res.q_prime[1];
        assert!(s <= 3.6 + 1e-6, "score {s}");
    }

    #[test]
    fn errors_propagate() {
        let tree = fig_tree();
        assert!(matches!(
            mqp(&tree, &[4.0, 4.0], 3, &[]),
            Err(WhyNotError::EmptyWhyNot)
        ));
        assert!(matches!(
            mqp(&tree, &[4.0], 3, &kevin_julia()),
            Err(WhyNotError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn three_dimensional_case() {
        // 3-D grid; q deliberately deep in the ranking for w.
        let mut pts = Vec::new();
        for x in 0..6 {
            for y in 0..6 {
                for z in 0..6 {
                    pts.extend([x as f64, y as f64, z as f64]);
                }
            }
        }
        let tree = RTree::bulk_load(3, &pts);
        let q = [5.0, 5.0, 5.0];
        let wn = vec![
            Weight::new(vec![0.2, 0.3, 0.5]),
            Weight::new(vec![0.6, 0.2, 0.2]),
        ];
        let res = mqp(&tree, &q, 5, &wn).unwrap();
        for w in &wn {
            assert!(is_in_topk(&tree, w, &res.q_prime, 5));
        }
        assert!(res.penalty > 0.0 && res.penalty <= 1.0);
    }
}
