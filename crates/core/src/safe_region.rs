//! Safe regions (Definition 7, Lemmas 1–3 of the paper).
//!
//! The safe region `SR(q)` of a query point is the intersection of the
//! half-spaces `HS(wᵢ, pᵢ)` formed by each why-not weighting vector `wᵢ`
//! and its top-k-th point `pᵢ`, intersected with the box `[0, q]` (the
//! paper restricts the search space to `[0, q]` because increasing any
//! coordinate can never help). Moving `q` anywhere inside `SR(q)` puts it
//! into every why-not vector's top-k.
//!
//! MQP never materialises `SR(q)` — it optimises over it with quadratic
//! programming — but the region itself is useful for membership tests,
//! visualisation, and (in 2-D) as an exact geometric oracle to validate
//! the QP against (Figure 5(b)).

use crate::error::WhyNotError;
use wqrtq_geom::{DeltaView, HalfSpace, Polygon2d, Weight};
use wqrtq_query::topk::{
    kth_point, kth_point_masked, kth_point_view, kth_point_view_masked, KthPoint,
};
use wqrtq_rtree::{DominanceIndex, RTree};

/// The safe region of a query point for a why-not set.
#[derive(Clone, Debug)]
pub struct SafeRegion {
    constraints: Vec<HalfSpace>,
    q: Vec<f64>,
    /// Score thresholds `f(wᵢ, pᵢ)` aligned with `constraints`.
    thresholds: Vec<f64>,
}

impl SafeRegion {
    /// Builds the safe region from the top-k-th points of every why-not
    /// vector (Lemma 3).
    pub fn build(
        tree: &RTree,
        q: &[f64],
        k: usize,
        why_not: &[Weight],
    ) -> Result<Self, WhyNotError> {
        Self::build_with(tree.dim(), tree.len(), q, k, why_not, |w| {
            kth_point(tree, w, k)
        })
    }

    /// [`SafeRegion::build`] over a delta overlay: each why-not vector's
    /// top-k-th point comes from the merged live ranking, so the
    /// constraint planes are those of a dataset rebuilt from the live
    /// rows.
    pub fn build_view(
        tree: &RTree,
        view: &DeltaView,
        q: &[f64],
        k: usize,
        why_not: &[Weight],
    ) -> Result<Self, WhyNotError> {
        Self::build_with(tree.dim(), view.live_len(), q, k, why_not, |w| {
            kth_point_view(tree, view, w, k)
        })
    }

    /// [`SafeRegion::build`] consulting a [`DominanceIndex`] built from
    /// `tree`: each why-not vector's top-k-th point comes from the masked
    /// best-first traversal. The constraint planes and thresholds are
    /// bit-identical to the unmasked build — every consumer depends only
    /// on the k-th *score* (`HalfSpace::below_score_plane`'s offset is
    /// `f(w, p)`), which masking preserves exactly.
    pub fn build_masked(
        tree: &RTree,
        dom: &DominanceIndex,
        q: &[f64],
        k: usize,
        why_not: &[Weight],
    ) -> Result<Self, WhyNotError> {
        Self::build_with(tree.dim(), tree.len(), q, k, why_not, |w| {
            kth_point_masked(tree, dom, w, k)
        })
    }

    /// [`SafeRegion::build_view`] consulting a [`DominanceIndex`] built
    /// from the view's *base* tree; same bit-identical guarantee as
    /// [`SafeRegion::build_masked`], with the exclusion threshold
    /// inflated by the view's tombstone count.
    pub fn build_view_masked(
        tree: &RTree,
        view: &DeltaView,
        dom: &DominanceIndex,
        q: &[f64],
        k: usize,
        why_not: &[Weight],
    ) -> Result<Self, WhyNotError> {
        Self::build_with(tree.dim(), view.live_len(), q, k, why_not, |w| {
            kth_point_view_masked(tree, view, dom, w, k)
        })
    }

    fn build_with(
        dim: usize,
        len: usize,
        q: &[f64],
        k: usize,
        why_not: &[Weight],
        mut kth: impl FnMut(&[f64]) -> Option<KthPoint>,
    ) -> Result<Self, WhyNotError> {
        if why_not.is_empty() {
            return Err(WhyNotError::EmptyWhyNot);
        }
        for w in why_not {
            if w.dim() != dim {
                return Err(WhyNotError::DimensionMismatch {
                    expected: dim,
                    got: w.dim(),
                });
            }
        }
        let mut constraints = Vec::with_capacity(why_not.len());
        let mut thresholds = Vec::with_capacity(why_not.len());
        for w in why_not {
            let p = kth(w.as_slice()).ok_or(WhyNotError::DatasetSmallerThanK { len, k })?;
            thresholds.push(p.score);
            constraints.push(HalfSpace::below_score_plane(w, &p.coords));
        }
        Ok(Self {
            constraints,
            q: q.to_vec(),
            thresholds,
        })
    }

    /// The half-space constraints (one per why-not vector).
    pub fn constraints(&self) -> &[HalfSpace] {
        &self.constraints
    }

    /// The score thresholds `f(wᵢ, pᵢ)` (the QP right-hand sides).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Membership test (Definition 7): `x` must satisfy every half-space
    /// and lie in `[0, q]`.
    pub fn contains(&self, x: &[f64]) -> bool {
        if x.len() != self.q.len() {
            return false;
        }
        let in_box = x
            .iter()
            .zip(&self.q)
            .all(|(xi, qi)| *xi >= -1e-9 && *xi <= qi + 1e-9);
        in_box
            && self
                .constraints
                .iter()
                .all(|hs| hs.contains_with_tol(x, 1e-9))
    }

    /// The exact safe region as a convex polygon — 2-D only.
    ///
    /// # Panics
    /// Panics if the data is not two-dimensional.
    pub fn exact_polygon_2d(&self) -> Polygon2d {
        assert_eq!(self.q.len(), 2, "exact polygon only available in 2-D");
        let rect = Polygon2d::rect([0.0, 0.0], [self.q[0], self.q[1]]);
        rect.clip_all(self.constraints.iter())
    }

    /// The geometrically optimal refined query point in 2-D (closest
    /// point of the polygon to `q`), or `None` when the region is empty.
    pub fn closest_point_2d(&self) -> Option<[f64; 2]> {
        let poly = self.exact_polygon_2d();
        poly.closest_point([self.q[0], self.q[1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn figure_5b_region_structure() {
        // Kevin's top 3rd point is p4 (score 3.6); Julia's is p7 (3.4).
        let sr = SafeRegion::build(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        assert_eq!(sr.constraints().len(), 2);
        assert!((sr.thresholds()[0] - 3.6).abs() < 1e-12);
        assert!((sr.thresholds()[1] - 3.4).abs() < 1e-12);
        // The paper's refined q″ = (2.5, 3.5) is safe; q itself is not.
        assert!(sr.contains(&[2.5, 3.5]));
        assert!(!sr.contains(&[4.0, 4.0]));
        // Points outside [0, q] are never safe even below the planes.
        assert!(!sr.contains(&[-0.5, 0.5]));
        assert!(!sr.contains(&[4.5, 0.0]));
    }

    #[test]
    fn origin_is_always_safe_for_nonnegative_data() {
        let sr = SafeRegion::build(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        assert!(sr.contains(&[0.0, 0.0]));
    }

    #[test]
    fn exact_polygon_agrees_with_contains() {
        let sr = SafeRegion::build(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        let poly = sr.exact_polygon_2d();
        assert!(!poly.is_empty());
        for v in poly.vertices() {
            assert!(sr.contains(&[v[0], v[1]]), "vertex {v:?} not safe");
        }
    }

    #[test]
    fn closest_point_is_the_analytic_optimum() {
        // Both constraints active: q′ = (3.375, 3.625) (see wqrtq-qp tests).
        let sr = SafeRegion::build(&fig_tree(), &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        let c = sr.closest_point_2d().unwrap();
        assert!((c[0] - 3.375).abs() < 1e-9, "{c:?}");
        assert!((c[1] - 3.625).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn smaller_k_shrinks_the_region() {
        // Lemma 3 discussion: SR′(q) built from top-(k−1)-th points is a
        // subset of SR(q).
        let tree = fig_tree();
        let sr3 = SafeRegion::build(&tree, &[4.0, 4.0], 3, &kevin_julia()).unwrap();
        let sr2 = SafeRegion::build(&tree, &[4.0, 4.0], 2, &kevin_julia()).unwrap();
        let a3 = sr3.exact_polygon_2d().area();
        let a2 = sr2.exact_polygon_2d().area();
        assert!(a2 < a3, "area(k=2) = {a2} should be < area(k=3) = {a3}");
    }

    #[test]
    fn masked_build_is_bit_identical_even_with_ties() {
        use std::sync::Arc;
        use wqrtq_geom::FlatPoints;
        // Duplicate every paper point: exact score ties everywhere, and
        // each duplicate pair dominates nothing of the other — the masked
        // kth may pick the other twin, but the constraint planes depend
        // only on the (identical) score.
        let mut pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let dup = pts.clone();
        pts.extend(&dup);
        let tree = RTree::bulk_load_with_fanout(2, &pts, 4);
        let dom = DominanceIndex::build(&tree);
        let q = [4.0, 4.0];
        for k in 1..=pts.len() / 2 {
            let exact = SafeRegion::build(&tree, &q, k, &kevin_julia()).unwrap();
            let masked = SafeRegion::build_masked(&tree, &dom, &q, k, &kevin_julia()).unwrap();
            assert_eq!(exact.thresholds(), masked.thresholds(), "k {k}");
            assert_eq!(exact.constraints(), masked.constraints(), "k {k}");
        }

        // Same over a mutated view (tombstone two rows, append two).
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![pts.len() as u32 / 2, pts.len() as u32 / 2 + 1]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        for k in 1..=view.live_len() {
            let exact = SafeRegion::build_view(&tree, &view, &q, k, &kevin_julia()).unwrap();
            let masked =
                SafeRegion::build_view_masked(&tree, &view, &dom, &q, k, &kevin_julia()).unwrap();
            assert_eq!(exact.thresholds(), masked.thresholds(), "view k {k}");
            assert_eq!(exact.constraints(), masked.constraints(), "view k {k}");
        }
        assert!(dom.skips() > 0, "the tie-dense build should skip points");
    }

    #[test]
    fn errors_for_bad_inputs() {
        let tree = fig_tree();
        assert!(matches!(
            SafeRegion::build(&tree, &[4.0, 4.0], 3, &[]),
            Err(WhyNotError::EmptyWhyNot)
        ));
        assert!(matches!(
            SafeRegion::build(&tree, &[4.0, 4.0], 3, &[Weight::new(vec![1.0])]),
            Err(WhyNotError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            SafeRegion::build(&tree, &[4.0, 4.0], 99, &kevin_julia()),
            Err(WhyNotError::DatasetSmallerThanK { .. })
        ));
    }
}
