//! Exact MWK in two dimensions — the quality oracle for the sampler.
//!
//! The paper's MWK trades answer quality for running time through
//! sampling (§4.3). In 2-D the trade can be avoided entirely: the weight
//! space is one-dimensional (`w = (x, 1 − x)`), `MRTOPk′(q)` is an exact
//! union of closed intervals for every candidate `k′` (see
//! `wqrtq_query::mrtopk`), and the optimal modified vector for a fixed
//! `k′` is simply the nearest point of those intervals to the original
//! vector. Enumerating the (at most `k′max − k + 1`) candidate `k′`
//! values therefore yields the *globally optimal* `(Wm′, k′)`.
//!
//! This module exists to (a) answer 2-D why-not questions exactly, and
//! (b) measure how close the sampling-based MWK gets to the optimum
//! (`ablation_sampled_vs_exact` bench and the quality tests).

use crate::penalty::{preference_penalty, Tolerances};
use wqrtq_geom::Weight;
use wqrtq_query::mrtopk::{monochromatic_reverse_topk_2d, WeightInterval};
use wqrtq_query::rank::rank_of_point_scan;

/// Result of the exact 2-D preference refinement.
#[derive(Clone, Debug)]
pub struct Exact2dResult {
    /// The optimal refined vectors (aligned with the input order).
    pub refined: Vec<Weight>,
    /// The optimal refined `k′`.
    pub k_prime: usize,
    /// The minimum penalty (Eq. 4).
    pub penalty: f64,
    /// `k′max` (Lemma 4).
    pub k_max: usize,
    /// Candidate `k′` values that were evaluated.
    pub candidates_evaluated: usize,
}

/// Distance from `x` to the nearest point of a closed interval union;
/// returns the nearest point too. `None` when the union is empty.
fn nearest_in_intervals(intervals: &[WeightInterval], x: f64) -> Option<(f64, f64)> {
    intervals
        .iter()
        .map(|iv| {
            let nearest = x.clamp(iv.lo, iv.hi);
            ((nearest - x).abs(), nearest)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0))
}

/// Makes a nearest-interval point *actually feasible* (`rank(q) ≤ k`).
///
/// Interval endpoints are intersection roots computed in floating
/// point; the computed endpoint can sit one ulp on the wrong side of
/// the true boundary, where `q` ranks `k + 1` — an answer that would
/// fail strict verification. When that happens, walk the point toward
/// the interior of its interval in geometrically growing steps until
/// the rank test passes (the penalty cost of the walk is at most
/// ~1e-3 of the interval's width, far below any sampling error).
/// Returns `None` when no nudge inside the interval is feasible —
/// the candidate `k` is then skipped entirely.
fn feasible_nearest(
    points: &[f64],
    q: &[f64],
    k: usize,
    intervals: &[WeightInterval],
    x: f64,
) -> Option<f64> {
    let in_topk = |x: f64| rank_of_point_scan(points, &Weight::from_first_2d(x), q) <= k;
    if in_topk(x) {
        return Some(x);
    }
    let iv = intervals.iter().find(|iv| x >= iv.lo && x <= iv.hi)?;
    let mid = 0.5 * (iv.lo + iv.hi);
    let mut t = x;
    let mut step = 1e-15;
    while step <= 1e-3 {
        let next = t + (mid - t) * step;
        step *= 4.0;
        if next == t {
            // Movement below one ulp at this step size (or a degenerate
            // lo == hi interval, where no interior exists at all): skip
            // the redundant rank scan and try a larger step.
            continue;
        }
        t = next;
        if in_topk(t) {
            return Some(t);
        }
    }
    None
}

/// Exact minimum-penalty modification of `(Wm, k)` over 2-D data.
///
/// `points` is the flat `n × 2` dataset buffer (the full dataset — the
/// oracle intentionally avoids the R-tree so it shares no code with the
/// implementation it validates).
///
/// # Panics
/// Panics if inputs are empty, not two-dimensional, or no why-not vector
/// excludes `q` at all (`k′max ≤ k` — nothing to refine).
pub fn mwk_exact_2d(
    points: &[f64],
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    tol: &Tolerances,
) -> Exact2dResult {
    assert!(!why_not.is_empty(), "why-not set must be non-empty");
    assert_eq!(q.len(), 2, "exact oracle is 2-D only");
    assert!(why_not.iter().all(|w| w.dim() == 2), "weights must be 2-D");

    // Ranks of q under the originals give k′max (Lemma 4).
    let ranks: Vec<usize> = why_not
        .iter()
        .map(|w| rank_of_point_scan(points, w, q))
        .collect();
    let k_max = *ranks.iter().max().expect("non-empty");
    assert!(k_max > k, "nothing to refine: every vector admits q");

    let mut best_refined = why_not.to_vec();
    let mut best_k = k_max;
    let mut best_pen = preference_penalty(tol, why_not, why_not, k, k_max, k_max);
    let mut evaluated = 0;

    // Enumerate candidate k′ ∈ [k, k′max]; for each, the optimal vector
    // per position is the nearest point of MRTOPk′(q).
    for k_cand in k..=k_max {
        let intervals = monochromatic_reverse_topk_2d(points, q, k_cand);
        if intervals.is_empty() {
            continue;
        }
        evaluated += 1;
        let mut refined = Vec::with_capacity(why_not.len());
        let mut feasible = true;
        for (w, &r) in why_not.iter().zip(&ranks) {
            if r <= k_cand {
                refined.push(w.clone()); // already inside at this k′
                continue;
            }
            let (_, x) = nearest_in_intervals(&intervals, w[0]).expect("non-empty interval union");
            match feasible_nearest(points, q, k_cand, &intervals, x) {
                Some(x) => refined.push(Weight::from_first_2d(x)),
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let pen = preference_penalty(tol, why_not, &refined, k, k_cand, k_max);
        if pen < best_pen {
            best_pen = pen;
            best_k = k_cand;
            best_refined = refined;
        }
    }

    Exact2dResult {
        refined: best_refined,
        k_prime: best_k,
        penalty: best_pen,
        k_max,
        candidates_evaluated: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwk::mwk;
    use wqrtq_query::rank::rank_of_point_scan as rank_scan;
    use wqrtq_rtree::RTree;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn paper_example_exact_optimum() {
        // The analytically optimal refinement keeps k = 3 and moves
        // Kevin → (1/6, 5/6), Julia → (3/4, 1/4): penalty
        // 0.5·(0.0667 + 0.15)·√2/√2 = 0.10833.
        let res = mwk_exact_2d(
            &fig_points(),
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            &Tolerances::paper_default(),
        );
        assert_eq!(res.k_max, 4);
        assert!((res.penalty - 0.10833333).abs() < 1e-6, "{}", res.penalty);
        assert_eq!(res.k_prime, 3);
        assert!((res.refined[0][0] - 1.0 / 6.0).abs() < 1e-9);
        assert!((res.refined[1][0] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn exact_answer_is_feasible() {
        let pts = fig_points();
        let res = mwk_exact_2d(
            &pts,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            &Tolerances::paper_default(),
        );
        for w in &res.refined {
            assert!(rank_scan(&pts, w, &[4.0, 4.0]) <= res.k_prime);
        }
    }

    #[test]
    fn sampled_mwk_converges_to_exact_on_paper_example() {
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let tol = Tolerances::paper_default();
        let exact = mwk_exact_2d(&pts, &[4.0, 4.0], 3, &kevin_julia(), &tol);
        let sampled = mwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 800, &tol, 9).unwrap();
        assert!(sampled.penalty >= exact.penalty - 1e-9, "oracle beaten?");
        assert!(
            sampled.penalty <= exact.penalty + 1e-6,
            "sampled {} vs exact {}",
            sampled.penalty,
            exact.penalty
        );
    }

    #[test]
    fn sampled_mwk_near_exact_on_random_data() {
        // On a 2-D uniform dataset the sampler should land within a small
        // factor of the oracle at |S| = 400.
        let mut pts = Vec::new();
        let mut state = 0xABCDu64;
        for _ in 0..3000 {
            for _ in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
                pts.push((state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        let tree = RTree::bulk_load(2, &pts);
        let tol = Tolerances::paper_default();
        // A competitive q, why-not under a top-heavy weight.
        let q = [0.02, 0.2];
        let w = Weight::new(vec![0.05, 0.95]);
        let rank = rank_scan(&pts, &w, &q);
        assert!(rank > 10, "setup: rank {rank}");
        let wm = vec![w];
        let exact = mwk_exact_2d(&pts, &q, 10, &wm, &tol);
        let sampled = mwk(&tree, &q, 10, &wm, 400, &tol, 3).unwrap();
        assert!(sampled.penalty + 1e-9 >= exact.penalty);
        assert!(
            sampled.penalty <= exact.penalty * 1.5 + 0.02,
            "sampled {} too far above exact {}",
            sampled.penalty,
            exact.penalty
        );
    }

    #[test]
    #[should_panic(expected = "nothing to refine")]
    fn rejects_satisfied_vectors() {
        let _ = mwk_exact_2d(
            &fig_points(),
            &[4.0, 4.0],
            3,
            &[Weight::new(vec![0.5, 0.5])],
            &Tolerances::paper_default(),
        );
    }

    #[test]
    fn nearest_interval_point_logic() {
        let ivs = [
            WeightInterval { lo: 0.2, hi: 0.3 },
            WeightInterval { lo: 0.6, hi: 0.8 },
        ];
        assert_eq!(nearest_in_intervals(&ivs, 0.25), Some((0.0, 0.25)));
        assert_eq!(nearest_in_intervals(&ivs, 0.1), Some((0.1, 0.2)));
        let (d, x) = nearest_in_intervals(&ivs, 0.5).unwrap();
        assert!((d - 0.1).abs() < 1e-12 && (x - 0.6).abs() < 1e-12);
        assert_eq!(nearest_in_intervals(&[], 0.5), None);
    }
}
