//! MWK — Modifying `Wm` and `k` (Algorithm 2 of the paper).
//!
//! MWK refines customer preferences instead of the product: it finds a
//! modified why-not set `Wm′` and parameter `k′` with minimum penalty
//! (Eq. 4) such that `q ∈ TOPk′(w′)` for every `w′ ∈ Wm′`.
//!
//! Pipeline, following the paper:
//!
//! 1. `FindIncom` — classify the dataset into dominators `D` and
//!    incomparable points `I` (one pruned R-tree traversal);
//! 2. ranks of `q` under the original vectors give `k′max` (Lemma 4);
//! 3. sample `|S|` weighting vectors from the tie hyperplanes of `I`
//!    (§4.3, the only places optimal replacements can live);
//! 4. sort candidates by the rank of `q` and scan once, maintaining the
//!    candidate set `CW` and keeping the best `(Wm′, k′)` (Lemmas 5–6).
//!
//! One deliberate strengthening over the paper's pseudo-code: the
//! original why-not vectors are added to the candidate pool (with their
//! known ranks). This lets the scan keep an original vector unchanged
//! whenever the running `k′` already covers its rank — a candidate family
//! Algorithm 2 as printed cannot reach — and subsumes its line-11
//! initialisation `(Wm, k′max)` as the pool's tail. The returned penalty
//! is therefore never worse than the paper's.

use crate::error::WhyNotError;
use crate::incomparable::DominanceFrontier;
use crate::penalty::{preference_penalty, Tolerances};
use crate::sampling::WeightSampler;
use wqrtq_geom::{DeltaView, Weight};
use wqrtq_rtree::RTree;

/// Result of the MWK refinement.
#[derive(Clone, Debug)]
pub struct MwkResult {
    /// The refined why-not vectors `Wm′` (aligned with the input order).
    pub refined: Vec<Weight>,
    /// The refined parameter `k′`.
    pub k_prime: usize,
    /// Penalty of the refinement (Eq. 4).
    pub penalty: f64,
    /// `k′max` — the worst actual rank of `q` under the original vectors
    /// (Lemma 4), used as the `Δk` normaliser.
    pub k_max: usize,
    /// Actual rank of `q` under each original why-not vector.
    pub actual_ranks: Vec<usize>,
    /// Candidate weighting vectors examined (samples + originals after
    /// the Lemma-4 cut).
    pub candidates_examined: usize,
}

/// Runs MWK against an indexed dataset.
pub fn mwk(
    tree: &RTree,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    tol: &Tolerances,
    seed: u64,
) -> Result<MwkResult, WhyNotError> {
    if why_not.is_empty() {
        return Err(WhyNotError::EmptyWhyNot);
    }
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    for w in why_not {
        if w.dim() != tree.dim() {
            return Err(WhyNotError::DimensionMismatch {
                expected: tree.dim(),
                got: w.dim(),
            });
        }
    }
    let frontier = DominanceFrontier::from_tree(tree, q);
    Ok(mwk_with_frontier(
        &frontier,
        k,
        why_not,
        sample_size,
        tol,
        seed,
    ))
}

/// [`mwk`] over a delta overlay: the dominance frontier classifies the
/// live rows (canonical order), so samples, ranks and the returned
/// refinement match a dataset rebuilt from scratch.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's input list + view
pub fn mwk_view(
    tree: &RTree,
    view: &DeltaView,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    tol: &Tolerances,
    seed: u64,
) -> Result<MwkResult, WhyNotError> {
    if why_not.is_empty() {
        return Err(WhyNotError::EmptyWhyNot);
    }
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    for w in why_not {
        if w.dim() != tree.dim() {
            return Err(WhyNotError::DimensionMismatch {
                expected: tree.dim(),
                got: w.dim(),
            });
        }
    }
    let frontier = DominanceFrontier::from_view(tree, view, q);
    Ok(mwk_with_frontier(
        &frontier,
        k,
        why_not,
        sample_size,
        tol,
        seed,
    ))
}

/// MWK over a pre-computed dominance frontier — the entry point used by
/// MQWK's reuse technique (the frontier carries the query point).
pub fn mwk_with_frontier(
    frontier: &DominanceFrontier,
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    tol: &Tolerances,
    seed: u64,
) -> MwkResult {
    assert!(!why_not.is_empty(), "why-not set must be non-empty");
    let m = why_not.len();

    // Ranks of q under the originals (Algorithm 2 lines 7–9) and k′max.
    let ranks: Vec<usize> = why_not.iter().map(|w| frontier.rank_under(w)).collect();
    let k_max = ranks.iter().copied().max().expect("non-empty ranks");

    // Nothing to do: every vector already admits q (possible for sampled
    // query points inside MQWK).
    if k_max <= k {
        return MwkResult {
            refined: why_not.to_vec(),
            k_prime: k,
            penalty: 0.0,
            k_max,
            actual_ranks: ranks,
            candidates_examined: 0,
        };
    }

    // Candidate pool: hyperplane samples (line 3) plus the originals.
    let mut sampler = WeightSampler::new(frontier, why_not, seed);
    let mut pool: Vec<(Weight, usize)> = sampler
        .sample(sample_size)
        .into_iter()
        .map(|w| {
            let r = frontier.rank_under(&w);
            (w, r)
        })
        .collect();
    for (w, &r) in why_not.iter().zip(&ranks) {
        pool.push((w.clone(), r));
    }
    // Lemma 4: candidates ranked beyond k′max cannot improve the answer.
    pool.retain(|(_, r)| *r <= k_max);
    // Sort by rank of q (line 6).
    pool.sort_by_key(|(_, r)| *r);
    let candidates_examined = pool.len();

    // Baseline candidate: keep Wm, raise k to k′max (line 11) — penalty α.
    let mut best_refined = why_not.to_vec();
    let mut best_k = k_max;
    let mut best_pen = preference_penalty(tol, why_not, why_not, k, k_max, k_max);

    // Scan (lines 12–18, Lemma 6): CW starts as the lowest-ranked
    // candidate replicated across positions.
    debug_assert!(!pool.is_empty(), "pool contains at least the originals");
    let (first, first_rank) = (&pool[0].0, pool[0].1);
    let mut cw: Vec<Weight> = vec![first.clone(); m];
    let mut cw_dist: Vec<f64> = why_not.iter().map(|w| w.distance(first)).collect();
    {
        let k_cand = first_rank.max(k);
        let pen = preference_penalty(tol, why_not, &cw, k, k_cand, k_max);
        if pen < best_pen {
            best_pen = pen;
            best_k = k_cand;
            best_refined = cw.clone();
        }
    }
    for (ws, rs) in pool.iter().skip(1) {
        let mut updated = false;
        for i in 0..m {
            let d = why_not[i].distance(ws);
            if d < cw_dist[i] {
                cw[i] = ws.clone();
                cw_dist[i] = d;
                updated = true;
            }
        }
        if updated {
            // Pool is rank-sorted, so the max rank inside CW is `rs`.
            let k_cand = (*rs).max(k);
            let pen = preference_penalty(tol, why_not, &cw, k, k_cand, k_max);
            if pen < best_pen {
                best_pen = pen;
                best_k = k_cand;
                best_refined = cw.clone();
            }
        }
    }

    MwkResult {
        refined: best_refined,
        k_prime: best_k,
        penalty: best_pen,
        k_max,
        actual_ranks: ranks,
        candidates_examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_query::rank::rank_of_point;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    fn verify(tree: &RTree, q: &[f64], res: &MwkResult) {
        for w in &res.refined {
            let r = rank_of_point(tree, w, q);
            assert!(
                r <= res.k_prime,
                "refined vector {w:?} ranks {r} > k′ = {}",
                res.k_prime
            );
        }
    }

    #[test]
    fn paper_example_ranks_and_kmax() {
        let tree = fig_tree();
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            200,
            &Tolerances::paper_default(),
            7,
        )
        .unwrap();
        // §4.3: ranks of q under w1 and w4 are both 4 → k′max = 4.
        assert_eq!(res.actual_ranks, vec![4, 4]);
        assert_eq!(res.k_max, 4);
        verify(&tree, &[4.0, 4.0], &res);
    }

    #[test]
    fn beats_the_k_only_candidate_on_paper_example() {
        // The paper's §4.3 example: modifying the vectors beats modifying
        // k alone (penalty 0.5); the best refinement costs ≈ 0.108 with
        // the exact tie weights (1/6, 5/6) and (3/4, 1/4).
        let tree = fig_tree();
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            400,
            &Tolerances::paper_default(),
            11,
        )
        .unwrap();
        assert!(res.penalty < 0.5, "penalty {}", res.penalty);
        assert!(res.penalty < 0.15, "penalty {}", res.penalty);
        verify(&tree, &[4.0, 4.0], &res);
    }

    #[test]
    fn exact_optimum_reachable_in_2d() {
        // In 2-D the tie hyperplanes are single points, so with enough
        // samples MWK finds the analytically optimal refinement:
        // Kevin → (1/6, 5/6) (Δ = 0.0667·√2), Julia → (3/4, 1/4)
        // (Δ = 0.15·√2), k unchanged.
        let tree = fig_tree();
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            800,
            &Tolerances::paper_default(),
            3,
        )
        .unwrap();
        let expected = 0.5 * ((0.1f64 - 1.0 / 6.0).abs() + 0.15) * std::f64::consts::SQRT_2
            / std::f64::consts::SQRT_2;
        assert!(
            (res.penalty - expected).abs() < 1e-6,
            "penalty {} vs expected {expected}",
            res.penalty
        );
        assert_eq!(res.k_prime, 3);
        verify(&tree, &[4.0, 4.0], &res);
    }

    #[test]
    fn zero_samples_still_returns_valid_answer() {
        // With no samples the pool holds only the originals: the answer
        // degenerates to the paper's line-11 candidate (Wm, k′max).
        let tree = fig_tree();
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            0,
            &Tolerances::paper_default(),
            1,
        )
        .unwrap();
        assert_eq!(res.k_prime, 4);
        assert_eq!(res.refined[0].as_slice(), kevin_julia()[0].as_slice());
        assert!((res.penalty - 0.5).abs() < 1e-12);
        verify(&tree, &[4.0, 4.0], &res);
    }

    #[test]
    fn penalty_never_increases_with_sample_size() {
        // Larger |S| supersets the candidate space statistically; penalty
        // trends down (paper Fig. 12). Check monotone-ish behaviour on a
        // fixed ladder of seeds.
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let p100 = mwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 100, &tol, 5)
            .unwrap()
            .penalty;
        let p1600 = mwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 1600, &tol, 5)
            .unwrap()
            .penalty;
        assert!(p1600 <= p100 + 1e-9, "p100 = {p100}, p1600 = {p1600}");
    }

    #[test]
    fn not_why_not_vectors_cost_nothing() {
        // Tony and Anna are already in the result: MWK must return the
        // identity refinement with zero penalty.
        let tree = fig_tree();
        let members = vec![Weight::new(vec![0.5, 0.5]), Weight::new(vec![0.3, 0.7])];
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &members,
            100,
            &Tolerances::paper_default(),
            1,
        )
        .unwrap();
        assert_eq!(res.penalty, 0.0);
        assert_eq!(res.k_prime, 3);
    }

    #[test]
    fn mixed_member_and_why_not_set() {
        // Kevin (why-not) + Tony (member): the optimal answer keeps Tony
        // untouched.
        let tree = fig_tree();
        let mixed = vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.5, 0.5])];
        let res = mwk(
            &tree,
            &[4.0, 4.0],
            3,
            &mixed,
            400,
            &Tolerances::paper_default(),
            9,
        )
        .unwrap();
        verify(&tree, &[4.0, 4.0], &res);
        assert_eq!(
            res.refined[1].as_slice(),
            mixed[1].as_slice(),
            "member vector should stay unchanged"
        );
    }

    #[test]
    fn errors_for_bad_inputs() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        assert!(matches!(
            mwk(&tree, &[4.0, 4.0], 3, &[], 10, &tol, 1),
            Err(WhyNotError::EmptyWhyNot)
        ));
        assert!(matches!(
            mwk(&tree, &[4.0], 3, &kevin_julia(), 10, &tol, 1),
            Err(WhyNotError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let a = mwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 300, &tol, 21).unwrap();
        let b = mwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 300, &tol, 21).unwrap();
        assert_eq!(a.penalty, b.penalty);
        assert_eq!(a.k_prime, b.k_prime);
    }
}
