//! MQWK — Modifying `q`, `Wm` and `k` simultaneously (Algorithm 3).
//!
//! The compromise solution: both the manufacturer (query point) and the
//! customers (preferences) move. MQWK
//!
//! 1. runs MQP to obtain `qmin`, the closest fully-safe query point;
//! 2. samples `|Q|` candidate query points from the box `(qmin, q)` —
//!    the only region that can beat both endpoint solutions (§4.4);
//! 3. for every sample `q′` runs MWK *with the reuse technique*: the
//!    dominance frontier of the original `q` is re-classified for `q′`
//!    instead of re-traversing the R-tree;
//! 4. returns the `(q′, Wm′, k′)` tuple with the smallest combined
//!    penalty (Eq. 5).
//!
//! The two closed endpoints — `(qmin, Wm, k)` (pure MQP) and `(q, Wm′,
//! k′)` (pure MWK) — are always evaluated as candidates, so MQWK's
//! penalty is never worse than either specialised solution, matching the
//! paper's experimental plots where MQWK has the smallest penalty.

use crate::error::WhyNotError;
use crate::incomparable::DominanceFrontier;
use crate::mqp::{mqp, mqp_view, MqpResult};
use crate::mwk::mwk_with_frontier;
use crate::penalty::{query_point_penalty, Tolerances};
use crate::sampling::sample_query_points;
use wqrtq_geom::{DeltaView, Weight};
use wqrtq_rtree::RTree;

/// Which candidate family produced the best tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefinementSource {
    /// The pure-MQP endpoint `(qmin, Wm, k)` won.
    QueryEndpoint,
    /// The pure-MWK endpoint `(q, Wm′, k′)` won.
    PreferenceEndpoint,
    /// A sampled interior query point won.
    Sampled,
}

/// Result of the MQWK refinement.
#[derive(Clone, Debug)]
pub struct MqwkResult {
    /// The refined query point `q′`.
    pub q_prime: Vec<f64>,
    /// The refined why-not vectors `Wm′`.
    pub refined: Vec<Weight>,
    /// The refined parameter `k′`.
    pub k_prime: usize,
    /// Combined penalty (Eq. 5).
    pub penalty: f64,
    /// Candidate query points evaluated (samples + 2 endpoints).
    pub candidates_evaluated: usize,
    /// Which family produced the winner.
    pub source: RefinementSource,
}

/// Runs MQWK. `sample_size` is `|S|` (weights per MWK call) and
/// `query_samples` is `|Q|`; the paper's experiments keep them equal.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's input list
pub fn mqwk(
    tree: &RTree,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    query_samples: usize,
    tol: &Tolerances,
    seed: u64,
) -> Result<MqwkResult, WhyNotError> {
    // Line 2: qmin via MQP (also validates inputs).
    let mqp_res = mqp(tree, q, k, why_not)?;
    // Reuse base: one FindIncom traversal at the original q (§4.4).
    let base = DominanceFrontier::from_tree(tree, q);
    Ok(search_candidates(
        mqp_res,
        &base,
        q,
        k,
        why_not,
        sample_size,
        query_samples,
        tol,
        seed,
    ))
}

/// [`mqwk`] over a delta overlay: MQP constraints and the reuse frontier
/// both come from the live rows (canonical order), so every candidate
/// tuple — and hence the winner — matches a rebuilt dataset.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's input list
pub fn mqwk_view(
    tree: &RTree,
    view: &DeltaView,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    query_samples: usize,
    tol: &Tolerances,
    seed: u64,
) -> Result<MqwkResult, WhyNotError> {
    let mqp_res = mqp_view(tree, view, q, k, why_not)?;
    let base = DominanceFrontier::from_view(tree, view, q);
    Ok(search_candidates(
        mqp_res,
        &base,
        q,
        k,
        why_not,
        sample_size,
        query_samples,
        tol,
        seed,
    ))
}

/// Lines 3–9 of Algorithm 3 over a pre-computed `qmin` and reuse
/// frontier: evaluate both endpoints plus `|Q|` sampled interior query
/// points and keep the minimum-penalty tuple.
#[allow(clippy::too_many_arguments)]
fn search_candidates(
    mqp_res: MqpResult,
    base: &DominanceFrontier,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    query_samples: usize,
    tol: &Tolerances,
    seed: u64,
) -> MqwkResult {
    let qmin = &mqp_res.q_prime;

    // Endpoint candidate 1: move the query all the way to qmin, keep
    // preferences — penalty γ·Δq(qmin).
    let mut best = MqwkResult {
        q_prime: qmin.clone(),
        refined: why_not.to_vec(),
        k_prime: k,
        penalty: tol.gamma * mqp_res.penalty,
        candidates_evaluated: 2 + query_samples,
        source: RefinementSource::QueryEndpoint,
    };

    // Endpoint candidate 2: keep q, run plain MWK — penalty λ·Eq.(4).
    let mwk_res = mwk_with_frontier(base, k, why_not, sample_size, tol, seed);
    let pen = tol.lambda * mwk_res.penalty;
    if pen < best.penalty {
        best.q_prime = q.to_vec();
        best.refined = mwk_res.refined;
        best.k_prime = mwk_res.k_prime;
        best.penalty = pen;
        best.source = RefinementSource::PreferenceEndpoint;
    }

    // Line 3: sample |Q| query points from (qmin, q); lines 5–9: evaluate
    // each through MWK over the re-classified frontier.
    let samples = sample_query_points(qmin, q, query_samples, seed ^ 0x9e37_79b9);
    for (i, q_cand) in samples.iter().enumerate() {
        let frontier = base.reclassify(q_cand);
        let res = mwk_with_frontier(
            &frontier,
            k,
            why_not,
            sample_size,
            tol,
            seed.wrapping_add(i as u64 + 1),
        );
        let pen = tol.gamma * query_point_penalty(q, q_cand) + tol.lambda * res.penalty;
        if pen < best.penalty {
            best.q_prime = q_cand.clone();
            best.refined = res.refined;
            best.k_prime = res.k_prime;
            best.penalty = pen;
            best.source = RefinementSource::Sampled;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwk::mwk;
    use wqrtq_query::rank::rank_of_point;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    fn verify(tree: &RTree, res: &MqwkResult) {
        for w in &res.refined {
            let r = rank_of_point(tree, w, &res.q_prime);
            assert!(
                r <= res.k_prime,
                "refined vector {w:?} ranks {r} > k′ = {} at q′ {:?}",
                res.k_prime,
                res.q_prime
            );
        }
    }

    #[test]
    fn refined_tuple_is_valid_on_paper_example() {
        let tree = fig_tree();
        let res = mqwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            200,
            200,
            &Tolerances::paper_default(),
            17,
        )
        .unwrap();
        verify(&tree, &res);
        assert!(res.penalty > 0.0 && res.penalty < 1.0);
        assert_eq!(res.candidates_evaluated, 202);
    }

    #[test]
    fn never_worse_than_either_specialised_solution() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let q = [4.0, 4.0];
        let wn = kevin_julia();
        let res = mqwk(&tree, &q, 3, &wn, 200, 200, &tol, 5).unwrap();
        let mqp_pen = tol.gamma * mqp(&tree, &q, 3, &wn).unwrap().penalty;
        let mwk_pen = tol.lambda * mwk(&tree, &q, 3, &wn, 200, &tol, 5).unwrap().penalty;
        assert!(res.penalty <= mqp_pen + 1e-12);
        assert!(res.penalty <= mwk_pen + 1e-12);
    }

    #[test]
    fn beats_paper_hand_example_penalty() {
        // §4.4's illustrative tuple (q′=(3.8,3.8), …) costs ≈ 0.06;
        // the optimised answer must not be worse.
        let tree = fig_tree();
        let res = mqwk(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            400,
            400,
            &Tolerances::paper_default(),
            23,
        )
        .unwrap();
        assert!(res.penalty <= 0.065, "penalty {}", res.penalty);
        verify(&tree, &res);
    }

    #[test]
    fn zero_query_samples_degenerates_to_best_endpoint() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let res = mqwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 100, 0, &tol, 3).unwrap();
        assert!(matches!(
            res.source,
            RefinementSource::QueryEndpoint | RefinementSource::PreferenceEndpoint
        ));
        verify(&tree, &res);
    }

    #[test]
    fn tolerances_steer_the_compromise() {
        // γ → 1: moving q is expensive for the manufacturer? No — γ is
        // the weight OF the Δq term, so γ = 0.9 penalises query movement
        // and pushes the answer toward preference changes, and vice
        // versa.
        let tree = fig_tree();
        let q = [4.0, 4.0];
        let wn = kevin_julia();
        let heavy_q = Tolerances::new(0.5, 0.5, 0.95, 0.05);
        let light_q = Tolerances::new(0.5, 0.5, 0.05, 0.95);
        let a = mqwk(&tree, &q, 3, &wn, 200, 200, &heavy_q, 1).unwrap();
        let b = mqwk(&tree, &q, 3, &wn, 200, 200, &light_q, 1).unwrap();
        let moved_a = wqrtq_geom::l2_dist(&q, &a.q_prime);
        let moved_b = wqrtq_geom::l2_dist(&q, &b.q_prime);
        assert!(
            moved_a <= moved_b + 1e-9,
            "γ-heavy should move q no more than γ-light ({moved_a} vs {moved_b})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let a = mqwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 150, 150, &tol, 99).unwrap();
        let b = mqwk(&tree, &[4.0, 4.0], 3, &kevin_julia(), 150, 150, &tol, 99).unwrap();
        assert_eq!(a.penalty, b.penalty);
        assert_eq!(a.q_prime, b.q_prime);
    }

    #[test]
    fn errors_propagate_from_mqp() {
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        assert!(matches!(
            mqwk(&tree, &[4.0, 4.0], 3, &[], 10, 10, &tol, 1),
            Err(WhyNotError::EmptyWhyNot)
        ));
    }
}
