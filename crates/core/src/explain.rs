//! The first aspect of a why-not answer: *why* is the weighting vector
//! missing from the reverse top-k result?
//!
//! Per the paper (§3): a why-not vector `w` is excluded because more than
//! `k − 1` points score strictly better than `q` under `w`; those points
//! are the answer. We report them with a progressive (best-first) top-k
//! scan that stops as soon as `q`'s score is reached, exactly as the
//! paper suggests using progressive top-k algorithms.

use wqrtq_geom::{score, DeltaView};
use wqrtq_query::topk::ViewBestFirst;
use wqrtq_rtree::RTree;

/// A data point responsible for excluding a why-not weighting vector.
#[derive(Clone, Debug, PartialEq)]
pub struct Culprit {
    /// Point id in the indexed dataset.
    pub id: u32,
    /// Its score under the why-not vector (strictly below `q`'s).
    pub score: f64,
    /// Its coordinates.
    pub coords: Vec<f64>,
}

/// The explanation for one why-not weighting vector.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Points scoring strictly better than `q`, in ascending score order,
    /// truncated to the requested limit.
    pub culprits: Vec<Culprit>,
    /// The actual rank of `q` under the vector (`culprits.len() + 1` when
    /// not truncated).
    pub rank: usize,
    /// Whether the culprit list was truncated by the limit.
    pub truncated: bool,
}

/// Explains why `q` is not in `TOPk(w)` by listing the points that
/// outrank it. `limit` bounds the number of returned culprits (the rank
/// is still exact); pass `usize::MAX` for all of them.
pub fn explain(tree: &RTree, w: &[f64], q: &[f64], limit: usize) -> Explanation {
    explain_with_stats(tree, w, q, limit).0
}

/// [`explain`], additionally reporting the number of index nodes the
/// progressive scan expanded (the `|RT|` cost term) — used by serving
/// layers for per-request metrics.
pub fn explain_with_stats(
    tree: &RTree,
    w: &[f64],
    q: &[f64],
    limit: usize,
) -> (Explanation, usize) {
    let sq = score(w, q);
    let mut culprits = Vec::new();
    let mut rank = 1usize;
    let mut truncated = false;
    let mut bf = tree.best_first(w);
    while let Some(p) = bf.next_entry() {
        if p.score >= sq {
            break;
        }
        rank += 1;
        if culprits.len() < limit {
            culprits.push(Culprit {
                id: p.id,
                score: p.score,
                coords: p.coords.to_vec(),
            });
        } else {
            truncated = true;
        }
    }
    (
        Explanation {
            culprits,
            rank,
            truncated,
        },
        bf.nodes_visited(),
    )
}

/// [`explain`] over a delta overlay: the progressive scan runs on the
/// merged live ranking (base index minus tombstones, plus appended
/// rows), so culprits and the exact rank are those of a dataset rebuilt
/// from the live rows.
pub fn explain_view(
    tree: &RTree,
    view: &DeltaView,
    w: &[f64],
    q: &[f64],
    limit: usize,
) -> Explanation {
    explain_view_with_stats(tree, view, w, q, limit).0
}

/// [`explain_view`] with the index-node count of the base traversal.
pub fn explain_view_with_stats(
    tree: &RTree,
    view: &DeltaView,
    w: &[f64],
    q: &[f64],
    limit: usize,
) -> (Explanation, usize) {
    let sq = score(w, q);
    let mut culprits = Vec::new();
    let mut rank = 1usize;
    let mut truncated = false;
    let mut bf = ViewBestFirst::new(tree, view, w);
    while let Some(p) = bf.next_entry() {
        if p.score >= sq {
            break;
        }
        rank += 1;
        if culprits.len() < limit {
            culprits.push(Culprit {
                id: p.id,
                score: p.score,
                coords: p.coords.to_vec(),
            });
        } else {
            truncated = true;
        }
    }
    (
        Explanation {
            culprits,
            rank,
            truncated,
        },
        bf.nodes_visited(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    #[test]
    fn kevin_is_excluded_by_p1_p2_p4() {
        // §3: "for w1 in Figure 1, there are three points, i.e., p1, p2,
        // and p4, with scores smaller than that of q".
        let t = fig_tree();
        let e = explain(&t, &[0.1, 0.9], &[4.0, 4.0], usize::MAX);
        let ids: Vec<u32> = e.culprits.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 3]); // ascending score: 1.1, 3.3, 3.6
        assert_eq!(e.rank, 4);
        assert!(!e.truncated);
    }

    #[test]
    fn julia_is_excluded_by_p3_p1_p7() {
        let t = fig_tree();
        let e = explain(&t, &[0.9, 0.1], &[4.0, 4.0], usize::MAX);
        let ids: Vec<u32> = e.culprits.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![2, 0, 6]); // scores 1.8 < 1.9 < 3.4
        assert_eq!(e.rank, 4);
    }

    #[test]
    fn member_vector_has_no_culprits_beyond_its_rank() {
        let t = fig_tree();
        let e = explain(&t, &[0.5, 0.5], &[4.0, 4.0], usize::MAX);
        assert_eq!(e.rank, 2);
        assert_eq!(e.culprits.len(), 1);
        assert_eq!(e.culprits[0].id, 0);
    }

    #[test]
    fn limit_truncates_but_rank_stays_exact() {
        let t = fig_tree();
        let e = explain(&t, &[0.1, 0.9], &[4.0, 4.0], 1);
        assert_eq!(e.culprits.len(), 1);
        assert_eq!(e.rank, 4);
        assert!(e.truncated);
    }

    #[test]
    fn view_explanation_matches_rebuilt_oracle() {
        use std::sync::Arc;
        use wqrtq_geom::FlatPoints;
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let tree = RTree::bulk_load(2, &pts);
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        let (live, ids) = view.materialize_row_major();
        let rebuilt = RTree::bulk_load(2, &live);
        for w in [[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]] {
            for limit in [0, 2, usize::MAX] {
                let got = explain_view(&tree, &view, &w, &[4.0, 4.0], limit);
                let oracle = explain(&rebuilt, &w, &[4.0, 4.0], limit);
                assert_eq!(got.rank, oracle.rank, "w {w:?}");
                assert_eq!(got.truncated, oracle.truncated);
                assert_eq!(got.culprits.len(), oracle.culprits.len());
                for (g, o) in got.culprits.iter().zip(&oracle.culprits) {
                    assert_eq!(g.score, o.score);
                    assert_eq!(g.id, ids[o.id as usize]);
                    assert_eq!(g.coords, o.coords);
                }
            }
        }
    }

    #[test]
    fn scores_are_ascending_and_below_q() {
        let t = fig_tree();
        let e = explain(&t, &[0.3, 0.7], &[4.0, 4.0], usize::MAX);
        let sq = 0.3 * 4.0 + 0.7 * 4.0;
        assert!(e.culprits.windows(2).all(|w| w[0].score <= w[1].score));
        assert!(e.culprits.iter().all(|c| c.score < sq));
    }
}
