//! Penalty models — Equations (1), (3), (4) and (5) of the paper.
//!
//! * Modifying the query point: `Δq = ‖q − q′‖₂ / ‖q‖₂` (Eq. 1),
//!   calibrated against the paper's example (q=(4,4): q′=(3,2.5) → 0.318,
//!   q″=(2.5,3.5) → 0.279).
//! * Modifying preferences: `Penalty(Wm′, k′) = α·Δk/Δkmax +
//!   β·ΔWm/ΔWm_max` (Eq. 4) with `Δk = max(0, k′−k)`,
//!   `Δkmax = k′max − k` (Lemma 4) and `ΔWm_max = √2` (see DESIGN.md for
//!   the calibration of this constant against the paper's Eq.-5 example).
//! * Modifying everything: `Penalty(q′, Wm′, k′) = γ·Δq + λ·Penalty(Wm′,
//!   k′)` (Eq. 5).

use wqrtq_geom::weight::MAX_SIMPLEX_DISTANCE;
use wqrtq_geom::{l2_dist, l2_norm, Weight};

/// User tolerances: `α + β = 1` weights `Δk` against `ΔWm` (Eq. 4);
/// `γ + λ = 1` weights the manufacturer's change against the customers'
/// (Eq. 5). The paper's experiments fix all four to 0.5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Weight of the `Δk` term in Eq. (4).
    pub alpha: f64,
    /// Weight of the `ΔWm` term in Eq. (4).
    pub beta: f64,
    /// Weight of the `Δq` term in Eq. (5).
    pub gamma: f64,
    /// Weight of the preference term in Eq. (5).
    pub lambda: f64,
}

impl Tolerances {
    /// Creates tolerances, validating both convexity constraints.
    ///
    /// # Panics
    /// Panics unless `α, β, γ, λ ≥ 0`, `α + β = 1` and `γ + λ = 1`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, lambda: f64) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0 && gamma >= 0.0 && lambda >= 0.0,
            "tolerances must be non-negative"
        );
        assert!((alpha + beta - 1.0).abs() < 1e-9, "α + β must equal 1");
        assert!((gamma + lambda - 1.0).abs() < 1e-9, "γ + λ must equal 1");
        Self {
            alpha,
            beta,
            gamma,
            lambda,
        }
    }

    /// The paper's experimental setting: α = β = γ = λ = 0.5.
    pub fn paper_default() -> Self {
        Self::new(0.5, 0.5, 0.5, 0.5)
    }
}

impl Default for Tolerances {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Equation (1): normalised modification of the query point,
/// `‖q − q′‖₂ / ‖q‖₂`.
///
/// # Panics
/// Panics on dimension mismatch or a zero-norm original query point.
pub fn query_point_penalty(q: &[f64], q_prime: &[f64]) -> f64 {
    let norm = l2_norm(q);
    assert!(norm > 0.0, "original query point must have positive norm");
    l2_dist(q, q_prime) / norm
}

/// Equation (3), vector part: `ΔWm = Σᵢ ‖wᵢ − wᵢ′‖₂`.
///
/// # Panics
/// Panics if the two sets have different sizes.
pub fn delta_wm(original: &[Weight], refined: &[Weight]) -> f64 {
    assert_eq!(original.len(), refined.len(), "why-not set size mismatch");
    original
        .iter()
        .zip(refined)
        .map(|(a, b)| a.distance(b))
        .sum()
}

/// Equation (4): normalised penalty of modifying `(Wm, k)`.
///
/// `k_max` is `k′max` from Lemma 4 (the worst actual rank of `q` under
/// the original why-not vectors); when `k_max ≤ k` the `Δk` term is
/// defined as zero (nothing to normalise against).
pub fn preference_penalty(
    tol: &Tolerances,
    original: &[Weight],
    refined: &[Weight],
    k: usize,
    k_prime: usize,
    k_max: usize,
) -> f64 {
    let dk = k_prime.saturating_sub(k) as f64;
    let dk_max = k_max.saturating_sub(k) as f64;
    let k_term = if dk_max > 0.0 { dk / dk_max } else { 0.0 };
    let w_term = delta_wm(original, refined) / MAX_SIMPLEX_DISTANCE;
    tol.alpha * k_term + tol.beta * w_term
}

/// Equation (5): combined penalty of modifying `q`, `Wm` and `k`.
#[allow(clippy::too_many_arguments)] // mirrors the equation's term list
pub fn combined_penalty(
    tol: &Tolerances,
    q: &[f64],
    q_prime: &[f64],
    original: &[Weight],
    refined: &[Weight],
    k: usize,
    k_prime: usize,
    k_max: usize,
) -> f64 {
    tol.gamma * query_point_penalty(q, q_prime)
        + tol.lambda * preference_penalty(tol, original, refined, k, k_prime, k_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_examples() {
        // §4.2: Penalty(q′=(3,2.5)) = 0.318, Penalty(q″=(2.5,3.5)) = 0.279.
        let q = [4.0, 4.0];
        assert!((query_point_penalty(&q, &[3.0, 2.5]) - 0.3186887).abs() < 1e-4);
        assert!((query_point_penalty(&q, &[2.5, 3.5]) - 0.2795085).abs() < 1e-4);
        assert_eq!(query_point_penalty(&q, &q), 0.0);
    }

    #[test]
    fn eq4_k_only_modification_matches_paper() {
        // §4.3: modifying k from 3 to 4 with vectors unchanged costs 0.5
        // (α = 0.5, Δk = Δkmax = 1).
        let tol = Tolerances::paper_default();
        let wm = vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])];
        let p = preference_penalty(&tol, &wm, &wm, 3, 4, 4);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq4_weight_modification_close_to_paper() {
        // §4.3: Kevin → (0.18, 0.82), Julia → (0.75, 0.25), k unchanged.
        // The paper prints 0.121 for its (rounded) example vectors; the
        // formula with ΔWm_max = √2 gives 0.115 on those exact values.
        let tol = Tolerances::paper_default();
        let wm = vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])];
        let refined = vec![Weight::new(vec![0.18, 0.82]), Weight::new(vec![0.75, 0.25])];
        let p = preference_penalty(&tol, &wm, &refined, 3, 3, 4);
        assert!((p - 0.115).abs() < 5e-3, "penalty = {p}");
    }

    #[test]
    fn eq5_matches_paper_example() {
        // §4.4: q → (3.8, 3.8), Kevin → (0.135, 0.865), Julia → (0.8, 0.2)
        // gives penalty ≈ 0.06 with γ = λ = 0.5.
        let tol = Tolerances::paper_default();
        let wm = vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])];
        let refined = vec![Weight::new(vec![0.135, 0.865]), Weight::new(vec![0.8, 0.2])];
        let p = combined_penalty(&tol, &[4.0, 4.0], &[3.8, 3.8], &wm, &refined, 3, 3, 4);
        assert!((p - 0.06).abs() < 5e-3, "penalty = {p}");
    }

    #[test]
    fn k_decrease_is_free() {
        let tol = Tolerances::paper_default();
        let wm = vec![Weight::new(vec![0.5, 0.5])];
        // k′ < k: Δk clamps to zero.
        let p = preference_penalty(&tol, &wm, &wm, 6, 3, 10);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn degenerate_k_max_guard() {
        let tol = Tolerances::paper_default();
        let wm = vec![Weight::new(vec![0.5, 0.5])];
        // k_max == k: the Δk term must not divide by zero.
        let p = preference_penalty(&tol, &wm, &wm, 5, 5, 5);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn tolerances_validation() {
        let t = Tolerances::new(0.3, 0.7, 0.9, 0.1);
        assert_eq!(t.alpha, 0.3);
        assert_eq!(Tolerances::default(), Tolerances::paper_default());
    }

    #[test]
    #[should_panic(expected = "α + β")]
    fn tolerances_reject_bad_alpha_beta() {
        let _ = Tolerances::new(0.3, 0.6, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "γ + λ")]
    fn tolerances_reject_bad_gamma_lambda() {
        let _ = Tolerances::new(0.5, 0.5, 0.2, 0.3);
    }

    #[test]
    fn delta_wm_sums_vector_distances() {
        let a = vec![Weight::new(vec![1.0, 0.0]), Weight::new(vec![0.0, 1.0])];
        let b = vec![Weight::new(vec![0.0, 1.0]), Weight::new(vec![0.0, 1.0])];
        assert!((delta_wm(&a, &b) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
