//! The why-not **advisor**: one call that answers the whole why-not
//! question.
//!
//! The paper's user-facing deliverable is not "run MQP, MWK and MQWK and
//! compare by hand" — it is a *recommendation*: the minimum-penalty
//! refinement under the combined penalty model `αΔk + βΔW` / `γΔq + λ·…`
//! (Eqs. 1, 4, 5). [`Wqrtq::advise`] runs the aspect-1 explanation plus
//! every requested refinement strategy (auto-selecting the exact 2-D
//! path where it applies), verifies each answer against the dataset,
//! breaks every penalty into its per-term components, and returns a
//! [`RefinementPlan`] ranked cheapest-first. [`Wqrtq::advise_with`]
//! additionally reports each step as it completes, which is what lets a
//! serving layer stream partial answers while later strategies are
//! still running.

use crate::error::WhyNotError;
use crate::explain::Explanation;
use crate::framework::{RefinedQuery, Wqrtq, WqrtqAnswer};
use crate::penalty::{delta_wm, query_point_penalty, Tolerances};
use std::borrow::Borrow;
use wqrtq_geom::weight::MAX_SIMPLEX_DISTANCE;
use wqrtq_geom::Weight;
use wqrtq_rtree::RTree;

/// One of the paper's three refinement strategies, as a plain
/// (data-only) selector for the advisor and the serving layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Solution 1 — modify the query point (safe region + QP).
    Mqp,
    /// Solution 2 — modify the why-not vectors and `k`.
    Mwk,
    /// Solution 3 — modify `q`, the vectors and `k` together.
    Mqwk,
}

impl StrategyKind {
    /// All strategies, in the paper's presentation order (also the
    /// advisor's execution and tie-breaking order).
    pub const ALL: [StrategyKind; 3] = [StrategyKind::Mqp, StrategyKind::Mwk, StrategyKind::Mqwk];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Mqp => "MQP",
            StrategyKind::Mwk => "MWK",
            StrategyKind::Mqwk => "MQWK",
        }
    }

    /// The stable serialisation tag of this strategy — the single
    /// source of truth for both the engine's cache fingerprint and the
    /// server's wire codec, so the two can never drift.
    pub fn tag(self) -> u8 {
        match self {
            StrategyKind::Mqp => 1,
            StrategyKind::Mwk => 2,
            StrategyKind::Mqwk => 3,
        }
    }

    /// Resolves a serialisation tag back to its strategy (`None` for
    /// unknown tags).
    pub fn from_tag(tag: u8) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|s| s.tag() == tag)
    }
}

/// Everything a why-not advisor call can be tuned by: the penalty model
/// coefficients, which strategies to run, the culprit budget of the
/// explanation, the sampling budgets, and the seed.
///
/// The struct is plain data (`PartialEq`, no invariants enforced at
/// construction) so it can travel through request vocabularies and wire
/// codecs; serving layers validate it at their request boundary instead.
#[derive(Clone, Debug, PartialEq)]
pub struct WhyNotOptions {
    /// Penalty-model coefficients α, β, γ, λ (Eqs. 4 and 5).
    pub tol: Tolerances,
    /// Strategies to run (deduplicated; executed in [`StrategyKind::ALL`]
    /// order regardless of the order given here).
    pub strategies: Vec<StrategyKind>,
    /// Maximum culprits reported per why-not vector (ranks stay exact).
    pub culprit_limit: usize,
    /// Weight samples `|S|` for the sampled MWK / MQWK paths.
    pub sample_size: usize,
    /// Query-point samples `|Q|` for MQWK.
    pub query_samples: usize,
    /// Seed for every sampling step (determinism is seed-driven).
    pub seed: u64,
    /// Allow the advisor to auto-select the exact 2-D MWK path (globally
    /// optimal, no sampling) when the data is two-dimensional. Disabled
    /// by the legacy one-strategy shims, which must reproduce the
    /// sampled behaviour bit for bit.
    pub exact_2d: bool,
}

impl Default for WhyNotOptions {
    fn default() -> Self {
        Self {
            tol: Tolerances::paper_default(),
            strategies: StrategyKind::ALL.to_vec(),
            culprit_limit: 16,
            sample_size: 200,
            query_samples: 200,
            seed: 0,
            exact_2d: true,
        }
    }
}

/// A penalty decomposed into the per-term components of Eqs. (1), (4)
/// and (5). `combined` is the strategy's own penalty (the value the plan
/// is ranked by); the three terms are the *normalised* quantities before
/// their α/β/γ/λ weighting, so a caller can re-weigh a plan under
/// different tolerances without re-running it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PenaltyBreakdown {
    /// The strategy's penalty (Eq. 1 for MQP, Eq. 4 for MWK, Eq. 5 for
    /// MQWK).
    pub combined: f64,
    /// `Δq = ‖q − q′‖/‖q‖` (zero when the query point did not move).
    pub query_term: f64,
    /// `Δk / Δkmax` (zero when `k` did not grow).
    pub k_term: f64,
    /// `ΔWm / ΔWm_max` (zero when no vector moved).
    pub weight_term: f64,
}

/// Deterministic per-step execution facts (no wall-clock — plans must be
/// reproducible bit for bit across runs, worker counts and caches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepStats {
    /// Whether the exact 2-D path answered this step (no sampling).
    pub exact: bool,
    /// Weight samples actually drawn (zero for MQP and exact paths).
    pub sample_size: usize,
    /// Query-point samples actually drawn (zero outside MQWK).
    pub query_samples: usize,
}

/// One executed refinement strategy inside a plan.
#[derive(Clone, Debug)]
pub struct RankedStep {
    /// Which strategy produced this refinement.
    pub strategy: StrategyKind,
    /// The refinement and its penalty.
    pub answer: WqrtqAnswer,
    /// The penalty split into its per-term components.
    pub breakdown: PenaltyBreakdown,
    /// Whether [`Wqrtq::verify`] confirmed the refinement actually fixes
    /// the why-not question.
    pub verified: bool,
    /// Deterministic execution facts.
    pub stats: StepStats,
}

/// The advisor's answer: the explanation plus every executed strategy,
/// ranked cheapest-first under the configured penalty model.
#[derive(Clone, Debug)]
pub struct RefinementPlan {
    /// One explanation per why-not vector (input order), culprit lists
    /// truncated to the configured limit.
    pub explanations: Vec<Explanation>,
    /// `k′max` (Lemma 4): the worst actual rank of `q` under the
    /// original why-not vectors.
    pub k_max: usize,
    /// Executed strategies, ascending by penalty (ties broken by
    /// [`StrategyKind::ALL`] order). `steps[0]` is the recommendation.
    pub steps: Vec<RankedStep>,
}

impl RefinementPlan {
    /// The minimum-penalty refinement — the advisor's recommendation.
    pub fn recommended(&self) -> &RankedStep {
        &self.steps[0]
    }
}

/// A progress event emitted by [`Wqrtq::advise_with`] as soon as the
/// corresponding step completes — the hook streaming serving layers
/// forward as partial frames.
#[derive(Debug)]
pub enum AdvisorEvent<'a> {
    /// The explanation for why-not vector `index` is ready.
    Explained {
        /// Index into the why-not set.
        index: usize,
        /// The explanation (culprit-limited).
        explanation: &'a Explanation,
    },
    /// One refinement strategy finished (events arrive in execution
    /// order, *before* the final plan ranks them).
    Step(&'a RankedStep),
    /// One advisor stage finished: wall-clock timing for validation
    /// (`"validate"`), each explanation (`"explain"`), and each
    /// strategy (its [`StrategyKind::name`]). Carries no plan content —
    /// serving layers fold these into their stage metrics and skip them
    /// when streaming partial plans.
    StageTimed {
        /// Stage label: `"validate"`, `"explain"`, or a strategy name.
        stage: &'static str,
        /// Wall-clock duration of the stage in nanoseconds.
        nanos: u64,
    },
}

/// Deduplicates a strategy selection into canonical execution order.
fn canonical_strategies(requested: &[StrategyKind]) -> Vec<StrategyKind> {
    StrategyKind::ALL
        .into_iter()
        .filter(|s| requested.contains(s))
        .collect()
}

impl<T: Borrow<RTree>> Wqrtq<T> {
    /// Runs one strategy on an **already validated** why-not set —
    /// no re-validation, no verification, no breakdown: exactly the
    /// compute of the matching `modify_*` call minus its validation
    /// pass. Shared by [`Wqrtq::refine_step`] and
    /// [`Wqrtq::refine_answer`].
    fn answer_for(
        &self,
        why_not: &[Weight],
        strategy: StrategyKind,
        options: &WhyNotOptions,
    ) -> Result<(WqrtqAnswer, StepStats), WhyNotError> {
        Ok(match strategy {
            StrategyKind::Mqp => (
                self.answer_mqp(why_not)?,
                StepStats {
                    exact: false,
                    sample_size: 0,
                    query_samples: 0,
                },
            ),
            StrategyKind::Mwk => {
                // The exact 2-D sweep is globally optimal and needs the
                // live row buffer; it applies whenever the facade holds
                // a view (the engine always does) and the caller did not
                // pin the sampled path.
                if options.exact_2d && self.tree().dim() == 2 && self.view().is_some() {
                    let live = self
                        .view()
                        .expect("checked above")
                        .materialize_row_major()
                        .0;
                    (
                        self.answer_mwk_exact_2d(&live, why_not)?,
                        StepStats {
                            exact: true,
                            sample_size: 0,
                            query_samples: 0,
                        },
                    )
                } else {
                    (
                        self.answer_mwk(why_not, options.sample_size, options.seed)?,
                        StepStats {
                            exact: false,
                            sample_size: options.sample_size,
                            query_samples: 0,
                        },
                    )
                }
            }
            StrategyKind::Mqwk => (
                self.answer_mqwk(
                    why_not,
                    options.sample_size,
                    options.query_samples,
                    options.seed,
                )?,
                StepStats {
                    exact: false,
                    sample_size: options.sample_size,
                    query_samples: options.query_samples,
                },
            ),
        })
    }

    /// Runs one refinement strategy under `options` and returns just the
    /// answer — the thin path the legacy one-strategy serving shims use.
    /// Validates the why-not set once and then performs exactly the
    /// compute of the matching `modify_*` call (no verification, no
    /// breakdown), so a shimmed legacy request costs what it always did
    /// and answers bit-identically.
    ///
    /// # Errors
    /// Propagates validation and the strategy's own failures.
    pub fn refine_answer(
        &self,
        why_not: &[Weight],
        strategy: StrategyKind,
        options: &WhyNotOptions,
    ) -> Result<WqrtqAnswer, WhyNotError> {
        self.validate_why_not(why_not)?;
        Ok(self.answer_for(why_not, strategy, options)?.0)
    }

    /// Runs one refinement strategy under `options` and packages it as a
    /// plan step (penalty breakdown + verification + stats).
    ///
    /// `ranks` are the actual ranks of `q` under the original why-not
    /// vectors **as returned by [`Wqrtq::validate_why_not`]** — passing
    /// them is the caller's proof that the set was validated; the
    /// strategies run without a second validation pass (an unvalidated
    /// set reaches algorithm preconditions directly and may panic).
    ///
    /// # Errors
    /// Propagates the strategy's own failures (dataset smaller than
    /// `k`, QP failure).
    pub fn refine_step(
        &self,
        why_not: &[Weight],
        strategy: StrategyKind,
        options: &WhyNotOptions,
        ranks: &[usize],
    ) -> Result<RankedStep, WhyNotError> {
        let k_max = ranks.iter().copied().max().unwrap_or(self.k());
        let (answer, stats) = self.answer_for(why_not, strategy, options)?;
        let breakdown = self.breakdown(why_not, &answer, k_max);
        let verified = self.verify(why_not, &answer);
        Ok(RankedStep {
            strategy,
            answer,
            breakdown,
            verified,
            stats,
        })
    }

    /// Decomposes an answer's penalty into the Eq. (1)/(4)/(5) terms.
    fn breakdown(
        &self,
        why_not: &[Weight],
        answer: &WqrtqAnswer,
        k_max: usize,
    ) -> PenaltyBreakdown {
        let k = self.k();
        let k_term = |k_prime: usize| {
            let dk = k_prime.saturating_sub(k) as f64;
            let dk_max = k_max.saturating_sub(k) as f64;
            if dk_max > 0.0 {
                dk / dk_max
            } else {
                0.0
            }
        };
        let weight_term = |refined: &[Weight]| delta_wm(why_not, refined) / MAX_SIMPLEX_DISTANCE;
        let (query_term, k_t, w_t) = match &answer.refined {
            RefinedQuery::QueryPoint { q_prime } => {
                (query_point_penalty(self.q(), q_prime), 0.0, 0.0)
            }
            RefinedQuery::Preferences {
                why_not: refined,
                k,
            } => (0.0, k_term(*k), weight_term(refined)),
            RefinedQuery::Everything {
                q_prime,
                why_not: refined,
                k,
            } => (
                query_point_penalty(self.q(), q_prime),
                k_term(*k),
                weight_term(refined),
            ),
        };
        PenaltyBreakdown {
            combined: answer.penalty,
            query_term,
            k_term: k_t,
            weight_term: w_t,
        }
    }

    /// Answers the whole why-not question in one call: validates the
    /// why-not set, explains each vector, runs every requested strategy
    /// (exact 2-D MWK auto-selected where applicable), and returns the
    /// plan ranked cheapest-first. Equivalent to
    /// [`Wqrtq::advise_with`] with a no-op observer.
    ///
    /// # Errors
    /// [`WhyNotError::NoStrategies`] when the strategy set is empty;
    /// otherwise whatever validation or the strategies surface.
    pub fn advise(
        &self,
        why_not: &[Weight],
        options: &WhyNotOptions,
    ) -> Result<RefinementPlan, WhyNotError> {
        self.advise_with(why_not, options, |_| {})
    }

    /// [`Wqrtq::advise`], reporting each completed step through `emit`
    /// as soon as it is ready (explanations first, then strategies in
    /// execution order). The final plan re-ranks the steps by penalty;
    /// the events deliberately do not wait for that ranking — they exist
    /// so a serving layer can stream partial answers while the more
    /// expensive strategies are still running.
    ///
    /// # Errors
    /// See [`Wqrtq::advise`].
    pub fn advise_with(
        &self,
        why_not: &[Weight],
        options: &WhyNotOptions,
        mut emit: impl FnMut(AdvisorEvent<'_>),
    ) -> Result<RefinementPlan, WhyNotError> {
        let strategies = canonical_strategies(&options.strategies);
        if strategies.is_empty() {
            return Err(WhyNotError::NoStrategies);
        }
        let stage_nanos = |started: std::time::Instant| {
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
        };
        let started = std::time::Instant::now();
        let ranks = self.validate_why_not(why_not)?;
        let k_max = ranks.iter().copied().max().expect("non-empty why-not set");
        emit(AdvisorEvent::StageTimed {
            stage: "validate",
            nanos: stage_nanos(started),
        });

        let mut explanations = Vec::with_capacity(why_not.len());
        for (index, w) in why_not.iter().enumerate() {
            let started = std::time::Instant::now();
            let explanation = self.explain(w, options.culprit_limit);
            emit(AdvisorEvent::StageTimed {
                stage: "explain",
                nanos: stage_nanos(started),
            });
            emit(AdvisorEvent::Explained {
                index,
                explanation: &explanation,
            });
            explanations.push(explanation);
        }

        let mut steps = Vec::with_capacity(strategies.len());
        for strategy in strategies {
            let started = std::time::Instant::now();
            let step = self.refine_step(why_not, strategy, options, &ranks)?;
            emit(AdvisorEvent::StageTimed {
                stage: strategy.name(),
                nanos: stage_nanos(started),
            });
            emit(AdvisorEvent::Step(&step));
            steps.push(step);
        }
        // Cheapest first; the stable sort keeps the canonical strategy
        // order on exact penalty ties.
        steps.sort_by(|a, b| a.answer.penalty.total_cmp(&b.answer.penalty));

        Ok(RefinementPlan {
            explanations,
            k_max,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    fn fig_tree() -> RTree {
        RTree::bulk_load(2, &fig_points())
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    fn plain_view_facade(tree: &RTree) -> Wqrtq<&RTree> {
        use std::sync::Arc;
        use wqrtq_geom::{DeltaView, FlatPoints};
        let view = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &fig_points())));
        Wqrtq::with_view(tree, view, &[4.0, 4.0], 3).unwrap()
    }

    #[test]
    fn plan_is_ranked_verified_and_recommends_the_minimum() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let plan = w.advise(&kevin_julia(), &WhyNotOptions::default()).unwrap();
        assert_eq!(plan.explanations.len(), 2);
        assert_eq!(plan.k_max, 4);
        assert_eq!(plan.steps.len(), 3);
        assert!(plan
            .steps
            .windows(2)
            .all(|p| p[0].answer.penalty <= p[1].answer.penalty));
        for step in &plan.steps {
            assert!(step.verified, "unverified step {:?}", step.strategy);
            assert!((step.breakdown.combined - step.answer.penalty).abs() < 1e-15);
        }
        assert_eq!(
            plan.recommended().answer.penalty,
            plan.steps[0].answer.penalty
        );
    }

    #[test]
    fn breakdown_terms_recombine_into_the_penalty() {
        let tree = fig_tree();
        let tol = Tolerances::new(0.3, 0.7, 0.6, 0.4);
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3)
            .unwrap()
            .with_tolerances(tol);
        let mut options = WhyNotOptions {
            tol,
            ..WhyNotOptions::default()
        };
        options.exact_2d = false;
        let plan = w.advise(&kevin_julia(), &options).unwrap();
        for step in &plan.steps {
            let b = &step.breakdown;
            let recombined = match step.strategy {
                StrategyKind::Mqp => b.query_term,
                StrategyKind::Mwk => tol.alpha * b.k_term + tol.beta * b.weight_term,
                StrategyKind::Mqwk => {
                    tol.gamma * b.query_term
                        + tol.lambda * (tol.alpha * b.k_term + tol.beta * b.weight_term)
                }
            };
            assert!(
                (recombined - b.combined).abs() < 1e-12,
                "{:?}: {recombined} vs {}",
                step.strategy,
                b.combined
            );
        }
    }

    #[test]
    fn exact_2d_is_auto_selected_on_view_facades() {
        let tree = fig_tree();
        let w = plain_view_facade(&tree);
        let wn = kevin_julia();
        let plan = w.advise(&wn, &WhyNotOptions::default()).unwrap();
        let mwk = plan
            .steps
            .iter()
            .find(|s| s.strategy == StrategyKind::Mwk)
            .unwrap();
        assert!(mwk.stats.exact, "2-D view facade must take the exact path");
        // The exact step matches the standalone oracle bit for bit.
        let oracle = crate::exact2d::mwk_exact_2d(
            &fig_points(),
            &[4.0, 4.0],
            3,
            &wn,
            &Tolerances::paper_default(),
        );
        assert_eq!(mwk.answer.penalty.to_bits(), oracle.penalty.to_bits());

        // Opting out pins the sampled path.
        let sampled_only = WhyNotOptions {
            exact_2d: false,
            ..WhyNotOptions::default()
        };
        let plan = w.advise(&wn, &sampled_only).unwrap();
        let mwk = plan
            .steps
            .iter()
            .find(|s| s.strategy == StrategyKind::Mwk)
            .unwrap();
        assert!(!mwk.stats.exact);
        assert_eq!(mwk.stats.sample_size, sampled_only.sample_size);
    }

    #[test]
    fn events_stream_in_execution_order() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let mut trace = Vec::new();
        let mut timed = Vec::new();
        let plan = w
            .advise_with(
                &kevin_julia(),
                &WhyNotOptions::default(),
                |event| match event {
                    AdvisorEvent::Explained { index, .. } => trace.push(format!("explain{index}")),
                    AdvisorEvent::Step(step) => trace.push(step.strategy.name().to_string()),
                    AdvisorEvent::StageTimed { stage, .. } => timed.push(stage),
                },
            )
            .unwrap();
        assert_eq!(trace, ["explain0", "explain1", "MQP", "MWK", "MQWK"]);
        // Every stage reports its wall-clock: validation, one timing per
        // explanation, one per strategy — each strictly before the
        // content event it times.
        assert_eq!(
            timed,
            ["validate", "explain", "explain", "MQP", "MWK", "MQWK"]
        );
        assert_eq!(plan.steps.len(), 3);
    }

    #[test]
    fn strategy_subset_and_duplicates_are_canonicalised() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let options = WhyNotOptions {
            strategies: vec![StrategyKind::Mwk, StrategyKind::Mqp, StrategyKind::Mqp],
            ..WhyNotOptions::default()
        };
        let plan = w.advise(&kevin_julia(), &options).unwrap();
        let kinds: Vec<StrategyKind> = plan.steps.iter().map(|s| s.strategy).collect();
        assert_eq!(kinds.len(), 2);
        assert!(kinds.contains(&StrategyKind::Mqp) && kinds.contains(&StrategyKind::Mwk));
    }

    #[test]
    fn empty_strategy_set_is_a_typed_error() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let options = WhyNotOptions {
            strategies: Vec::new(),
            ..WhyNotOptions::default()
        };
        assert!(matches!(
            w.advise(&kevin_julia(), &options),
            Err(WhyNotError::NoStrategies)
        ));
    }

    #[test]
    fn refine_step_matches_the_one_shot_facade_calls_bit_for_bit() {
        // The legacy serving shims route through refine_step with
        // exact_2d disabled; it must reproduce the direct facade calls
        // exactly.
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let wn = kevin_julia();
        let ranks = w.validate_why_not(&wn).unwrap();
        let options = WhyNotOptions {
            exact_2d: false,
            sample_size: 120,
            query_samples: 40,
            seed: 9,
            ..WhyNotOptions::default()
        };
        let step = w
            .refine_step(&wn, StrategyKind::Mwk, &options, &ranks)
            .unwrap();
        let direct = w.modify_preferences(&wn, 120, 9).unwrap();
        assert_eq!(step.answer.penalty.to_bits(), direct.penalty.to_bits());
        let step = w
            .refine_step(&wn, StrategyKind::Mqwk, &options, &ranks)
            .unwrap();
        let direct = w.modify_all(&wn, 120, 40, 9).unwrap();
        assert_eq!(step.answer.penalty.to_bits(), direct.penalty.to_bits());
    }
}
