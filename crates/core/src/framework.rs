//! The unified WQRTQ framework (Figure 4 of the paper).
//!
//! [`Wqrtq`] wraps an indexed dataset, a query point and `k`, validates
//! why-not inputs (for bichromatic queries the vectors must come from
//! `W ∖ BRTOPk(q)`; for monochromatic queries any non-member vector is
//! allowed — both reduce to "q ranks below k", which is what we check),
//! and exposes the three refinement solutions plus the aspect-1
//! explanation under one roof.

use crate::error::WhyNotError;
use crate::explain::{explain, explain_view, Explanation};
use crate::mqp::{mqp, mqp_view};
use crate::mqwk::{mqwk, mqwk_view};
use crate::mwk::{mwk, mwk_view};
use crate::penalty::Tolerances;
use std::borrow::Borrow;
use wqrtq_geom::{DeltaView, Weight};
use wqrtq_query::rank::{is_in_topk_scratch, is_in_topk_view, rank_of_point, rank_of_point_view};
use wqrtq_rtree::{ProbeScratch, RTree};

/// A refined reverse top-k query, as returned by the framework.
#[derive(Clone, Debug)]
pub enum RefinedQuery {
    /// Solution 1 (MQP): only the query point moved.
    QueryPoint {
        /// The refined query point.
        q_prime: Vec<f64>,
    },
    /// Solution 2 (MWK): only the preferences moved.
    Preferences {
        /// The refined why-not vectors.
        why_not: Vec<Weight>,
        /// The refined `k`.
        k: usize,
    },
    /// Solution 3 (MQWK): everything moved.
    Everything {
        /// The refined query point.
        q_prime: Vec<f64>,
        /// The refined why-not vectors.
        why_not: Vec<Weight>,
        /// The refined `k`.
        k: usize,
    },
}

/// A refinement with its penalty.
#[derive(Clone, Debug)]
pub struct WqrtqAnswer {
    /// What to change.
    pub refined: RefinedQuery,
    /// The penalty of the change (Eq. 1, 4 or 5 depending on solution).
    pub penalty: f64,
}

/// The WQRTQ facade: a reverse top-k query under why-not investigation.
///
/// Generic over how the pre-built index is held (`T: Borrow<RTree>`), so
/// one-shot callers keep passing `&RTree` while long-lived serving layers
/// (the `wqrtq-engine` worker pool) hand in a shared `Arc<RTree>` — the
/// index is built once, never per call.
///
/// The facade is also generic over the *snapshot* it answers against:
/// constructed with [`Wqrtq::new`] it serves the indexed rows verbatim;
/// constructed with [`Wqrtq::with_view`] it serves a [`DeltaView`]
/// overlay — appended rows and tombstones folded into every rank test,
/// constraint plane, dominance frontier and verification, so answers
/// match a dataset rebuilt from the live rows without any rebuild.
#[derive(Clone, Debug)]
pub struct Wqrtq<T: Borrow<RTree>> {
    tree: T,
    /// `Some` when answering over a delta overlay of the indexed base.
    view: Option<DeltaView>,
    q: Vec<f64>,
    k: usize,
    tol: Tolerances,
}

impl<T: Borrow<RTree>> Wqrtq<T> {
    /// Wraps a query. `tree` is the pre-built index over the product
    /// dataset `P` (borrowed or shared); `q` is the query point and `k`
    /// the original parameter.
    ///
    /// # Errors
    /// Returns [`WhyNotError::DimensionMismatch`] when `q` does not match
    /// the dataset.
    pub fn new(tree: T, q: &[f64], k: usize) -> Result<Self, WhyNotError> {
        if q.len() != tree.borrow().dim() {
            return Err(WhyNotError::DimensionMismatch {
                expected: tree.borrow().dim(),
                got: q.len(),
            });
        }
        Ok(Self {
            tree,
            view: None,
            q: q.to_vec(),
            k,
            tol: Tolerances::paper_default(),
        })
    }

    /// Wraps a query over a delta overlay: `tree` is the index of
    /// `view`'s *base* rows; every answer accounts for the overlay's
    /// appends and tombstones.
    ///
    /// # Errors
    /// Returns [`WhyNotError::DimensionMismatch`] when `q` or the view
    /// does not match the index.
    pub fn with_view(tree: T, view: DeltaView, q: &[f64], k: usize) -> Result<Self, WhyNotError> {
        let dim = tree.borrow().dim();
        if q.len() != dim || view.dim() != dim {
            return Err(WhyNotError::DimensionMismatch {
                expected: dim,
                got: if q.len() != dim { q.len() } else { view.dim() },
            });
        }
        Ok(Self {
            tree,
            view: Some(view),
            q: q.to_vec(),
            k,
            tol: Tolerances::paper_default(),
        })
    }

    /// The overlay snapshot, when answering over one.
    pub fn view(&self) -> Option<&DeltaView> {
        self.view.as_ref()
    }

    /// Rank of `q` under `w` against this facade's snapshot.
    fn rank_under(&self, w: &Weight) -> usize {
        match &self.view {
            Some(v) => rank_of_point_view(self.tree(), v, w, &self.q),
            None => rank_of_point(self.tree(), w, &self.q),
        }
    }

    /// The wrapped index.
    pub fn tree(&self) -> &RTree {
        self.tree.borrow()
    }

    /// Overrides the default (paper) tolerances α, β, γ, λ.
    pub fn with_tolerances(mut self, tol: Tolerances) -> Self {
        self.tol = tol;
        self
    }

    /// The penalty-model coefficients this facade evaluates under.
    pub fn tolerances(&self) -> &Tolerances {
        &self.tol
    }

    /// The query point.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// The original `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Checks that every vector is genuinely why-not (q ranks below it),
    /// returning the actual ranks. This is the input contract of
    /// Definitions 4/5: monochromatic vectors may be arbitrary non-member
    /// weights, bichromatic ones must be absent from `BRTOPk(q)` — both
    /// reduce to this rank test.
    pub fn validate_why_not(&self, why_not: &[Weight]) -> Result<Vec<usize>, WhyNotError> {
        if why_not.is_empty() {
            return Err(WhyNotError::EmptyWhyNot);
        }
        let mut ranks = Vec::with_capacity(why_not.len());
        for (i, w) in why_not.iter().enumerate() {
            if w.dim() != self.tree().dim() {
                return Err(WhyNotError::DimensionMismatch {
                    expected: self.tree().dim(),
                    got: w.dim(),
                });
            }
            let r = self.rank_under(w);
            if r <= self.k {
                return Err(WhyNotError::NotWhyNot {
                    index: i,
                    rank: r,
                    k: self.k,
                });
            }
            ranks.push(r);
        }
        Ok(ranks)
    }

    /// Aspect 1: why is `w` not in the reverse top-k result? Lists the
    /// culprit points (§3).
    pub fn explain(&self, w: &Weight, limit: usize) -> Explanation {
        match &self.view {
            Some(v) => explain_view(self.tree(), v, w, &self.q, limit),
            None => explain(self.tree(), w, &self.q, limit),
        }
    }

    /// Splits a bichromatic weight population `W` into
    /// (`BRTOPk(q)`, `W ∖ BRTOPk(q)`) — the second component is the set
    /// of *valid why-not inputs* per Definition 5. Indices refer to
    /// `weights`.
    pub fn partition_population(&self, weights: &[Weight]) -> (Vec<usize>, Vec<usize>) {
        let members = match &self.view {
            Some(v) => wqrtq_query::brtopk::bichromatic_reverse_topk_rta_view(
                self.tree(),
                v,
                weights,
                &self.q,
                self.k,
            ),
            None => wqrtq_query::brtopk::bichromatic_reverse_topk_rta(
                self.tree(),
                weights,
                &self.q,
                self.k,
            ),
        };
        let mut in_result = vec![false; weights.len()];
        for &i in &members {
            in_result[i] = true;
        }
        let missing = (0..weights.len()).filter(|&i| !in_result[i]).collect();
        (members, missing)
    }

    /// Solution 1: modify the query point (MQP).
    pub fn modify_query(&self, why_not: &[Weight]) -> Result<WqrtqAnswer, WhyNotError> {
        self.validate_why_not(why_not)?;
        self.answer_mqp(why_not)
    }

    /// MQP without the why-not validation pass — for callers (the
    /// advisor) that validated the set once already.
    pub(crate) fn answer_mqp(&self, why_not: &[Weight]) -> Result<WqrtqAnswer, WhyNotError> {
        let res = match &self.view {
            Some(v) => mqp_view(self.tree(), v, &self.q, self.k, why_not)?,
            None => mqp(self.tree(), &self.q, self.k, why_not)?,
        };
        Ok(WqrtqAnswer {
            refined: RefinedQuery::QueryPoint {
                q_prime: res.q_prime,
            },
            penalty: res.penalty,
        })
    }

    /// Solution 2: modify the why-not vectors and `k` (MWK).
    pub fn modify_preferences(
        &self,
        why_not: &[Weight],
        sample_size: usize,
        seed: u64,
    ) -> Result<WqrtqAnswer, WhyNotError> {
        self.validate_why_not(why_not)?;
        self.answer_mwk(why_not, sample_size, seed)
    }

    /// Sampled MWK without the why-not validation pass.
    pub(crate) fn answer_mwk(
        &self,
        why_not: &[Weight],
        sample_size: usize,
        seed: u64,
    ) -> Result<WqrtqAnswer, WhyNotError> {
        let res = match &self.view {
            Some(v) => mwk_view(
                self.tree(),
                v,
                &self.q,
                self.k,
                why_not,
                sample_size,
                &self.tol,
                seed,
            )?,
            None => mwk(
                self.tree(),
                &self.q,
                self.k,
                why_not,
                sample_size,
                &self.tol,
                seed,
            )?,
        };
        Ok(WqrtqAnswer {
            refined: RefinedQuery::Preferences {
                why_not: res.refined,
                k: res.k_prime,
            },
            penalty: res.penalty,
        })
    }

    /// Solution 2, exact variant (2-D data only): enumerates candidate
    /// `k′` values against the exact monochromatic weight intervals
    /// instead of sampling, returning the *globally optimal* `(Wm′, k′)`.
    /// `points` must be the flat buffer the tree was built from.
    ///
    /// # Panics
    /// Panics if the data is not two-dimensional (see
    /// [`crate::exact2d::mwk_exact_2d`]).
    pub fn modify_preferences_exact_2d(
        &self,
        points: &[f64],
        why_not: &[Weight],
    ) -> Result<WqrtqAnswer, WhyNotError> {
        self.validate_why_not(why_not)?;
        self.answer_mwk_exact_2d(points, why_not)
    }

    /// Exact 2-D MWK without the why-not validation pass.
    pub(crate) fn answer_mwk_exact_2d(
        &self,
        points: &[f64],
        why_not: &[Weight],
    ) -> Result<WqrtqAnswer, WhyNotError> {
        let res = crate::exact2d::mwk_exact_2d(points, &self.q, self.k, why_not, &self.tol);
        Ok(WqrtqAnswer {
            refined: RefinedQuery::Preferences {
                why_not: res.refined,
                k: res.k_prime,
            },
            penalty: res.penalty,
        })
    }

    /// Solution 3: modify everything (MQWK).
    pub fn modify_all(
        &self,
        why_not: &[Weight],
        sample_size: usize,
        query_samples: usize,
        seed: u64,
    ) -> Result<WqrtqAnswer, WhyNotError> {
        self.validate_why_not(why_not)?;
        self.answer_mqwk(why_not, sample_size, query_samples, seed)
    }

    /// MQWK without the why-not validation pass.
    pub(crate) fn answer_mqwk(
        &self,
        why_not: &[Weight],
        sample_size: usize,
        query_samples: usize,
        seed: u64,
    ) -> Result<WqrtqAnswer, WhyNotError> {
        let res = match &self.view {
            Some(v) => mqwk_view(
                self.tree(),
                v,
                &self.q,
                self.k,
                why_not,
                sample_size,
                query_samples,
                &self.tol,
                seed,
            )?,
            None => mqwk(
                self.tree(),
                &self.q,
                self.k,
                why_not,
                sample_size,
                query_samples,
                &self.tol,
                seed,
            )?,
        };
        Ok(WqrtqAnswer {
            refined: RefinedQuery::Everything {
                q_prime: res.q_prime,
                why_not: res.refined,
                k: res.k_prime,
            },
            penalty: res.penalty,
        })
    }

    /// Runs all three solutions and returns them sorted by penalty
    /// (cheapest first) — the "pick your scenario" view of Figure 4.
    pub fn all_refinements(
        &self,
        why_not: &[Weight],
        sample_size: usize,
        query_samples: usize,
        seed: u64,
    ) -> Result<Vec<WqrtqAnswer>, WhyNotError> {
        let mut answers = vec![
            self.modify_query(why_not)?,
            self.modify_preferences(why_not, sample_size, seed)?,
            self.modify_all(why_not, sample_size, query_samples, seed)?,
        ];
        answers.sort_by(|a, b| a.penalty.total_cmp(&b.penalty));
        Ok(answers)
    }

    /// Verifies that an answer actually fixes the why-not question: every
    /// (refined) why-not vector must contain the (refined) query point in
    /// its (refined) top-k.
    pub fn verify(&self, why_not: &[Weight], answer: &WqrtqAnswer) -> bool {
        // One probe scratch serves every membership test in the loop —
        // the traversal queue allocates once, not per vector.
        let mut scratch = ProbeScratch::new();
        let mut all_in = |ws: &[Weight], q: &[f64], k: usize| {
            ws.iter().all(|w| match &self.view {
                Some(v) => is_in_topk_view(self.tree(), v, w, q, k, &mut scratch),
                None => is_in_topk_scratch(self.tree(), w, q, k, &mut scratch),
            })
        };
        match &answer.refined {
            RefinedQuery::QueryPoint { q_prime } => all_in(why_not, q_prime, self.k),
            RefinedQuery::Preferences {
                why_not: refined,
                k,
            } => all_in(refined, &self.q, *k),
            RefinedQuery::Everything {
                q_prime,
                why_not: refined,
                k,
            } => all_in(refined, q_prime, *k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn validation_accepts_why_not_and_rejects_members() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        assert_eq!(w.validate_why_not(&kevin_julia()).unwrap(), vec![4, 4]);
        let tony = vec![Weight::new(vec![0.5, 0.5])];
        assert!(matches!(
            w.validate_why_not(&tony),
            Err(WhyNotError::NotWhyNot {
                index: 0,
                rank: 2,
                k: 3
            })
        ));
    }

    #[test]
    fn all_three_solutions_verify() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let wn = kevin_julia();
        for answer in w.all_refinements(&wn, 200, 200, 7).unwrap() {
            assert!(w.verify(&wn, &answer), "unverified answer {answer:?}");
            assert!(answer.penalty >= 0.0);
        }
    }

    #[test]
    fn answers_are_sorted_by_penalty() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let answers = w.all_refinements(&kevin_julia(), 200, 200, 3).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.windows(2).all(|p| p[0].penalty <= p[1].penalty));
        // MQWK (Everything) is never beaten on this workload because it
        // subsumes both endpoints.
        assert!(matches!(
            answers[0].refined,
            RefinedQuery::Everything { .. }
        ));
    }

    #[test]
    fn population_partition_matches_paper() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let population = vec![
            Weight::new(vec![0.1, 0.9]), // Kevin
            Weight::new(vec![0.5, 0.5]), // Tony
            Weight::new(vec![0.3, 0.7]), // Anna
            Weight::new(vec![0.9, 0.1]), // Julia
        ];
        let (members, missing) = w.partition_population(&population);
        assert_eq!(members, vec![1, 2]); // Tony, Anna
        assert_eq!(missing, vec![0, 3]); // Kevin, Julia
                                         // The missing side is exactly the set of valid why-not inputs.
        let wn: Vec<Weight> = missing.iter().map(|&i| population[i].clone()).collect();
        assert!(w.validate_why_not(&wn).is_ok());
    }

    #[test]
    fn exact_2d_preferences_beat_or_match_sampled() {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let tree = RTree::bulk_load(2, &pts);
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let wn = kevin_julia();
        let exact = w.modify_preferences_exact_2d(&pts, &wn).unwrap();
        let sampled = w.modify_preferences(&wn, 400, 3).unwrap();
        assert!(exact.penalty <= sampled.penalty + 1e-9);
        assert!(w.verify(&wn, &exact));
    }

    #[test]
    fn explanation_reaches_through_facade() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3).unwrap();
        let e = w.explain(&Weight::new(vec![0.1, 0.9]), 10);
        assert_eq!(e.rank, 4);
        assert_eq!(e.culprits.len(), 3);
    }

    #[test]
    fn accessors_and_tolerance_override() {
        let tree = fig_tree();
        let w = Wqrtq::new(&tree, &[4.0, 4.0], 3)
            .unwrap()
            .with_tolerances(Tolerances::new(0.2, 0.8, 0.5, 0.5));
        assert_eq!(w.q(), &[4.0, 4.0]);
        assert_eq!(w.k(), 3);
    }

    #[test]
    fn view_facade_matches_rebuilt_facade_bit_for_bit() {
        use std::sync::Arc;
        use wqrtq_geom::{DeltaView, FlatPoints};
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let tree = fig_tree();
        // Delete p5/p6 (ids 4, 5), append a near-frontier point and a
        // far one.
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.2, 3.1, 8.5, 8.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![7.0, 5.0, 5.0, 8.0]),
            Arc::new(vec![4, 5]),
        );
        let (live, _) = view.materialize_row_major();
        let rebuilt = RTree::bulk_load(2, &live);
        let plain_view = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &live)));

        let overlay = Wqrtq::with_view(&tree, view, &[4.0, 4.0], 3).unwrap();
        let oracle = Wqrtq::with_view(&rebuilt, plain_view, &[4.0, 4.0], 3).unwrap();
        let wn = kevin_julia();
        assert_eq!(
            overlay.validate_why_not(&wn).unwrap(),
            oracle.validate_why_not(&wn).unwrap()
        );
        let a = overlay.all_refinements(&wn, 150, 150, 11).unwrap();
        let b = oracle.all_refinements(&wn, 150, 150, 11).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.penalty.to_bits(), y.penalty.to_bits(), "penalty drift");
            match (&x.refined, &y.refined) {
                (
                    RefinedQuery::QueryPoint { q_prime: qa },
                    RefinedQuery::QueryPoint { q_prime: qb },
                ) => assert_eq!(qa, qb),
                (
                    RefinedQuery::Preferences { why_not: wa, k: ka },
                    RefinedQuery::Preferences { why_not: wb, k: kb },
                ) => {
                    assert_eq!(ka, kb);
                    for (u, v) in wa.iter().zip(wb) {
                        assert_eq!(u.as_slice(), v.as_slice());
                    }
                }
                (
                    RefinedQuery::Everything {
                        q_prime: qa,
                        why_not: wa,
                        k: ka,
                    },
                    RefinedQuery::Everything {
                        q_prime: qb,
                        why_not: wb,
                        k: kb,
                    },
                ) => {
                    assert_eq!(qa, qb);
                    assert_eq!(ka, kb);
                    for (u, v) in wa.iter().zip(wb) {
                        assert_eq!(u.as_slice(), v.as_slice());
                    }
                }
                other => panic!("refinement family mismatch: {other:?}"),
            }
            assert!(overlay.verify(&wn, x), "overlay answer fails verification");
        }
    }

    #[test]
    fn dimension_mismatch_detected_at_construction() {
        let tree = fig_tree();
        assert!(matches!(
            Wqrtq::new(&tree, &[1.0, 2.0, 3.0], 3),
            Err(WhyNotError::DimensionMismatch { .. })
        ));
    }
}
