//! Error types for why-not processing.

use std::fmt;

/// Failures surfaced by the why-not algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WhyNotError {
    /// The why-not set was empty.
    EmptyWhyNot,
    /// A supposed why-not vector already has `q` in its top-k result
    /// (so there is nothing to refine for it).
    NotWhyNot {
        /// Index of the offending vector within `Wm`.
        index: usize,
        /// The actual rank of `q` under that vector.
        rank: usize,
        /// The query's `k`.
        k: usize,
    },
    /// A weighting vector's dimensionality does not match the dataset.
    DimensionMismatch {
        /// Expected dimensionality (the dataset's).
        expected: usize,
        /// Offending dimensionality.
        got: usize,
    },
    /// The dataset has fewer than `k` points, so top-k-th points (and the
    /// safe region) are undefined.
    DatasetSmallerThanK {
        /// Number of indexed points.
        len: usize,
        /// The query's `k`.
        k: usize,
    },
    /// The quadratic program could not be solved numerically.
    QpFailure(String),
    /// An advisor call requested an empty strategy set — there is
    /// nothing to run, so there can be no recommendation.
    NoStrategies,
}

impl fmt::Display for WhyNotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhyNotError::EmptyWhyNot => write!(f, "the why-not weighting vector set is empty"),
            WhyNotError::NotWhyNot { index, rank, k } => write!(
                f,
                "weighting vector #{index} is not a why-not vector: q ranks {rank} ≤ k = {k}"
            ),
            WhyNotError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            WhyNotError::DatasetSmallerThanK { len, k } => {
                write!(f, "dataset of {len} points is smaller than k = {k}")
            }
            WhyNotError::QpFailure(msg) => write!(f, "quadratic programming failed: {msg}"),
            WhyNotError::NoStrategies => {
                write!(f, "the refinement strategy set is empty — nothing to run")
            }
        }
    }
}

impl std::error::Error for WhyNotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = WhyNotError::NotWhyNot {
            index: 2,
            rank: 3,
            k: 5,
        };
        let s = e.to_string();
        assert!(s.contains("#2") && s.contains("3") && s.contains("5"));
        assert!(WhyNotError::EmptyWhyNot.to_string().contains("empty"));
        assert!(WhyNotError::DimensionMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("expected 3"));
        assert!(WhyNotError::DatasetSmallerThanK { len: 4, k: 9 }
            .to_string()
            .contains("k = 9"));
        assert!(WhyNotError::QpFailure("nope".into())
            .to_string()
            .contains("nope"));
    }
}
