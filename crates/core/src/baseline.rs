//! The separate-refinement strawman of the paper's §3.
//!
//! "A straightforward way to tackle our problem is to take q as a why-not
//! point … and then use the algorithms for why-not questions on top-k
//! queries to refine the query [one vector at a time]. Nevertheless,
//! although the penalty of each refining is minimized, the total penalty
//! of this method might not be the minimum."
//!
//! This module implements that strawman — refine every why-not vector
//! independently, then combine — so the claim can be tested and measured
//! (`ablation_joint_vs_separate`). The joint MWK sees candidates the
//! separate runs cannot (sharing `k′` across vectors), so its penalty is
//! never worse given the same sample budget per vector.

use crate::error::WhyNotError;
use crate::incomparable::DominanceFrontier;
use crate::mwk::{mwk_with_frontier, MwkResult};
use crate::penalty::{preference_penalty, Tolerances};
use wqrtq_geom::Weight;
use wqrtq_rtree::RTree;

/// Refines each why-not vector independently (each with its own optimal
/// `(wᵢ′, kᵢ′)`), then combines them with `k′ = max kᵢ′` and reports the
/// *joint* penalty of the combination under Eq. (4).
pub fn separate_refinement(
    tree: &RTree,
    q: &[f64],
    k: usize,
    why_not: &[Weight],
    sample_size: usize,
    tol: &Tolerances,
    seed: u64,
) -> Result<MwkResult, WhyNotError> {
    if why_not.is_empty() {
        return Err(WhyNotError::EmptyWhyNot);
    }
    if q.len() != tree.dim() {
        return Err(WhyNotError::DimensionMismatch {
            expected: tree.dim(),
            got: q.len(),
        });
    }
    let frontier = DominanceFrontier::from_tree(tree, q);

    let mut refined = Vec::with_capacity(why_not.len());
    let mut k_prime = k;
    let mut ranks = Vec::with_capacity(why_not.len());
    let mut candidates = 0;
    for (i, w) in why_not.iter().enumerate() {
        let single = std::slice::from_ref(w);
        let res = mwk_with_frontier(
            &frontier,
            k,
            single,
            sample_size,
            tol,
            seed.wrapping_add(i as u64),
        );
        refined.push(res.refined[0].clone());
        k_prime = k_prime.max(res.k_prime);
        ranks.push(res.actual_ranks[0]);
        candidates += res.candidates_examined;
    }
    let k_max = ranks.iter().copied().max().expect("non-empty");
    // Joint penalty of the combined tuple (what the user actually pays).
    let penalty = preference_penalty(tol, why_not, &refined, k, k_prime, k_max.max(k_prime));
    Ok(MwkResult {
        refined,
        k_prime,
        penalty,
        k_max,
        actual_ranks: ranks,
        candidates_examined: candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwk::mwk;
    use wqrtq_query::rank::rank_of_point;

    fn fig_tree() -> RTree {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        RTree::bulk_load(2, &pts)
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn separate_answer_is_still_valid() {
        let tree = fig_tree();
        let res = separate_refinement(
            &tree,
            &[4.0, 4.0],
            3,
            &kevin_julia(),
            300,
            &Tolerances::paper_default(),
            7,
        )
        .unwrap();
        for w in &res.refined {
            let r = rank_of_point(&tree, w, &[4.0, 4.0]);
            assert!(r <= res.k_prime, "rank {r} > k′ {}", res.k_prime);
        }
    }

    #[test]
    fn joint_mwk_no_worse_than_separate() {
        // The paper's §3 claim, on the running example with a shared
        // deterministic sample budget.
        let tree = fig_tree();
        let tol = Tolerances::paper_default();
        let q = [4.0, 4.0];
        let wn = kevin_julia();
        for seed in [1u64, 7, 13, 42] {
            let joint = mwk(&tree, &q, 3, &wn, 300, &tol, seed).unwrap();
            let separate = separate_refinement(&tree, &q, 3, &wn, 300, &tol, seed).unwrap();
            assert!(
                joint.penalty <= separate.penalty + 1e-9,
                "seed {seed}: joint {} > separate {}",
                joint.penalty,
                separate.penalty
            );
        }
    }

    #[test]
    fn empty_set_rejected() {
        let tree = fig_tree();
        assert!(matches!(
            separate_refinement(
                &tree,
                &[4.0, 4.0],
                3,
                &[],
                10,
                &Tolerances::paper_default(),
                1
            ),
            Err(WhyNotError::EmptyWhyNot)
        ));
    }
}
