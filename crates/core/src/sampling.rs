//! Sampling machinery for MWK and MQWK (§4.3–4.4).
//!
//! **Weight samples.** For a fixed target rank, the optimal modified
//! weighting vector lies on one of the hyperplanes
//! `{w : w·(p − q) = 0}` for `p` incomparable with `q`, intersected with
//! the weight simplex (§4.3, citing \[14\]). The paper further narrows the
//! sample space to vectors that "approximate the minimum `|w − wᵢ|`" —
//! for one hyperplane that minimiser is the *projection* of the why-not
//! vector `wᵢ` onto it. The sampler therefore draws, per sample:
//!
//! * with high probability, the projection of a (random) why-not anchor
//!   onto the tie hyperplane of a point currently *beating* `q` under
//!   that anchor (crossing such a hyperplane is what improves `q`'s
//!   rank), optionally jittered along the hyperplane for diversity;
//! * otherwise an exploration draw: a feasible point of a random
//!   incomparable hyperplane, randomised by hit-and-run steps.
//!
//! Every sample is nudged `ε` into the closed "`p` does not beat `q`"
//! side so downstream exact-arithmetic rank computations agree with the
//! paper's tie semantics (`f(w,q) ≤ f(w,p)` keeps `q` in).
//!
//! **Query-point samples.** MQWK samples candidate query points from the
//! box `(qmin, q)` where `qmin` is the MQP optimum — any point outside
//! that box is provably dominated by an endpoint solution (§4.4).

use crate::incomparable::DominanceFrontier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wqrtq_geom::{score, Weight};

/// Samples weighting vectors from the union of the `I`-hyperplanes of a
/// dominance frontier, anchored at the why-not vectors.
#[derive(Debug)]
pub struct WeightSampler<'a> {
    frontier: &'a DominanceFrontier,
    anchors: Vec<Weight>,
    /// Per anchor: indices of incomparable points beating `q` under it.
    culprits: Vec<Vec<u32>>,
    rng: StdRng,
    /// Number of hit-and-run randomisation steps per exploration sample.
    mix_steps: usize,
}

impl<'a> WeightSampler<'a> {
    /// Creates a sampler over the frontier's incomparable hyperplanes,
    /// anchored at `why_not` (the vectors whose neighbourhood matters).
    pub fn new(frontier: &'a DominanceFrontier, why_not: &[Weight], seed: u64) -> Self {
        let mut scores = Vec::new();
        let culprits = why_not
            .iter()
            .map(|w| {
                let sq = score(w, frontier.q());
                frontier.incomparable_scores_into(w, &mut scores);
                scores
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s < sq)
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        Self {
            frontier,
            anchors: why_not.to_vec(),
            culprits,
            rng: StdRng::seed_from_u64(seed),
            mix_steps: 6,
        }
    }

    /// Draws up to `n` sample weighting vectors. Returns fewer (possibly
    /// zero) when the frontier has no incomparable points or degenerate
    /// hyperplanes are hit repeatedly.
    pub fn sample(&mut self, n: usize) -> Vec<Weight> {
        let m = self.frontier.num_incomparable();
        if m == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut failures = 0;
        while out.len() < n && failures < 8 * n + 64 {
            let drew = if !self.anchors.is_empty() && self.rng.gen::<f64>() < 0.75 {
                self.sample_projection()
            } else {
                let idx = self.rng.gen_range(0..m);
                let p = self.frontier.incomparable_point(idx).to_vec();
                self.sample_on_plane(&p)
            };
            match drew {
                Some(w) => out.push(w),
                None => failures += 1,
            }
        }
        out
    }

    /// Projection draw: project a random anchor onto the tie hyperplane
    /// of one of its culprit points — the minimal move neutralising that
    /// point (and every nearer one).
    fn sample_projection(&mut self) -> Option<Weight> {
        let a_idx = self.rng.gen_range(0..self.anchors.len());
        let culprits = &self.culprits[a_idx];
        if culprits.is_empty() {
            return None;
        }
        let p_idx = culprits[self.rng.gen_range(0..culprits.len())] as usize;
        let p = self.frontier.incomparable_point(p_idx);
        let q = self.frontier.q();
        let dim = q.len();
        let delta: Vec<f64> = p.iter().zip(q).map(|(x, y)| x - y).collect();
        let anchor = self.anchors[a_idx].as_slice().to_vec();

        // Projection within the Σw = 1 plane: w = a − μ·δ̃ with
        // δ̃ = δ − mean(δ)·1 and μ = (a·δ)/(δ̃·δ̃).
        let dmean = delta.iter().sum::<f64>() / dim as f64;
        let dtilde: Vec<f64> = delta.iter().map(|d| d - dmean).collect();
        let dd: f64 = dtilde.iter().map(|d| d * d).sum();
        if dd < 1e-18 {
            return None;
        }
        let mu = wqrtq_geom::dot(&anchor, &delta) / dd;
        let mut w: Vec<f64> = anchor
            .iter()
            .zip(&dtilde)
            .map(|(ai, di)| ai - mu * di)
            .collect();

        // Optional jitter along the hyperplane for diversity (d > 2).
        if dim > 2 && self.rng.gen::<f64>() < 0.5 {
            if let Some(dir) = self.tangent_direction(&delta) {
                let (lo, hi) = step_range(&w, &dir);
                let lo = lo.max(-0.15);
                let hi = hi.min(0.15);
                if hi > lo {
                    let t = self.rng.gen_range(lo..hi);
                    for (wk, dk) in w.iter_mut().zip(&dir) {
                        *wk += t * dk;
                    }
                }
            }
        }

        self.finish_sample(w, &delta)
    }

    /// Exploration draw: a feasible point of `{w ∈ simplex : w·δ = 0}`
    /// randomised by hit-and-run.
    fn sample_on_plane(&mut self, p: &[f64]) -> Option<Weight> {
        let q = self.frontier.q();
        let dim = q.len();
        let delta: Vec<f64> = p.iter().zip(q).map(|(a, b)| a - b).collect();
        // Feasible construction: one index where p is better (δ < 0) and
        // one where it is worse (δ > 0); incomparability guarantees both
        // exist (up to ties, which we skip).
        let neg: Vec<usize> = (0..dim).filter(|&i| delta[i] < -1e-12).collect();
        let pos: Vec<usize> = (0..dim).filter(|&i| delta[i] > 1e-12).collect();
        if neg.is_empty() || pos.is_empty() {
            return None;
        }
        let i = neg[self.rng.gen_range(0..neg.len())];
        let j = pos[self.rng.gen_range(0..pos.len())];
        // w = t·e_i + (1−t)·e_j with t·δ_i + (1−t)·δ_j = 0.
        let t = delta[j] / (delta[j] - delta[i]);
        let mut w = vec![0.0; dim];
        w[i] = t;
        w[j] = 1.0 - t;

        // Hit-and-run inside {w ≥ 0, Σw = 1, w·δ = 0} for d > 2.
        if dim > 2 {
            for _ in 0..self.mix_steps {
                if let Some(d) = self.tangent_direction(&delta) {
                    let (lo, hi) = step_range(&w, &d);
                    if hi > lo {
                        let t = self.rng.gen_range(lo..hi);
                        for (wk, dk) in w.iter_mut().zip(&d) {
                            *wk = (*wk + t * dk).max(0.0);
                        }
                        let s: f64 = w.iter().sum();
                        for wk in &mut w {
                            *wk /= s;
                        }
                    }
                }
            }
        }
        self.finish_sample(w, &delta)
    }

    /// Clamps to the simplex and nudges ε into the closed "p does not
    /// beat q" side (w·δ ≥ 0). Mathematically the tie itself keeps q in
    /// (the paper's ≤ semantics); the nudge makes exact-arithmetic rank
    /// computations agree under floating point. Its 1e-9 magnitude is far
    /// above rounding noise and far below any observable penalty.
    fn finish_sample(&mut self, mut w: Vec<f64>, delta: &[f64]) -> Option<Weight> {
        let dim = delta.len();
        for x in &mut w {
            if !x.is_finite() {
                return None;
            }
            *x = x.max(0.0);
        }
        let s: f64 = w.iter().sum();
        if s <= 0.0 {
            return None;
        }
        for x in &mut w {
            *x /= s;
        }
        // Clamping may have pushed w off the hyperplane to the beating
        // side; correct by projecting the violation out, then nudge.
        let dmean = delta.iter().sum::<f64>() / dim as f64;
        let dtilde: Vec<f64> = delta.iter().map(|d| d - dmean).collect();
        let dd: f64 = dtilde.iter().map(|d| d * d).sum();
        if dd < 1e-18 {
            return None;
        }
        let viol = wqrtq_geom::dot(&w, delta);
        if viol < 0.0 {
            let mu = viol / dd;
            for (wk, dk) in w.iter_mut().zip(&dtilde) {
                *wk = (*wk - mu * dk).max(0.0);
            }
        }
        for (wk, dk) in w.iter_mut().zip(&dtilde) {
            *wk = (*wk + 1e-9 * dk).max(0.0);
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return None;
        }
        Some(Weight::normalized(w))
    }

    /// A random direction in the tangent space `{v : Σv = 0, v·δ = 0}`.
    fn tangent_direction(&mut self, delta: &[f64]) -> Option<Vec<f64>> {
        let dim = delta.len();
        let mut v: Vec<f64> = (0..dim).map(|_| self.rng.gen::<f64>() - 0.5).collect();
        // Project out the all-ones direction.
        let mean = v.iter().sum::<f64>() / dim as f64;
        for x in &mut v {
            *x -= mean;
        }
        // Project out δ (within the Σ=0 subspace: remove δ's mean first).
        let dmean = delta.iter().sum::<f64>() / dim as f64;
        let dproj: Vec<f64> = delta.iter().map(|d| d - dmean).collect();
        let dd: f64 = dproj.iter().map(|d| d * d).sum();
        if dd < 1e-18 {
            return None;
        }
        let vd: f64 = v.iter().zip(&dproj).map(|(a, b)| a * b).sum();
        for (x, d) in v.iter_mut().zip(&dproj) {
            *x -= vd / dd * d;
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            None
        } else {
            Some(v.into_iter().map(|x| x / norm).collect())
        }
    }
}

/// The range of `t` keeping `w + t·d ≥ 0`.
fn step_range(w: &[f64], d: &[f64]) -> (f64, f64) {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (wi, di) in w.iter().zip(d) {
        if *di > 1e-15 {
            lo = lo.max(-wi / di);
        } else if *di < -1e-15 {
            hi = hi.min(-wi / di);
        }
    }
    (lo.max(-1e3), hi.min(1e3))
}

/// Samples `n` candidate query points uniformly from the open box
/// `(qmin, q)` — the qualified sample space of MQWK (§4.4).
pub fn sample_query_points(qmin: &[f64], q: &[f64], n: usize, seed: u64) -> Vec<Vec<f64>> {
    assert_eq!(qmin.len(), q.len(), "dimension mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            qmin.iter()
                .zip(q)
                .map(|(lo, hi)| {
                    if hi > lo {
                        rng.gen_range(*lo..*hi)
                    } else {
                        *lo
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_geom::score;
    use wqrtq_rtree::RTree;

    fn fig_frontier() -> DominanceFrontier {
        let pts = vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ];
        let tree = RTree::bulk_load(2, &pts);
        DominanceFrontier::from_tree(&tree, &[4.0, 4.0])
    }

    fn kevin_julia() -> Vec<Weight> {
        vec![Weight::new(vec![0.1, 0.9]), Weight::new(vec![0.9, 0.1])]
    }

    #[test]
    fn samples_lie_on_tie_hyperplanes_2d() {
        let f = fig_frontier();
        let mut s = WeightSampler::new(&f, &kevin_julia(), 42);
        let ws = s.sample(50);
        assert!(!ws.is_empty());
        for w in &ws {
            // Each sample ties q with SOME incomparable point.
            let sq = score(w, f.q());
            let tied = (0..f.num_incomparable())
                .any(|i| (score(w, f.incomparable_point(i)) - sq).abs() < 1e-6);
            assert!(tied, "sample {w:?} ties no incomparable point");
        }
    }

    #[test]
    fn samples_never_land_on_beating_side() {
        // The ε-nudge guarantees the tying point does not beat q.
        let f = fig_frontier();
        let mut s = WeightSampler::new(&f, &kevin_julia(), 8);
        for w in s.sample(100) {
            let sq = score(&w, f.q());
            let near_tie_beats = (0..f.num_incomparable()).any(|i| {
                let sp = score(&w, f.incomparable_point(i));
                (sp - sq).abs() < 1e-6 && sp < sq
            });
            assert!(!near_tie_beats, "sample {w:?} has its tie point beating q");
        }
    }

    #[test]
    fn paper_tie_weights_are_reachable() {
        // p4=(9,3) ties q=(4,4) at w=(1/6,5/6); p7=(3,7) at w=(3/4,1/4)
        // (Figure 2(b) landmarks B and C). With anchored projection both
        // appear quickly: they are the projections of Kevin and Julia.
        let f = fig_frontier();
        let mut s = WeightSampler::new(&f, &kevin_julia(), 7);
        let ws = s.sample(200);
        let found_b = ws.iter().any(|w| (w[0] - 1.0 / 6.0).abs() < 1e-6);
        let found_c = ws.iter().any(|w| (w[0] - 0.75).abs() < 1e-6);
        assert!(found_b, "tie weight of p4 never sampled");
        assert!(found_c, "tie weight of p7 never sampled");
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let f = fig_frontier();
        let anchors = kevin_julia();
        let a: Vec<Vec<f64>> = WeightSampler::new(&f, &anchors, 5)
            .sample(20)
            .into_iter()
            .map(|w| w.into_vec())
            .collect();
        let b: Vec<Vec<f64>> = WeightSampler::new(&f, &anchors, 5)
            .sample(20)
            .into_iter()
            .map(|w| w.into_vec())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_frontier_yields_no_samples() {
        let pts = vec![0.1, 0.1, 0.2, 0.2]; // both points dominate q: I = ∅
        let tree = RTree::bulk_load(2, &pts);
        let f = DominanceFrontier::from_tree(&tree, &[5.0, 5.0]);
        assert_eq!(f.num_incomparable(), 0);
        let mut s = WeightSampler::new(&f, &kevin_julia(), 1);
        assert!(s.sample(10).is_empty());
    }

    #[test]
    fn three_d_samples_satisfy_constraints() {
        // 3-D: projections and hit-and-run must keep samples on the
        // simplex ∩ (some tie hyperplane).
        let pts = vec![
            5.0, 1.0, 9.0, //
            1.0, 8.0, 4.0, //
            9.0, 5.0, 1.0, //
            2.0, 9.0, 9.0, //
        ];
        let tree = RTree::bulk_load(3, &pts);
        let q = [4.0, 4.0, 4.0];
        let f = DominanceFrontier::from_tree(&tree, &q);
        assert!(f.num_incomparable() > 0);
        let anchors = vec![Weight::new(vec![0.2, 0.3, 0.5])];
        let mut s = WeightSampler::new(&f, &anchors, 11);
        let ws = s.sample(100);
        assert!(ws.len() >= 50);
        for w in &ws {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
            let sq = score(w, &q);
            let tied = (0..f.num_incomparable())
                .any(|i| (score(w, f.incomparable_point(i)) - sq).abs() < 1e-5);
            assert!(tied, "3-D sample {w:?} lies on no tie hyperplane");
        }
    }

    #[test]
    fn projections_cluster_near_their_anchor() {
        // The §4.3 quality requirement: samples should approximate the
        // minimum |w − wi|. Anchored projections must on average sit far
        // closer to the anchor than blind feasible-point construction.
        let pts: Vec<f64> = (0..400)
            .flat_map(|i| {
                let a = (i as f64 * 0.7919) % 1.0 * 10.0;
                let b = (i as f64 * 0.3617) % 1.0 * 10.0;
                let c = (i as f64 * 0.5387) % 1.0 * 10.0;
                [a, b, c]
            })
            .collect();
        let tree = RTree::bulk_load(3, &pts);
        let q = [3.0, 3.0, 3.0];
        let f = DominanceFrontier::from_tree(&tree, &q);
        let anchor = Weight::new(vec![0.6, 0.3, 0.1]);
        let mut anchored = WeightSampler::new(&f, std::slice::from_ref(&anchor), 3);
        let mut blind = WeightSampler::new(&f, &[], 3);
        let mean_dist = |ws: &[Weight]| {
            ws.iter().map(|w| anchor.distance(w)).sum::<f64>() / ws.len().max(1) as f64
        };
        let da = mean_dist(&anchored.sample(200));
        let db = mean_dist(&blind.sample(200));
        assert!(
            da < 0.7 * db,
            "anchored mean distance {da} should be well below blind {db}"
        );
    }

    #[test]
    fn three_d_hit_and_run_actually_mixes() {
        // Exploration samples from one hyperplane should differ — the
        // polytope has positive dimension for d = 3.
        let pts = vec![5.0, 1.0, 9.0];
        let tree = RTree::bulk_load(3, &pts);
        let f = DominanceFrontier::from_tree(&tree, &[4.0, 4.0, 4.0]);
        let mut s = WeightSampler::new(&f, &[], 3);
        let ws = s.sample(20);
        assert_eq!(ws.len(), 20);
        let first = ws[0].as_slice().to_vec();
        assert!(
            ws.iter().any(|w| {
                w.as_slice()
                    .iter()
                    .zip(&first)
                    .any(|(a, b)| (a - b).abs() > 1e-6)
            }),
            "all 20 samples identical — hit-and-run not mixing"
        );
    }

    #[test]
    fn query_point_samples_stay_in_box() {
        let qmin = [1.0, 2.0, 3.0];
        let q = [2.0, 2.0, 5.0]; // middle dim degenerate
        let samples = sample_query_points(&qmin, &q, 64, 9);
        assert_eq!(samples.len(), 64);
        for s in &samples {
            assert!(s[0] >= 1.0 && s[0] <= 2.0);
            assert_eq!(s[1], 2.0);
            assert!(s[2] >= 3.0 && s[2] <= 5.0);
        }
    }
}
