//! Batched-engine vs sequential serving throughput, as a JSON report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin engine_bench
//! cargo run --release -p wqrtq-bench --bin engine_bench -- --n 50000 --batch 128 --out BENCH_engine.json
//! ```

use std::io::Write;
use wqrtq_bench::engine_bench::{compare, EngineBenchConfig};

fn main() {
    let mut cfg = EngineBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--dim" => cfg.dim = value("--dim").parse().expect("--dim takes an integer"),
            "--batch" => cfg.batch = value("--batch").parse().expect("--batch takes an integer"),
            "--rounds" => {
                cfg.rounds = value("--rounds")
                    .parse()
                    .expect("--rounds takes an integer")
            }
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: engine_bench [--n N] [--dim D] [--batch B] [--rounds R] \
                     [--workers W] [--seed S] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "engine bench: |P| = {}, d = {}, {} × {} requests + repeat pass, {} workers",
        cfg.n, cfg.dim, cfg.rounds, cfg.batch, cfg.workers
    );
    let report = compare(&cfg);
    eprintln!(
        "sequential naive  : {:>10.1} req/s\n\
         sequential shared : {:>10.1} req/s\n\
         batched engine    : {:>10.1} req/s  (cache hit rate {:.1}%, speedup vs naive {:.1}×)",
        report.sequential_naive.rps(),
        report.sequential_shared.rps(),
        report.batched_engine.rps(),
        100.0 * report.cache_hit_rate,
        report.speedup_vs_naive(),
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
