//! Delta-overlay vs rebuild-per-mutation benchmark, as a JSON report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin mutation_bench
//! cargo run --release -p wqrtq-bench --bin mutation_bench -- --n 100000 --ops 400 --out BENCH_mutation.json
//! ```

use std::io::Write;
use wqrtq_bench::mutation_bench::{compare, MutationBenchConfig};

fn main() {
    let mut cfg = MutationBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--dim" => cfg.dim = value("--dim").parse().expect("--dim takes an integer"),
            "--ops" => cfg.ops = value("--ops").parse().expect("--ops takes an integer"),
            "--append-rows" => {
                cfg.append_rows = value("--append-rows")
                    .parse()
                    .expect("--append-rows takes an integer")
            }
            "--k" => cfg.k = value("--k").parse().expect("--k takes an integer"),
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: mutation_bench [--n N] [--dim D] [--ops O] \
                     [--append-rows R] [--k K] [--workers P] [--seed S] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "mutation bench: |P| = {}, d = {}, {} interleaved ops ({} rows/append), k = {}, {} workers",
        cfg.n, cfg.dim, cfg.ops, cfg.append_rows, cfg.k, cfg.workers
    );
    let report = compare(&cfg);
    eprintln!(
        "overlay engine : {:>10.1} ops/s  ({} delta hits, {} rebuilds avoided, {} compactions, {} builds)\n\
         rebuild engine : {:>10.1} ops/s  ({} builds)\n\
         speedup        : {:>10.2}x",
        report.overlay.ops_per_sec(),
        report.delta_hits,
        report.rebuilds_avoided,
        report.compactions,
        report.overlay_index_builds,
        report.rebuild.ops_per_sec(),
        report.rebuild_index_builds,
        report.speedup(),
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
