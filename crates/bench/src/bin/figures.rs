//! Regenerates the experimental figures of the paper (Figures 7–12) as
//! printed tables: total running time (s) and penalty per algorithm, per
//! x-axis value, per dataset panel.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin figures -- --figure all --profile quick
//! cargo run --release -p wqrtq-bench --bin figures -- --figure 9 --profile paper
//! cargo run --release -p wqrtq-bench --bin figures -- --list
//! ```
//!
//! The `quick` profile (default) caps dataset sizes and sample counts so
//! the full suite finishes in minutes; `paper` uses the Table-1 grid.
//! Shapes (algorithm ordering, trends) are preserved under both; see
//! DESIGN.md and EXPERIMENTS.md.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use wqrtq_bench::harness::{prepare, run_all};
use wqrtq_bench::params::{Config, DatasetKind, Profile};

/// Workload repetitions per x-value (averaged); settable via `--reps`.
static REPS: AtomicUsize = AtomicUsize::new(3);

/// Optional CSV sink (`--csv FILE`): one row per (figure, dataset, x,
/// algorithm).
static CSV: Mutex<Option<std::fs::File>> = Mutex::new(None);

fn print_header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:>12} | {:>11} {:>8} | {:>11} {:>8} | {:>11} {:>8}",
        "x", "MQP t(s)", "pen", "MWK t(s)", "pen", "MQWK t(s)", "pen"
    );
}

/// Runs `REPS` independent workloads for the configuration and prints
/// the mean time/penalty per algorithm (the paper reports averages over
/// queries too).
fn run_config(cfg: &Config, figure: u8, x: &str) {
    let reps = REPS.load(Ordering::Relaxed).max(1);
    let mut time = [0.0f64; 3];
    let mut pen = [0.0f64; 3];
    for r in 0..reps {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(1000 * r as u64);
        let prep = prepare(&c);
        for (i, m) in run_all(&prep).iter().enumerate() {
            time[i] += m.time.as_secs_f64();
            pen[i] += m.penalty;
        }
    }
    let n = reps as f64;
    println!(
        "{x:>12} | {:>11.4} {:>8.4} | {:>11.4} {:>8.4} | {:>11.4} {:>8.4}",
        time[0] / n,
        pen[0] / n,
        time[1] / n,
        pen[1] / n,
        time[2] / n,
        pen[2] / n,
    );
    if let Some(f) = CSV.lock().expect("csv lock").as_mut() {
        for (i, algo) in ["MQP", "MWK", "MQWK"].iter().enumerate() {
            writeln!(
                f,
                "{figure},{},{x},{algo},{:.6},{:.6}",
                cfg.dataset.name(),
                time[i] / n,
                pen[i] / n
            )
            .expect("csv write");
        }
    }
}

/// Figure 7: cost vs dimensionality (Independent, Anti-correlated).
fn figure7(profile: Profile) {
    for kind in [DatasetKind::Independent, DatasetKind::Anticorrelated] {
        print_header(&format!(
            "Figure 7 — cost vs dimensionality ({})",
            kind.name()
        ));
        for d in [2usize, 3, 4, 5] {
            let mut cfg = Config::default_for(kind, profile);
            cfg.dim = d;
            run_config(&cfg, 7, &d.to_string());
        }
    }
}

/// Figure 8: cost vs dataset cardinality (Independent, Anti-correlated).
fn figure8(profile: Profile) {
    for kind in [DatasetKind::Independent, DatasetKind::Anticorrelated] {
        print_header(&format!("Figure 8 — cost vs cardinality ({})", kind.name()));
        for n in profile.cardinality_sweep() {
            let mut cfg = Config::default_for(kind, profile);
            cfg.n = n;
            run_config(&cfg, 8, &format!("{}K", n / 1000));
        }
    }
}

/// Figure 9: cost vs k (four dataset panels).
fn figure9(profile: Profile) {
    for kind in DatasetKind::figure_panels() {
        print_header(&format!("Figure 9 — cost vs k ({})", kind.name()));
        for k in [10usize, 20, 30, 40, 50] {
            let mut cfg = Config::default_for(kind, profile);
            cfg.k = k;
            run_config(&cfg, 9, &k.to_string());
        }
    }
}

/// Figure 10: cost vs actual rank of q under Wm (four panels).
fn figure10(profile: Profile) {
    for kind in DatasetKind::figure_panels() {
        print_header(&format!(
            "Figure 10 — cost vs actual rank of q ({})",
            kind.name()
        ));
        for rank in [11usize, 101, 501, 1001] {
            let mut cfg = Config::default_for(kind, profile);
            cfg.target_rank = rank;
            run_config(&cfg, 10, &rank.to_string());
        }
    }
}

/// Figure 11: cost vs |Wm| (four panels).
fn figure11(profile: Profile) {
    for kind in DatasetKind::figure_panels() {
        print_header(&format!("Figure 11 — cost vs |Wm| ({})", kind.name()));
        for m in 1usize..=5 {
            let mut cfg = Config::default_for(kind, profile);
            cfg.num_why_not = m;
            run_config(&cfg, 11, &m.to_string());
        }
    }
}

/// Figure 12: cost vs sample size (four panels).
fn figure12(profile: Profile) {
    for kind in DatasetKind::figure_panels() {
        print_header(&format!(
            "Figure 12 — cost vs sample size ({})",
            kind.name()
        ));
        for s in profile.sample_size_sweep() {
            let mut cfg = Config::default_for(kind, profile);
            cfg.n = profile.fig12_cardinality();
            cfg.sample_size = s;
            run_config(&cfg, 12, &s.to_string());
        }
    }
}

fn print_table1() {
    println!("Table 1 — parameter ranges and defaults (paper §5.1)");
    println!("  dimensionality d:        2, 3, 4, 5 (default 3)");
    println!("  cardinality |P|:         10K..1000K (default 100K)");
    println!("  k:                       10..50 (default 10)");
    println!("  actual rank of q:        11, 101, 501, 1001 (default 101)");
    println!("  |Wm|:                    1..5 (default 1)");
    println!("  sample size:             100..1600 (default 800)");
    println!("  tolerances:              α = β = γ = λ = 0.5");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure = String::from("all");
    let mut profile = Profile::Quick;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                figure = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--profile" => {
                profile = match args.get(i + 1).map(String::as_str) {
                    Some("paper") => Profile::Paper,
                    _ => Profile::Quick,
                };
                i += 2;
            }
            "--csv" => {
                let path = args.get(i + 1).cloned().unwrap_or_default();
                let mut f = std::fs::File::create(&path).expect("create csv file");
                writeln!(f, "figure,dataset,x,algorithm,mean_time_s,mean_penalty")
                    .expect("csv header");
                *CSV.lock().expect("csv lock") = Some(f);
                i += 2;
            }
            "--reps" => {
                let r = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(3);
                REPS.store(r.max(1), Ordering::Relaxed);
                i += 2;
            }
            "--list" => {
                print_table1();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [--figure 7|8|9|10|11|12|all] [--profile quick|paper] [--reps N] [--csv FILE] [--list]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "WQRTQ figure regeneration — profile: {:?} (see EXPERIMENTS.md for paper-vs-measured)",
        profile
    );
    let started = Instant::now();
    let run = |f: &str| figure == "all" || figure == f;
    if run("7") {
        figure7(profile);
    }
    if run("8") {
        figure8(profile);
    }
    if run("9") {
        figure9(profile);
    }
    if run("10") {
        figure10(profile);
    }
    if run("11") {
        figure11(profile);
    }
    if run("12") {
        figure12(profile);
    }
    println!("\ntotal wall time: {:.1}s", started.elapsed().as_secs_f64());
}
