//! WAL-overhead and recovery-replay benchmark, as a JSON report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin durability_bench
//! cargo run --release -p wqrtq-bench --bin durability_bench -- --ops 5000 --replay-records 200000 --out BENCH_durability.json
//! ```

use std::io::Write;
use wqrtq_bench::durability_bench::{compare, DurabilityBenchConfig};

fn main() {
    let mut cfg = DurabilityBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--dim" => cfg.dim = value("--dim").parse().expect("--dim takes an integer"),
            "--ops" => cfg.ops = value("--ops").parse().expect("--ops takes an integer"),
            "--append-rows" => {
                cfg.append_rows = value("--append-rows")
                    .parse()
                    .expect("--append-rows takes an integer")
            }
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--replay-records" => {
                cfg.replay_records = value("--replay-records")
                    .parse()
                    .expect("--replay-records takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: durability_bench [--n N] [--dim D] [--ops O] \
                     [--append-rows R] [--workers P] [--replay-records M] \
                     [--seed S] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "durability bench: |P| = {}, d = {}, {} mutations ({} rows/append), \
         {} replay records, {} workers",
        cfg.n, cfg.dim, cfg.ops, cfg.append_rows, cfg.replay_records, cfg.workers
    );
    let report = compare(&cfg);
    eprintln!(
        "in-memory    : {:>10.1} mutations/s\n\
         wal buffered : {:>10.1} mutations/s  ({:.2}x of in-memory)\n\
         wal fsync    : {:>10.1} mutations/s  ({:.2}x of in-memory)\n\
         recovery     : {:>10.2} ms per 100k records ({} replayed in {:.3}s)\n\
         bit-identical: {}",
        report.in_memory.ops_per_sec(),
        report.wal_buffered.ops_per_sec(),
        report.wal_vs_inmemory(),
        report.wal_fsync.ops_per_sec(),
        report.wal_fsync_vs_inmemory(),
        report.recovery.ms_per_100k(),
        report.recovery.records_replayed,
        report.recovery.elapsed.as_secs_f64(),
        report.recovered_bit_identical,
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
