//! Wire-serving vs in-process throughput, as a JSON report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin server_bench
//! cargo run --release -p wqrtq-bench --bin server_bench -- --connections 8 --depth 32 --out BENCH_server.json
//! cargo run --release -p wqrtq-bench --bin server_bench -- --stats-out STATS_server.json
//! ```

use std::io::Write;
use wqrtq_bench::alloc_count::CountingAllocator;
use wqrtq_bench::server_bench::{compare, ServerBenchConfig};

/// Count heap allocations so the report's `allocs_per_request` is a
/// real number rather than zero (see `alloc_count`).
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let mut cfg = ServerBenchConfig::default();
    let mut out: Option<String> = None;
    let mut stats_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--dim" => cfg.dim = value("--dim").parse().expect("--dim takes an integer"),
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--connections" => {
                cfg.connections = value("--connections")
                    .parse()
                    .expect("--connections takes an integer")
            }
            "--depth" => cfg.depth = value("--depth").parse().expect("--depth takes an integer"),
            "--requests" => {
                cfg.requests_per_conn = value("--requests")
                    .parse()
                    .expect("--requests takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--stats-out" => stats_out = Some(value("--stats-out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: server_bench [--n N] [--dim D] [--workers W] [--connections C] \
                     [--depth P] [--requests R] [--seed S] [--out FILE] [--stats-out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "server bench: |P| = {}, d = {}, {} workers, sweep to {} connections × depth {}, \
         {} requests/conn",
        cfg.n, cfg.dim, cfg.workers, cfg.connections, cfg.depth, cfg.requests_per_conn
    );
    let report = compare(&cfg);
    eprintln!(
        "in-process        : {:>10.1} req/s",
        report.in_process.rps()
    );
    for p in &report.sweep {
        eprintln!(
            "wire c={:<2} depth={:<3}: {:>10.1} req/s  ({} busy retries, \
             {:.1} frames/read, {:.1} frames/write, {:.0} allocs/req)",
            p.connections,
            p.depth,
            p.throughput.rps(),
            p.busy_retries,
            p.frames_per_read,
            p.frames_per_write,
            p.allocs_per_request,
        );
    }
    eprintln!(
        "best wire {:.1} req/s = {:.2}× in-process, pipelining {:.2}×, responses match: {}",
        report.best_wire().throughput.rps(),
        report.wire_vs_inprocess(),
        report.pipeline_scaling(),
        report.wire_matches_inprocess
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if let Some(path) = stats_out {
        let mut f = std::fs::File::create(&path).expect("create stats file");
        writeln!(f, "{}", report.stats_json).expect("write stats snapshot");
        eprintln!("wrote {path}");
    }
}
