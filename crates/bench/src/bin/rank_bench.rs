//! Rank-kernel and parallel-RTA single-request benchmark, as a JSON
//! report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin rank_bench
//! cargo run --release -p wqrtq-bench --bin rank_bench -- --n 20000 --weights 500 --out BENCH_rank.json
//! ```

use std::io::Write;
use wqrtq_bench::rank_bench::{compare, RankBenchConfig};

fn main() {
    let mut cfg = RankBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--dim" => cfg.dim = value("--dim").parse().expect("--dim takes an integer"),
            "--weights" => {
                cfg.num_weights = value("--weights")
                    .parse()
                    .expect("--weights takes an integer")
            }
            "--k" => cfg.k = value("--k").parse().expect("--k takes an integer"),
            "--repeats" => {
                cfg.repeats = value("--repeats")
                    .parse()
                    .expect("--repeats takes an integer")
            }
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: rank_bench [--n N] [--dim D] [--weights W] [--k K] \
                     [--repeats R] [--workers P] [--seed S] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "rank bench: |P| = {}, d = {}, |W| = {}, k = {}, {} repeats, workers 1 vs {}",
        cfg.n, cfg.dim, cfg.num_weights, cfg.k, cfg.repeats, cfg.workers
    );
    let report = compare(&cfg);
    eprintln!(
        "naive scan     : {:>10.1} req/s\n\
         legacy RTA     : {:>10.1} req/s\n\
         flat RTA       : {:>10.1} req/s  (speedup vs legacy {:.2}×)\n\
         engine 1 worker: {:>10.1} req/s\n\
         engine {} workers: {:>9.1} req/s  (scaling {:.2}× on {} core(s))",
        report.naive_scan.rps(),
        report.legacy_rta.rps(),
        report.flat_rta.rps(),
        report.speedup_flat_vs_legacy(),
        report.engine_workers_1.rps(),
        report.config.workers,
        report.engine_workers_n.rps(),
        report.engine_scaling(),
        report.cores,
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
