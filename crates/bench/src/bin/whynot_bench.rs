//! Why-not advisor plan vs sequential legacy calls, as a JSON report.
//!
//! ```text
//! cargo run --release -p wqrtq-bench --bin whynot_bench
//! cargo run --release -p wqrtq-bench --bin whynot_bench -- --n 20000 --rounds 24 --out BENCH_whynot.json
//! ```

use std::io::Write;
use wqrtq_bench::whynot_bench::{compare, WhyNotBenchConfig};

fn main() {
    let mut cfg = WhyNotBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => cfg.n = value("--n").parse().expect("--n takes an integer"),
            "--rounds" => {
                cfg.rounds = value("--rounds")
                    .parse()
                    .expect("--rounds takes an integer")
            }
            "--why-not" => {
                cfg.why_not = value("--why-not")
                    .parse()
                    .expect("--why-not takes an integer")
            }
            "--k" => cfg.k = value("--k").parse().expect("--k takes an integer"),
            "--samples" => {
                cfg.sample_size = value("--samples")
                    .parse()
                    .expect("--samples takes an integer")
            }
            "--query-samples" => {
                cfg.query_samples = value("--query-samples")
                    .parse()
                    .expect("--query-samples takes an integer")
            }
            "--workers" => {
                cfg.workers = value("--workers")
                    .parse()
                    .expect("--workers takes an integer")
            }
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed takes an integer"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: whynot_bench [--n N] [--rounds R] [--why-not M] [--k K] \
                     [--samples S] [--query-samples Q] [--workers P] [--seed S] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    eprintln!(
        "whynot bench: |P| = {}, {} cases x {} vectors, k = {}, |S| = {}, |Q| = {}, {} workers",
        cfg.n, cfg.rounds, cfg.why_not, cfg.k, cfg.sample_size, cfg.query_samples, cfg.workers
    );
    let report = compare(&cfg);
    eprintln!(
        "plan requests  : {:>8.1} cases/s  ({} requests)\n\
         legacy bundles : {:>8.1} cases/s  ({} requests)\n\
         speedup        : {:>8.3}x   streaming headstart {:.1}x\n\
         recommendation matches legacy minimum: {}; steps verified: {}",
        report.plan.cases_per_sec(),
        report.plan.requests,
        report.legacy.cases_per_sec(),
        report.legacy.requests,
        report.speedup(),
        report.streaming_headstart,
        report.recommendation_matches_legacy_minimum,
        report.plan_steps_verified,
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path).expect("create output file");
            writeln!(f, "{json}").expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
