//! Scale sweep for the two-tier data plane — emits `BENCH_scale.json`.
//!
//! Usage:
//!   scale_bench [--ns 100000,1000000] [--dims 3,5,8] [--weights 240]
//!               [--k 10] [--repeats 5] [--seed 2015] [--out FILE]
//!               [--cells 100000:3,100000:5,1000000:3]
//!
//! `--cells` lists explicit `n:dim` pairs and overrides the `--ns` ×
//! `--dims` cross product — an asymmetric sweep in one report. The 10M
//! tier is opt-in: pass `--ns 100000,1000000,10000000`. CI smoke runs
//! pass small `--ns/--dims` instead.

use std::fs::File;
use std::io::Write;
use std::process::exit;
use wqrtq_bench::{scale_bench, ScaleBenchConfig};

fn parse_list(flag: &str, value: &str) -> Vec<usize> {
    let parsed: Result<Vec<usize>, _> = value.split(',').map(str::parse).collect();
    match parsed {
        Ok(list) if !list.is_empty() => list,
        _ => {
            eprintln!("error: {flag} expects a comma-separated list of integers, got {value:?}");
            exit(2);
        }
    }
}

fn parse_cells(value: &str) -> Vec<(usize, usize)> {
    let parsed: Option<Vec<(usize, usize)>> = value
        .split(',')
        .map(|pair| {
            let (n, d) = pair.split_once(':')?;
            Some((n.parse().ok()?, d.parse().ok()?))
        })
        .collect();
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!("error: --cells expects comma-separated n:dim pairs, got {value:?}");
            exit(2);
        }
    }
}

fn main() {
    let mut cfg = ScaleBenchConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} expects a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--ns" => cfg.ns = parse_list("--ns", &value("--ns")),
            "--dims" => cfg.dims = parse_list("--dims", &value("--dims")),
            "--cells" => cfg.cells = parse_cells(&value("--cells")),
            "--weights" => cfg.num_weights = value("--weights").parse().expect("--weights"),
            "--k" => cfg.k = value("--k").parse().expect("--k"),
            "--repeats" => cfg.repeats = value("--repeats").parse().expect("--repeats"),
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed"),
            "--out" => out = Some(value("--out")),
            other => {
                eprintln!("error: unknown flag {other}");
                exit(2);
            }
        }
    }

    let report = scale_bench::run(&cfg);
    eprint!("{}", report.summary());
    if !report.bit_identical() {
        eprintln!("error: two-tier plane diverged from the exact reference");
        exit(1);
    }
    let json = report.to_json();
    match out {
        Some(path) => {
            let mut f = File::create(&path).expect("create report file");
            f.write_all(json.as_bytes()).expect("write report");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
