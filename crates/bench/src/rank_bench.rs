//! Single-request bichromatic reverse top-k latency: the rank-kernel
//! rebuild (flat SoA kernels + early-exit probe + culprit-pool RTA)
//! against the frozen PR-1 path, plus engine-level scaling across
//! worker counts.
//!
//! Four ways to answer one `BRTOPk(q)` request over `n` points and
//! `|W|` customer weights:
//!
//! * **naive scan** — an independent full rank scan per weight (the
//!   correctness oracle every other path is checked against, bit for
//!   bit);
//! * **legacy RTA** — the pre-PR rank path
//!   ([`wqrtq_query::brtopk::bichromatic_reverse_topk_rta_legacy`]):
//!   buffered threshold test, then `is_in_topk` plus a full best-first
//!   top-k buffer refresh per verified weight;
//! * **flat RTA** — the rebuilt hot path with a steady-state reused
//!   scratch, as a serving worker runs it;
//! * **engine** — the same single request through `Engine::submit`, at
//!   1 worker and at `workers` workers (the pool shards the weight set
//!   for a single request). Queries are jittered per repeat so the
//!   result cache never short-circuits the measurement.
//!
//! The binary `rank_bench` emits the JSON report `scripts/bench.sh`
//! writes to `BENCH_rank.json`.

use std::time::{Duration, Instant};
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{Engine, Histogram, Request, Response, WeightSet};
use wqrtq_geom::{Point, Weight};
use wqrtq_query::brtopk::{
    bichromatic_reverse_topk_naive, bichromatic_reverse_topk_rta_legacy, rta_over_order,
    rta_sorted_order, RtaScratch,
};
use wqrtq_rtree::RTree;

/// Workload shape for the rank-path comparison.
#[derive(Clone, Copy, Debug)]
pub struct RankBenchConfig {
    /// Dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Customer population size `|W|`.
    pub num_weights: usize,
    /// The reverse top-k parameter.
    pub k: usize,
    /// Timed repetitions per path.
    pub repeats: usize,
    /// Engine worker count for the scaling measurement.
    pub workers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for RankBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            dim: 3,
            num_weights: 500,
            k: 10,
            repeats: 30,
            workers: 4,
            seed: 2015,
        }
    }
}

/// One measured path.
#[derive(Clone, Copy, Debug)]
pub struct PathTiming {
    /// Requests timed.
    pub requests: usize,
    /// Total wall-clock.
    pub elapsed: Duration,
    /// Median per-request latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency in microseconds.
    pub p99_us: f64,
}

impl PathTiming {
    /// Requests per second.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Mean seconds per request.
    pub fn seconds_per_request(&self) -> f64 {
        self.elapsed.as_secs_f64() / self.requests.max(1) as f64
    }
}

/// The full comparison report.
#[derive(Clone, Debug)]
pub struct RankComparison {
    /// Configuration measured.
    pub config: RankBenchConfig,
    /// Result-set size of the benchmark request (sanity anchor).
    pub result_size: usize,
    /// Oracle full scans.
    pub naive_scan: PathTiming,
    /// The frozen pre-PR RTA.
    pub legacy_rta: PathTiming,
    /// The rebuilt kernel path (steady-state scratch reuse).
    pub flat_rta: PathTiming,
    /// Engine single-request throughput at 1 worker.
    pub engine_workers_1: PathTiming,
    /// Engine single-request throughput at `config.workers` workers with
    /// the adaptive shard limit (never oversubscribes physical cores).
    pub engine_workers_n: PathTiming,
    /// Same, with sharding forced to `config.workers` shards — exercises
    /// the parallel-RTA path even when the adaptive limit would stay
    /// sequential (e.g. single-core CI), exposing oversubscription cost.
    pub engine_workers_n_forced: PathTiming,
    /// CPU cores visible to the process (scaling context).
    pub cores: usize,
}

impl RankComparison {
    /// flat / legacy single-request speedup.
    pub fn speedup_flat_vs_legacy(&self) -> f64 {
        self.flat_rta.rps() / self.legacy_rta.rps().max(1e-12)
    }

    /// multi-worker / single-worker engine scaling for one request.
    pub fn engine_scaling(&self) -> f64 {
        self.engine_workers_n.rps() / self.engine_workers_1.rps().max(1e-12)
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        let path = |t: &PathTiming| {
            format!(
                concat!(
                    "{{\"requests\": {}, \"seconds_per_request\": {:.9}, \"rps\": {:.1}, ",
                    "\"p50_us\": {:.3}, \"p99_us\": {:.3}}}"
                ),
                t.requests,
                t.seconds_per_request(),
                t.rps(),
                t.p50_us,
                t.p99_us,
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"rank_kernels_single_bichromatic\",\n",
                "  \"config\": {{\"n\": {}, \"dim\": {}, \"num_weights\": {}, \"k\": {}, ",
                "\"repeats\": {}, \"workers\": {}, \"seed\": {}}},\n",
                "  \"cores\": {},\n",
                "  \"result_size\": {},\n",
                "  \"naive_scan\": {},\n",
                "  \"legacy_rta\": {},\n",
                "  \"flat_rta\": {},\n",
                "  \"engine_workers_1\": {},\n",
                "  \"engine_workers_n\": {{\"workers\": {}, \"timing\": {}}},\n",
                "  \"engine_workers_n_forced_shards\": {{\"workers\": {}, \"timing\": {}}},\n",
                "  \"speedup_flat_vs_legacy\": {:.2},\n",
                "  \"engine_scaling_nv1\": {:.2},\n",
                "  \"results_bit_identical_to_naive\": true\n",
                "}}"
            ),
            self.config.n,
            self.config.dim,
            self.config.num_weights,
            self.config.k,
            self.config.repeats,
            self.config.workers,
            self.config.seed,
            self.cores,
            self.result_size,
            path(&self.naive_scan),
            path(&self.legacy_rta),
            path(&self.flat_rta),
            path(&self.engine_workers_1),
            self.config.workers,
            path(&self.engine_workers_n),
            self.config.workers,
            path(&self.engine_workers_n_forced),
            self.speedup_flat_vs_legacy(),
            self.engine_scaling(),
        )
    }
}

/// A deterministic fan of `m` customer weights on the simplex, spread
/// enough that the request mixes buffer prunes with index probes.
pub fn population(dim: usize, m: usize) -> Vec<Weight> {
    (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            let raw: Vec<f64> = (0..dim)
                .map(|d| 0.1 + 0.9 * ((t * 9.7 + d as f64 * 2.3).sin() * 0.5 + 0.5))
                .collect();
            Weight::normalized(raw)
        })
        .collect()
}

/// The benchmark query point: coordinates scaled so `q` sits near the
/// top-k boundary — some weights admit it, most need real pruning or
/// verification work (the regime the why-not pipeline lives in). For
/// uniform data the score threshold of rank `r` scales as
/// `(r/n)^(1/d)`; the 0.5 factor lands `q` just outside the average
/// weight's top-k with a solid member minority.
pub fn query_point(dim: usize, n: usize, k: usize) -> Vec<f64> {
    let c = 0.5 * (k.max(1) as f64 / n.max(1) as f64).powf(1.0 / dim as f64);
    vec![c; dim]
}

fn time_requests(repeats: usize, mut f: impl FnMut(usize)) -> PathTiming {
    let latency = Histogram::new();
    let start = Instant::now();
    for i in 0..repeats {
        let began = Instant::now();
        f(i);
        latency.record_duration(began.elapsed());
    }
    let snap = latency.snapshot();
    PathTiming {
        requests: repeats,
        elapsed: start.elapsed(),
        p50_us: snap.quantile_micros(0.50),
        p99_us: snap.quantile_micros(0.99),
    }
}

/// Serves `repeats` single-request submissions through an engine with
/// `workers` threads, jittering `q` per repeat so the result cache never
/// answers. Panics if any response errors or disagrees with `expected`
/// on the un-jittered repeat.
fn run_engine(
    cfg: &RankBenchConfig,
    coords: &[f64],
    weights: &[Weight],
    workers: usize,
    force_shards: bool,
    expected: &[usize],
) -> PathTiming {
    let mut builder = Engine::builder().workers(workers).cache_capacity(16);
    if force_shards {
        builder = builder.shard_limit(workers);
    }
    let engine = builder.build();
    engine
        .register_dataset("bench", cfg.dim, coords.to_vec())
        .expect("register dataset");
    engine
        .register_weights("population", weights.to_vec())
        .expect("register population");
    engine.catalog().handle("bench").expect("warm index");
    let base_q = query_point(cfg.dim, cfg.n, cfg.k);

    // Warm-up + correctness: the un-jittered request must reproduce the
    // library result exactly.
    let warm = engine.submit(Request::ReverseTopKBi {
        dataset: "bench".into(),
        weights: WeightSet::Named("population".into()),
        q: base_q.clone(),
        k: cfg.k,
    });
    assert_eq!(
        warm,
        Response::ReverseTopKBi(expected.to_vec()),
        "engine single request must match the library paths"
    );

    time_requests(cfg.repeats, |i| {
        let mut q = base_q.clone();
        // Sub-nanometre jitter: distinct cache fingerprints, identical
        // work (coordinates shift by ≤ repeats × 1e-12).
        q[0] += (i + 1) as f64 * 1e-12;
        let response = engine.submit(Request::ReverseTopKBi {
            dataset: "bench".into(),
            weights: WeightSet::Named("population".into()),
            q,
            k: cfg.k,
        });
        assert!(
            matches!(response, Response::ReverseTopKBi(_)),
            "bench request must serve cleanly"
        );
    })
}

/// Runs the full comparison.
pub fn compare(cfg: &RankBenchConfig) -> RankComparison {
    let ds = independent(cfg.n, cfg.dim, cfg.seed);
    let tree = RTree::bulk_load(cfg.dim, &ds.coords);
    let weights = population(cfg.dim, cfg.num_weights);
    let q = query_point(cfg.dim, cfg.n, cfg.k);
    let points: Vec<Point> = ds
        .coords
        .chunks_exact(cfg.dim)
        .map(|p| Point::new(p.to_vec()))
        .collect();

    // Correctness first: all paths must agree bit-for-bit.
    let oracle = bichromatic_reverse_topk_naive(&points, &weights, &q, cfg.k);
    let legacy = bichromatic_reverse_topk_rta_legacy(&tree, &weights, &q, cfg.k);
    assert_eq!(oracle, legacy, "legacy RTA diverged from the naive scan");
    let order = rta_sorted_order(&weights);
    let mut scratch = RtaScratch::new();
    let (mut flat, _) = rta_over_order(&tree, &weights, &order, &q, cfg.k, &mut scratch);
    flat.sort_unstable();
    assert_eq!(oracle, flat, "flat RTA diverged from the naive scan");

    // Naive gets fewer repeats — it is orders of magnitude slower and
    // only anchors the chart.
    let naive_repeats = cfg.repeats.clamp(1, 3);
    let naive_scan = time_requests(naive_repeats, |_| {
        std::hint::black_box(bichromatic_reverse_topk_naive(&points, &weights, &q, cfg.k));
    });
    let legacy_rta = time_requests(cfg.repeats, |_| {
        std::hint::black_box(bichromatic_reverse_topk_rta_legacy(
            &tree, &weights, &q, cfg.k,
        ));
    });
    let flat_rta = time_requests(cfg.repeats, |_| {
        // Steady-state serving shape: similarity order per request, the
        // worker's scratch reused across requests.
        let order = rta_sorted_order(&weights);
        let (mut members, _) = rta_over_order(&tree, &weights, &order, &q, cfg.k, &mut scratch);
        members.sort_unstable();
        std::hint::black_box(members);
    });

    let engine_workers_1 = run_engine(cfg, &ds.coords, &weights, 1, false, &oracle);
    let engine_workers_n = run_engine(cfg, &ds.coords, &weights, cfg.workers, false, &oracle);
    let engine_workers_n_forced = run_engine(cfg, &ds.coords, &weights, cfg.workers, true, &oracle);

    RankComparison {
        config: *cfg,
        result_size: oracle.len(),
        naive_scan,
        legacy_rta,
        flat_rta,
        engine_workers_1,
        engine_workers_n,
        engine_workers_n_forced,
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RankBenchConfig {
        RankBenchConfig {
            n: 2_000,
            dim: 3,
            num_weights: 150,
            k: 5,
            repeats: 2,
            workers: 2,
            seed: 7,
        }
    }

    #[test]
    fn comparison_runs_and_report_is_json_shaped() {
        let c = compare(&tiny());
        assert_eq!(c.naive_scan.requests, 2);
        assert_eq!(c.legacy_rta.requests, 2);
        assert!(c.flat_rta.rps() > 0.0);
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"speedup_flat_vs_legacy\""));
        assert!(json.contains("\"engine_workers_1\""));
        assert!(json.contains("\"engine_workers_n\": {\"workers\": 2,"));
        assert!(json.contains("\"engine_workers_n_forced_shards\""));
        assert!(json.contains("\"results_bit_identical_to_naive\": true"));
        assert!(json.contains("\"p50_us\""));
        assert!(json.contains("\"p99_us\""));
        assert!(c.flat_rta.p99_us >= c.flat_rta.p50_us);
        assert!(c.flat_rta.p50_us > 0.0);
    }

    #[test]
    fn benchmark_query_sits_near_the_boundary() {
        // The workload must mix members and non-members — an all-or-
        // nothing result would make the RTA comparison degenerate.
        let cfg = tiny();
        let c = compare(&cfg);
        assert!(c.result_size > 0, "no weight admits q: too deep");
        assert!(
            c.result_size < cfg.num_weights,
            "every weight admits q: too shallow"
        );
    }
}
