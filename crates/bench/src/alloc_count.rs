//! A counting wrapper around the system allocator.
//!
//! The bench binaries register [`CountingAllocator`] as the global
//! allocator so reports can include **allocations per request** — the
//! number this workspace's arena/zero-copy work drives down. Counting
//! is process-wide (in a loopback bench the load generator and the
//! server share the process, so both sides are included) and costs one
//! relaxed atomic increment per allocation.
//!
//! When the binary does not register the allocator (unit tests, other
//! hosts), [`allocations`] stays at zero and reports render the ratio
//! as zero rather than lying with a partial count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations observed since process start (zero unless a binary
/// registered [`CountingAllocator`]).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The system allocator plus an allocation counter; see the module
/// docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`, adding only a relaxed
// counter bump on the allocating paths.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: `unsafe fn` per the `GlobalAlloc` contract — the caller
    // guarantees `layout` has non-zero size; we add no requirements.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's contract unchanged to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `alloc`; the caller guarantees `layout`
    // has non-zero size.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's contract unchanged to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: `unsafe fn` per the `GlobalAlloc` contract — the caller
    // guarantees `ptr` came from this allocator with `layout`, and that
    // `new_size` is non-zero; we add no requirements.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's contract unchanged to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: `unsafe fn` per the `GlobalAlloc` contract — the caller
    // guarantees `ptr` came from this allocator with `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwards the caller's contract unchanged to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}
