//! Wire-serving throughput: the TCP front door vs in-process submission.
//!
//! A [`wqrtq_server::Server`] is started on a loopback ephemeral port
//! and driven by a load generator sweeping **connections ×
//! pipeline-depth**: each connection keeps up to `depth` requests in
//! flight (sliding window over `send`/`recv`), so the sweep separates
//! the cost of the wire (codec + TCP + session threads) from the win of
//! pipelining and multi-connection concurrency. The baseline serves an
//! identically distributed stream through `Engine::submit` in-process.
//!
//! Every sweep point uses a distinct request stream (unique weights per
//! point), so the engine's result cache cannot leak throughput between
//! points; and the first point's responses are replayed on a fresh
//! engine to verify the wire answers match in-process execution.
//!
//! The binary `server_bench` runs the comparison and emits a JSON
//! report (`scripts/bench.sh` writes it to `BENCH_server.json`).

use crate::engine_bench::{throughput_json, Throughput};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Instant;
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{
    Engine, Histogram, HistogramSnapshot, Request, Response, ServerCounters, Stage, WeightSet,
};
use wqrtq_geom::Weight;
use wqrtq_server::{Client, Server, ServerFrame};

/// Workload shape for the wire comparison.
#[derive(Clone, Copy, Debug)]
pub struct ServerBenchConfig {
    /// Dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Engine worker threads (both sides).
    pub workers: usize,
    /// Maximum concurrent connections in the sweep.
    pub connections: usize,
    /// Maximum pipeline depth (in-flight frames per connection).
    pub depth: usize,
    /// Requests each connection sends per sweep point.
    pub requests_per_conn: usize,
    /// Dataset / workload seed.
    pub seed: u64,
}

impl Default for ServerBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            dim: 3,
            workers: std::thread::available_parallelism().map_or(4, |p| p.get()),
            connections: 64,
            depth: 16,
            requests_per_conn: 500,
            seed: 2015,
        }
    }
}

/// One sweep point's measurement.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Concurrent connections.
    pub connections: usize,
    /// Pipeline window per connection.
    pub depth: usize,
    /// Requests served and wall-clock.
    pub throughput: Throughput,
    /// Busy rejections retried by the load generator.
    pub busy_retries: u64,
    /// Frames the server decoded per `read(2)` during this point (its
    /// pipelining amortisation; 0 when counters were unavailable).
    pub frames_per_read: f64,
    /// Reply frames the server flushed per `write(2)`/`writev(2)`
    /// during this point (its coalescing amortisation).
    pub frames_per_write: f64,
    /// Process-wide heap allocations per request during this point —
    /// generator and server combined (loopback bench); zero unless the
    /// binary registered [`crate::alloc_count::CountingAllocator`].
    pub allocs_per_request: f64,
}

/// The wire vs in-process report.
#[derive(Clone, Debug)]
pub struct ServerComparison {
    /// Configuration measured.
    pub config: ServerBenchConfig,
    /// Sequential `Engine::submit` on an identically loaded engine.
    pub in_process: Throughput,
    /// Wire throughput per (connections, depth) point.
    pub sweep: Vec<SweepPoint>,
    /// Whether the wire responses of the first sweep point matched an
    /// in-process replay bit for bit.
    pub wire_matches_inprocess: bool,
    /// Worker-side admission/validation time, accumulated over the
    /// whole sweep (the Admission stage histogram).
    pub admission: HistogramSnapshot,
    /// Time requests spent queued before a worker picked them up,
    /// accumulated over the whole sweep (the server engine's QueueWait
    /// stage histogram).
    pub queue_wait: HistogramSnapshot,
    /// Time workers spent executing, same scope (the Execute stage).
    pub execute: HistogramSnapshot,
    /// Reply-encode time on the completion path, same scope (the
    /// Serialize stage histogram the serving layer records).
    pub serialize: HistogramSnapshot,
    /// The server's wire counters at the end of the sweep — the
    /// syscall-amortisation numerators and denominators.
    pub counters: ServerCounters,
    /// The server's full observability snapshot at the end of the sweep
    /// (what a wire `Request::Stats` would have returned), rendered as
    /// JSON for `server_bench --stats-out`.
    pub stats_json: String,
}

impl ServerComparison {
    /// The fastest sweep point.
    pub fn best_wire(&self) -> &SweepPoint {
        self.sweep
            .iter()
            .max_by(|a, b| {
                a.throughput
                    .rps()
                    .partial_cmp(&b.throughput.rps())
                    .expect("rps is finite")
            })
            .expect("non-empty sweep")
    }

    /// Best wire throughput relative to in-process submission.
    pub fn wire_vs_inprocess(&self) -> f64 {
        self.best_wire().throughput.rps() / self.in_process.rps().max(1e-12)
    }

    /// Throughput gained by pipelining at the maximum connection count
    /// (depth `config.depth` vs depth 1).
    pub fn pipeline_scaling(&self) -> f64 {
        let at = |depth: usize| {
            self.sweep
                .iter()
                .find(|p| p.connections == self.config.connections && p.depth == depth)
                .map(|p| p.throughput.rps())
        };
        match (at(1), at(self.config.depth)) {
            (Some(serial), Some(pipelined)) => pipelined / serial.max(1e-12),
            _ => 1.0,
        }
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        let mut sweep = String::new();
        for (i, p) in self.sweep.iter().enumerate() {
            if i > 0 {
                sweep.push_str(",\n");
            }
            sweep.push_str(&format!(
                "    {{\"connections\": {}, \"depth\": {}, \"requests\": {}, \
                 \"seconds\": {:.6}, \"rps\": {:.1}, \"p50_us\": {:.3}, \
                 \"p99_us\": {:.3}, \"busy_retries\": {}, \
                 \"frames_per_read\": {:.3}, \"frames_per_write\": {:.3}, \
                 \"allocs_per_request\": {:.1}}}",
                p.connections,
                p.depth,
                p.throughput.requests,
                p.throughput.elapsed.as_secs_f64(),
                p.throughput.rps(),
                p.throughput.p50_us,
                p.throughput.p99_us,
                p.busy_retries,
                p.frames_per_read,
                p.frames_per_write,
                p.allocs_per_request,
            ));
        }
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"server_wire_vs_inprocess\",\n",
                "  \"config\": {{\"n\": {}, \"dim\": {}, \"workers\": {}, \"connections\": {}, ",
                "\"depth\": {}, \"requests_per_conn\": {}, \"seed\": {}}},\n",
                "  \"in_process\": {},\n",
                "  \"sweep\": [\n{}\n  ],\n",
                "  \"best_wire_rps\": {:.1},\n",
                "  \"wire_vs_inprocess\": {:.4},\n",
                "  \"pipeline_scaling\": {:.4},\n",
                "  \"stage_decomposition\": {{\"admission\": {}, \"queue_wait\": {}, ",
                "\"execute\": {}, \"serialize\": {}}},\n",
                "  \"syscall_amortization\": {{\"frames_in\": {}, \"read_syscalls\": {}, ",
                "\"frames_per_read\": {:.3}, \"frames_out\": {}, \"write_syscalls\": {}, ",
                "\"frames_per_write\": {:.3}}},\n",
                "  \"wire_matches_inprocess\": {}\n",
                "}}"
            ),
            self.config.n,
            self.config.dim,
            self.config.workers,
            self.config.connections,
            self.config.depth,
            self.config.requests_per_conn,
            self.config.seed,
            throughput_json(&self.in_process),
            sweep,
            self.best_wire().throughput.rps(),
            self.wire_vs_inprocess(),
            self.pipeline_scaling(),
            self.admission.to_json(),
            self.queue_wait.to_json(),
            self.execute.to_json(),
            self.serialize.to_json(),
            self.counters.frames_in,
            self.counters.read_syscalls,
            ratio(self.counters.frames_in, self.counters.read_syscalls),
            self.counters.frames_out,
            self.counters.write_syscalls,
            ratio(self.counters.frames_out, self.counters.write_syscalls),
            self.wire_matches_inprocess,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The sweep ladder: connections in {1, 4, 16, 64} up to the
/// configured maximum (always including the maximum itself), each at
/// depth 1 and the configured depth.
fn sweep_grid(cfg: &ServerBenchConfig) -> Vec<(usize, usize)> {
    let mut conns: Vec<usize> = [1, 4, 16, 64]
        .into_iter()
        .filter(|c| *c <= cfg.connections)
        .collect();
    if !conns.contains(&cfg.connections) {
        conns.push(cfg.connections);
    }
    conns.sort_unstable();
    let mut points = Vec::new();
    for &connections in &conns {
        for depth in [1, cfg.depth] {
            if !points.contains(&(connections, depth)) {
                points.push((connections, depth));
            }
        }
    }
    points
}

/// Fetches the server's wire counters the way any client would: over
/// the wire. (The extra stats connection adds a frame and a few
/// syscalls to the totals — noise against a sweep point's hundreds.)
fn wire_counters(addr: std::net::SocketAddr) -> ServerCounters {
    let mut client = Client::connect(addr).expect("connect stats probe");
    client
        .stats()
        .expect("stats over the wire")
        .server
        .expect("wire stats carry server counters")
}

fn stream_weight(dim: usize, t: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..dim)
        .map(|j| 0.15 + 0.7 * ((t * 9.1 + j as f64 * 2.3).sin() * 0.5 + 0.5))
        .collect();
    let s: f64 = w.iter().sum();
    for x in &mut w {
        *x /= s;
    }
    w
}

fn population(dim: usize) -> Vec<Vec<f64>> {
    (0..40)
        .map(|i| stream_weight(dim, 1000.0 + i as f64 / 40.0))
        .collect()
}

/// One connection's request stream for one sweep point. `tag` makes
/// every point's weights unique, so the result cache cannot carry
/// throughput from one sweep point into the next.
fn conn_stream(cfg: &ServerBenchConfig, tag: usize, conn: usize) -> Vec<Request> {
    (0..cfg.requests_per_conn)
        .map(|i| {
            let t =
                tag as f64 * 37.0 + conn as f64 * 11.0 + i as f64 / cfg.requests_per_conn as f64;
            let w = stream_weight(cfg.dim, t);
            match i % 16 {
                14 => Request::WhyNotExplain {
                    dataset: "bench".into(),
                    weight: w,
                    q: vec![0.35; cfg.dim],
                    limit: 16,
                },
                15 => Request::ReverseTopKBi {
                    dataset: "bench".into(),
                    weights: WeightSet::Named("population".into()),
                    q: vec![0.2; cfg.dim],
                    k: 10,
                },
                _ => Request::TopK {
                    dataset: "bench".into(),
                    weight: w,
                    k: 10,
                },
            }
        })
        .collect()
}

fn load_engine(cfg: &ServerBenchConfig, engine: &Engine, coords: &[f64]) {
    engine
        .register_dataset("bench", cfg.dim, coords.to_vec())
        .expect("register bench dataset");
    engine
        .register_weights(
            "population",
            population(cfg.dim).into_iter().map(Weight::new).collect(),
        )
        .expect("register population");
    engine.catalog().handle("bench").expect("warm index");
}

/// Drives one connection through its stream with a sliding pipeline
/// window, retrying busy rejections. Returns the responses in stream
/// order plus the retry count.
fn drive_connection(
    addr: std::net::SocketAddr,
    stream: &[Request],
    depth: usize,
    latency: &Histogram,
) -> (Vec<Response>, u64) {
    let mut client = Client::connect(addr).expect("connect load generator");
    let mut outstanding: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut responses: Vec<Option<Response>> = vec![None; stream.len()];
    let mut busy_retries = 0u64;
    let mut next = 0usize;
    let mut done = 0usize;
    while done < stream.len() {
        // Top up the window in bursts — one flush per refill, so the
        // server sees (and batch-submits) runs of pipelined frames
        // instead of one frame per segment. Refilling only once the
        // window has half-drained keeps the bursts real in steady
        // state rather than degenerating to single sends.
        if next < stream.len() && outstanding.len() <= depth / 2 {
            let take = (depth - outstanding.len()).min(stream.len() - next);
            let burst: Vec<&Request> = stream[next..next + take].iter().collect();
            let sent = Instant::now();
            for id in client.send_request_batch(&burst).expect("burst send") {
                outstanding.insert(id, (next, sent));
                next += 1;
            }
        }
        let (id, frame) = client.recv().expect("pipelined recv");
        let (slot, sent) = outstanding.remove(&id).expect("response for in-flight id");
        match frame {
            ServerFrame::Reply(response) => {
                latency.record_duration(sent.elapsed());
                responses[slot] = Some(response);
                done += 1;
            }
            ServerFrame::Busy => {
                // Backpressure: the request was refused, not executed.
                // Re-send it (the admitted window has shrunk by one, so
                // this cannot livelock the generator). The latency clock
                // restarts: the retry is a new request on the wire.
                busy_retries += 1;
                let id = client.send_request(&stream[slot]).expect("busy retry");
                outstanding.insert(id, (slot, Instant::now()));
            }
            other => panic!("unexpected frame under load: {other:?}"),
        }
    }
    (
        responses
            .into_iter()
            .map(|r| r.expect("all served"))
            .collect(),
        busy_retries,
    )
}

/// Runs one sweep point: `connections` generator threads, each with a
/// `depth`-deep window. Returns the measurement and the first
/// connection's responses (for the in-process match check).
fn run_point(
    cfg: &ServerBenchConfig,
    server: &Server,
    tag: usize,
    connections: usize,
    depth: usize,
) -> (SweepPoint, Vec<Response>) {
    let streams: Vec<Vec<Request>> = (0..connections).map(|c| conn_stream(cfg, tag, c)).collect();
    let barrier = Arc::new(Barrier::new(connections + 1));
    let addr = server.local_addr();
    let latency = Arc::new(Histogram::new());
    let handles: Vec<_> = streams
        .iter()
        .map(|stream| {
            let stream = stream.clone();
            let barrier = barrier.clone();
            let latency = latency.clone();
            std::thread::spawn(move || {
                barrier.wait();
                drive_connection(addr, &stream, depth, &latency)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut results: Vec<(Vec<Response>, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("generator thread"))
        .collect();
    let elapsed = start.elapsed();
    let busy_retries = results.iter().map(|(_, b)| *b).sum();
    let first = results.swap_remove(0).0;
    (
        SweepPoint {
            connections,
            depth,
            throughput: Throughput::with_latency(
                connections * cfg.requests_per_conn,
                elapsed,
                &latency.snapshot(),
            ),
            busy_retries,
            frames_per_read: 0.0,
            frames_per_write: 0.0,
            allocs_per_request: 0.0,
        },
        first,
    )
}

/// Runs the full comparison.
pub fn compare(cfg: &ServerBenchConfig) -> ServerComparison {
    let ds = independent(cfg.n, cfg.dim, cfg.seed);

    // In-process baseline: its own engine, a sequential submit loop,
    // serving the *identical* stream the first wire sweep point serves
    // (same tag ⇒ same weights ⇒ same per-request cost — the workload's
    // cost is strongly weight-dependent, so a baseline on a different
    // tag would compare against a different workload entirely).
    let baseline = Engine::builder().workers(cfg.workers).build();
    load_engine(cfg, &baseline, &ds.coords);
    let stream = conn_stream(cfg, 0, 0);
    let baseline_latency = Histogram::new();
    let start = Instant::now();
    for request in &stream {
        let began = Instant::now();
        let response = baseline.submit(request.clone());
        baseline_latency.record_duration(began.elapsed());
        assert!(!response.is_error(), "baseline stream must serve cleanly");
    }
    let in_process =
        Throughput::with_latency(stream.len(), start.elapsed(), &baseline_latency.snapshot());

    // The wire side: one server, one sweep.
    let server = Server::builder()
        .engine(Engine::builder().workers(cfg.workers).build())
        .admission_capacity(cfg.connections * cfg.depth + 32)
        .bind("127.0.0.1:0")
        .expect("bind loopback server");
    load_engine(cfg, server.engine(), &ds.coords);

    // The connection × depth grid: the {1, 4, 16, 64} ladder at serial
    // and full pipeline depth (grid points coincide and collapse when
    // --connections or --depth is small).
    let mut sweep = Vec::new();
    let mut wire_matches_inprocess = true;
    let mut prev = wire_counters(server.local_addr());
    let mut prev_allocs = crate::alloc_count::allocations();
    for (tag, (connections, depth)) in sweep_grid(cfg).into_iter().enumerate() {
        let (mut point, first_responses) = run_point(cfg, &server, tag, connections, depth);
        let counters = wire_counters(server.local_addr());
        let allocs = crate::alloc_count::allocations();
        point.frames_per_read = ratio(
            counters.frames_in - prev.frames_in,
            counters.read_syscalls - prev.read_syscalls,
        );
        point.frames_per_write = ratio(
            counters.frames_out - prev.frames_out,
            counters.write_syscalls - prev.write_syscalls,
        );
        point.allocs_per_request = ratio(allocs - prev_allocs, point.throughput.requests as u64);
        prev = counters;
        prev_allocs = allocs;
        if tag == 0 {
            // Replay the first point's stream on a fresh engine: the
            // wire answers must match in-process execution exactly.
            let oracle = Engine::builder().workers(cfg.workers).build();
            load_engine(cfg, &oracle, &ds.coords);
            let replay = conn_stream(cfg, 0, 0);
            wire_matches_inprocess = replay
                .into_iter()
                .zip(&first_responses)
                .all(|(request, wire)| &oracle.submit(request) == wire);
        }
        sweep.push(point);
    }

    // Capture the server-side view before shutdown: the stage
    // decomposition (admission/queue/execute/serialize) from the
    // engine's histograms, and the full stats snapshot exactly as a
    // wire `Request::Stats` returns it (counters included).
    let mut stats_client = Client::connect(server.local_addr()).expect("connect stats probe");
    let snapshot = stats_client.stats().expect("final stats over the wire");
    let counters = snapshot.server.expect("wire stats carry server counters");
    let stats_json = snapshot.to_json();
    let metrics = server.engine().metrics();
    let admission = metrics.stage_latency(Stage::Admission).clone();
    let queue_wait = metrics.stage_latency(Stage::QueueWait).clone();
    let execute = metrics.stage_latency(Stage::Execute).clone();
    let serialize = metrics.stage_latency(Stage::Serialize).clone();
    server.shutdown();

    ServerComparison {
        config: *cfg,
        in_process,
        sweep,
        wire_matches_inprocess,
        admission,
        queue_wait,
        execute,
        serialize,
        counters,
        stats_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServerBenchConfig {
        ServerBenchConfig {
            n: 2_000,
            dim: 3,
            workers: 2,
            connections: 2,
            depth: 4,
            requests_per_conn: 48,
            seed: 7,
        }
    }

    #[test]
    fn wire_sweep_serves_and_matches_inprocess() {
        let c = compare(&tiny());
        assert_eq!(c.sweep.len(), 4);
        assert!(c.wire_matches_inprocess, "wire diverged from in-process");
        for p in &c.sweep {
            assert_eq!(p.throughput.requests, p.connections * 48);
            assert!(p.throughput.rps() > 0.0);
            assert!(p.throughput.p50_us > 0.0);
            assert!(p.throughput.p99_us >= p.throughput.p50_us);
        }
        // Every request waits in the queue; only cache misses execute.
        let served: u64 = c.sweep.iter().map(|p| p.throughput.requests as u64).sum();
        assert!(c.queue_wait.count >= served);
        assert!(c.execute.count > 0);
        assert!(c.execute.count <= c.queue_wait.count);
        // The serving layer records admission (worker-side validation)
        // and serialize (reply encode) for the same traffic.
        assert!(c.admission.count > 0);
        assert!(c.serialize.count >= served);
        // Syscall amortisation: counters are live and every frame took
        // at least one syscall-visible byte in each direction.
        assert!(c.counters.read_syscalls > 0);
        assert!(c.counters.write_syscalls > 0);
        assert!(c.counters.frames_in >= served);
        for p in &c.sweep {
            assert!(p.frames_per_read > 0.0);
            assert!(p.frames_per_write > 0.0);
        }
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"wire_vs_inprocess\""));
        assert!(json.contains("\"pipeline_scaling\""));
        assert!(json.contains("\"wire_matches_inprocess\": true"));
        assert!(json.contains("\"sweep\""));
        assert!(json.contains("\"p50_us\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"stage_decomposition\""));
        assert!(json.contains("\"admission\""));
        assert!(json.contains("\"queue_wait\""));
        assert!(json.contains("\"execute\""));
        assert!(json.contains("\"serialize\""));
        assert!(json.contains("\"syscall_amortization\""));
        assert!(json.contains("\"frames_per_read\""));
        assert!(json.contains("\"frames_per_write\""));
        assert!(json.contains("\"allocs_per_request\""));
        let stats = &c.stats_json;
        assert!(stats.starts_with('{') && stats.ends_with('}'));
        assert!(stats.contains("\"engine\""));
        assert!(stats.contains("\"server\""));
    }

    #[test]
    fn sweep_points_cover_the_connection_and_depth_corners() {
        let c = compare(&ServerBenchConfig {
            requests_per_conn: 8,
            ..tiny()
        });
        let corners: Vec<(usize, usize)> =
            c.sweep.iter().map(|p| (p.connections, p.depth)).collect();
        assert_eq!(corners, vec![(1, 1), (1, 4), (2, 1), (2, 4)]);
    }
}
