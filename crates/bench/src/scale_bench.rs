//! Scale sweep for the two-tier data plane: the k-dominance pre-filter
//! and the quantized block scan, measured against the exact f64
//! reference plane across dataset cardinality × dimensionality cells.
//!
//! Two serving primitives are timed per `(n, d)` cell, each with the
//! tiers on and off:
//!
//! * **membership** — per-weight top-k membership probes through the
//!   index (the path the engine takes for every large dataset): the
//!   dominance-masked probe against the unmasked one.
//! * **RTA** — the culprit-pool reverse top-k sweep over the whole
//!   population ([`rta_over_order_masked`]), masked against unmasked.
//!
//! A four-way flat-scan ablation rides along (quantized + mask,
//! quantized only, mask only, exact) — the overlay-correction path —
//! so a regression in either tier is attributable to its kernel.
//!
//! Verdicts are asserted bit-identical between every tier combination
//! *before* any timing starts — the report's `two_tier_bit_identical`
//! flag is the AND over all cells, and `scripts/check_bench.sh` gates
//! on it. The sweep also records what the tiers actually did
//! (`prefilter_skips`, `bound_skips`, `quantized_fallbacks`) so a
//! "speedup" that comes from the tiers silently disengaging is visible
//! as zeros.
//!
//! The binary `scale_bench` emits the JSON report `scripts/bench.sh`
//! writes to `BENCH_scale.json`. Defaults sweep
//! `n ∈ {100k, 1M} × d ∈ {3, 5, 8}`; the 10M tier is opt-in via
//! `--ns` because its index build alone takes minutes.

use std::sync::Arc;
use std::time::{Duration, Instant};
use wqrtq_data::synthetic::independent;
use wqrtq_geom::delta::DeltaView;
use wqrtq_geom::flat::FlatPoints;
use wqrtq_query::brtopk::{rta_over_order_masked, rta_sorted_order, RtaScratch};
use wqrtq_query::rank::{is_in_topk_masked, is_in_topk_scratch};
use wqrtq_rtree::{DominanceIndex, ProbeScratch, RTree};

use crate::rank_bench::{population, query_point};

/// Workload shape for the scale sweep.
#[derive(Clone, Debug)]
pub struct ScaleBenchConfig {
    /// Dataset cardinalities to sweep.
    pub ns: Vec<usize>,
    /// Dimensionalities to sweep.
    pub dims: Vec<usize>,
    /// Explicit `(n, dim)` cells; when non-empty this overrides the
    /// `ns × dims` cross product (an asymmetric sweep — e.g. every
    /// dimension at 100 K but only `d = 3` at 1 M — in one report).
    pub cells: Vec<(usize, usize)>,
    /// Customer population size `|W|` (probe weights per pass).
    pub num_weights: usize,
    /// The reverse top-k parameter.
    pub k: usize,
    /// Timed passes per path.
    pub repeats: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for ScaleBenchConfig {
    fn default() -> Self {
        Self {
            ns: vec![100_000, 1_000_000],
            dims: vec![3, 5, 8],
            cells: Vec::new(),
            num_weights: 240,
            k: 10,
            repeats: 5,
            seed: 2015,
        }
    }
}

impl ScaleBenchConfig {
    /// The `(n, dim)` cells this sweep will measure, in run order.
    pub fn cell_list(&self) -> Vec<(usize, usize)> {
        if !self.cells.is_empty() {
            return self.cells.clone();
        }
        let mut out = Vec::with_capacity(self.ns.len() * self.dims.len());
        for &n in &self.ns {
            for &dim in &self.dims {
                out.push((n, dim));
            }
        }
        out
    }
}

/// Wall-clock for a batch of identical operations.
#[derive(Clone, Copy, Debug)]
pub struct TierTiming {
    /// Operations performed (membership checks or RTA requests).
    pub ops: usize,
    /// Total elapsed wall-clock across all ops.
    pub elapsed: Duration,
}

impl TierTiming {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// One `(n, d)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Time to build the dominance mask over the cell's index.
    pub mask_build: Duration,
    /// Index membership probes with the dominance mask.
    pub membership_on: TierTiming,
    /// Index membership probes without the mask.
    pub membership_off: TierTiming,
    /// Flat-scan membership, quantized kernel + mask.
    pub flat_two_tier: TierTiming,
    /// Flat-scan membership, quantized kernel only.
    pub flat_quant_only: TierTiming,
    /// Flat-scan membership, dominance mask over the exact kernel.
    pub flat_mask_only: TierTiming,
    /// Flat-scan membership on the exact reference plane.
    pub flat_exact: TierTiming,
    /// Masked RTA sweep (dominance pre-filter on).
    pub rta_on: TierTiming,
    /// Unmasked RTA sweep.
    pub rta_off: TierTiming,
    /// Points/subtrees the dominance mask skipped, cumulative.
    pub prefilter_skips: u64,
    /// Blocks the quantized bounds pass decided wholesale.
    pub bound_skips: u64,
    /// Blocks scored in the quantized mirror.
    pub quantized_blocks: u64,
    /// Near-threshold blocks rescored in exact f64.
    pub quantized_fallbacks: u64,
    /// Reverse top-k members the RTA sweep found (sanity datum).
    pub members: usize,
    /// Points with fewer than `k` dominators (potential culprits).
    pub frontier_size: usize,
    /// Masked RTA: weights decided by the culprit pool, one request.
    pub rta_buffer_prunes: u64,
    /// Masked RTA: weights needing a tree verification, one request.
    pub rta_tree_verifications: u64,
    /// Whether every tier combination agreed bit-for-bit.
    pub bit_identical: bool,
}

impl ScaleCell {
    /// Membership probe throughput ratio: masked vs unmasked.
    pub fn membership_speedup(&self) -> f64 {
        self.membership_on.ops_per_sec() / self.membership_off.ops_per_sec()
    }

    /// RTA throughput ratio: masked vs unmasked.
    pub fn rta_speedup(&self) -> f64 {
        self.rta_on.ops_per_sec() / self.rta_off.ops_per_sec()
    }
}

/// The full sweep report.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// The configuration the sweep ran with.
    pub config: ScaleBenchConfig,
    /// One entry per `(n, d)` cell, in sweep order.
    pub cells: Vec<ScaleCell>,
}

impl ScaleReport {
    /// The gate cell: the largest-`n` cell at `d = 3` (the acceptance
    /// regime), falling back to the last cell of the sweep.
    pub fn gate_cell(&self) -> &ScaleCell {
        self.cells
            .iter()
            .filter(|c| c.dim == 3)
            .max_by_key(|c| c.n)
            .or_else(|| self.cells.last())
            .expect("sweep produced no cells")
    }

    /// Membership speedup at the gate cell (both tiers vs none).
    pub fn membership_two_tier_speedup(&self) -> f64 {
        self.gate_cell().membership_speedup()
    }

    /// RTA speedup at the gate cell (masked vs unmasked).
    pub fn rta_two_tier_speedup(&self) -> f64 {
        self.gate_cell().rta_speedup()
    }

    /// Whether every cell's tier combinations agreed bit-for-bit.
    pub fn bit_identical(&self) -> bool {
        self.cells.iter().all(|c| c.bit_identical)
    }

    /// Renders the report as the `BENCH_scale.json` document.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                cells.push_str(",\n");
            }
            cells.push_str(&format!(
                concat!(
                    "    {{\"n\": {}, \"dim\": {}, \"mask_build_secs\": {:.6},\n",
                    "     \"membership_probes_per_sec\": {{\"masked\": {:.1}, \"unmasked\": {:.1}}},\n",
                    "     \"flat_scan_checks_per_sec\": {{\"two_tier\": {:.1}, \"quantized_only\": {:.1}, ",
                    "\"mask_only\": {:.1}, \"exact\": {:.1}}},\n",
                    "     \"rta_requests_per_sec\": {{\"masked\": {:.3}, \"unmasked\": {:.3}}},\n",
                    "     \"membership_speedup\": {:.3}, \"rta_speedup\": {:.3},\n",
                    "     \"prefilter_skips\": {}, \"bound_skips\": {}, \"quantized_blocks\": {}, ",
                    "\"quantized_fallbacks\": {},\n",
                    "     \"members\": {}, \"frontier_size\": {}, \"rta_buffer_prunes\": {}, ",
                    "\"rta_tree_verifications\": {}, \"bit_identical\": {}}}"
                ),
                c.n,
                c.dim,
                c.mask_build.as_secs_f64(),
                c.membership_on.ops_per_sec(),
                c.membership_off.ops_per_sec(),
                c.flat_two_tier.ops_per_sec(),
                c.flat_quant_only.ops_per_sec(),
                c.flat_mask_only.ops_per_sec(),
                c.flat_exact.ops_per_sec(),
                c.rta_on.ops_per_sec(),
                c.rta_off.ops_per_sec(),
                c.membership_speedup(),
                c.rta_speedup(),
                c.prefilter_skips,
                c.bound_skips,
                c.quantized_blocks,
                c.quantized_fallbacks,
                c.members,
                c.frontier_size,
                c.rta_buffer_prunes,
                c.rta_tree_verifications,
                c.bit_identical,
            ));
        }
        let gate = self.gate_cell();
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"scale_two_tier\",\n",
                "  \"num_weights\": {}, \"k\": {}, \"repeats\": {}, \"seed\": {},\n",
                "  \"cells\": [\n{}\n  ],\n",
                "  \"gate_cell\": {{\"n\": {}, \"dim\": {}}},\n",
                "  \"membership_two_tier_speedup\": {:.4},\n",
                "  \"rta_two_tier_speedup\": {:.4},\n",
                "  \"two_tier_bit_identical\": {}\n",
                "}}\n"
            ),
            self.config.num_weights,
            self.config.k,
            self.config.repeats,
            self.config.seed,
            cells,
            gate.n,
            gate.dim,
            self.membership_two_tier_speedup(),
            self.rta_two_tier_speedup(),
            self.bit_identical(),
        )
    }

    /// Human-oriented one-liner per cell plus the gate summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&format!(
                "n={:>8} d={} membership {:>10.0}/s vs {:>10.0}/s ({:.2}x)  rta {:>8.2}/s vs {:>8.2}/s ({:.2}x)  skips={} fallbacks={} identical={}\n",
                c.n,
                c.dim,
                c.membership_on.ops_per_sec(),
                c.membership_off.ops_per_sec(),
                c.membership_speedup(),
                c.rta_on.ops_per_sec(),
                c.rta_off.ops_per_sec(),
                c.rta_speedup(),
                c.prefilter_skips,
                c.quantized_fallbacks,
                c.bit_identical,
            ));
        }
        let gate = self.gate_cell();
        out.push_str(&format!(
            "gate (n={}, d={}): membership {:.2}x, rta {:.2}x, bit_identical={}\n",
            gate.n,
            gate.dim,
            self.membership_two_tier_speedup(),
            self.rta_two_tier_speedup(),
            self.bit_identical(),
        ));
        out
    }
}

fn time_passes(repeats: usize, ops_per_pass: usize, mut pass: impl FnMut()) -> TierTiming {
    let start = Instant::now();
    for _ in 0..repeats {
        pass();
    }
    TierTiming {
        ops: repeats * ops_per_pass,
        elapsed: start.elapsed(),
    }
}

fn measure_cell(cfg: &ScaleBenchConfig, n: usize, dim: usize) -> ScaleCell {
    let seed = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((n as u64) << 8 | dim as u64);
    let ds = independent(n, dim, seed);
    let flat_quant = Arc::new(FlatPoints::from_row_major(dim, &ds.coords));
    let flat_exact = Arc::new(FlatPoints::from_row_major_exact(dim, &ds.coords));
    let tree = RTree::bulk_load(dim, &ds.coords);
    let mask_start = Instant::now();
    let dom = DominanceIndex::build(&tree);
    let mask_build = mask_start.elapsed();

    let view_quant = DeltaView::plain(flat_quant.clone());
    let view_exact = DeltaView::plain(flat_exact.clone());
    let weights = population(dim, cfg.num_weights);
    let q = query_point(dim, n, cfg.k);
    let k = cfg.k;
    let counts = dom.counts();

    // Correctness before any clock starts: all four membership tier
    // combinations must produce the same verdict vector, and the masked
    // RTA sweep the same member set as the unmasked one.
    let verdicts = |f: &dyn Fn(&[f64]) -> bool| -> Vec<bool> {
        weights.iter().map(|w| f(w.as_slice())).collect()
    };
    let oracle = verdicts(&|w| view_exact.is_in_topk(w, &q, k));
    let mut bit_identical = true;
    bit_identical &= oracle == verdicts(&|w| view_quant.is_in_topk_masked(w, &q, k, counts));
    bit_identical &= oracle == verdicts(&|w| view_quant.is_in_topk(w, &q, k));
    bit_identical &= oracle == verdicts(&|w| view_exact.is_in_topk_masked(w, &q, k, counts));
    let mut probe_scratch = ProbeScratch::new();
    {
        let probed: Vec<bool> = weights
            .iter()
            .map(|w| is_in_topk_scratch(&tree, w.as_slice(), &q, k, &mut probe_scratch))
            .collect();
        bit_identical &= oracle == probed;
        let probed_masked: Vec<bool> = weights
            .iter()
            .map(|w| is_in_topk_masked(&tree, &dom, w.as_slice(), &q, k, &mut probe_scratch))
            .collect();
        bit_identical &= oracle == probed_masked;
    }
    let expected_members = oracle.iter().filter(|&&b| b).count();

    let order = rta_sorted_order(&weights);
    let mut scratch = RtaScratch::new();
    let (rta_unmasked, _) =
        rta_over_order_masked(&tree, &weights, &order, &q, k, None, &mut scratch);
    let (rta_masked, rta_stats) =
        rta_over_order_masked(&tree, &weights, &order, &q, k, Some(&dom), &mut scratch);
    bit_identical &= rta_masked == rta_unmasked;
    bit_identical &= rta_masked.len() == expected_members;
    let frontier_size = counts.iter().filter(|&&c| (c as usize) < k).count();

    // Timed passes. Each membership pass re-checks every weight and
    // folds the verdicts into a count that must reproduce the oracle —
    // keeps the loop honest under optimization without `black_box` on
    // the hot path.
    let membership_pass = |check: &dyn Fn(&[f64]) -> bool| {
        let hits = weights.iter().filter(|w| check(w.as_slice())).count();
        assert_eq!(hits, expected_members, "membership verdicts drifted");
    };
    let m = weights.len();
    let membership_on = {
        let scratch = &mut probe_scratch;
        let mut pass = || {
            let hits = weights
                .iter()
                .filter(|w| is_in_topk_masked(&tree, &dom, w.as_slice(), &q, k, scratch))
                .count();
            assert_eq!(hits, expected_members, "masked probe verdicts drifted");
        };
        time_passes(cfg.repeats, m, &mut pass)
    };
    let membership_off = {
        let scratch = &mut probe_scratch;
        let mut pass = || {
            let hits = weights
                .iter()
                .filter(|w| is_in_topk_scratch(&tree, w.as_slice(), &q, k, scratch))
                .count();
            assert_eq!(hits, expected_members, "probe verdicts drifted");
        };
        time_passes(cfg.repeats, m, &mut pass)
    };
    let flat_two_tier = time_passes(cfg.repeats, m, || {
        membership_pass(&|w| view_quant.is_in_topk_masked(w, &q, k, counts))
    });
    let flat_quant_only = time_passes(cfg.repeats, m, || {
        membership_pass(&|w| view_quant.is_in_topk(w, &q, k))
    });
    let flat_mask_only = time_passes(cfg.repeats, m, || {
        membership_pass(&|w| view_exact.is_in_topk_masked(w, &q, k, counts))
    });
    let flat_exact = time_passes(cfg.repeats, m, || {
        membership_pass(&|w| view_exact.is_in_topk(w, &q, k))
    });

    let rta_on = time_passes(cfg.repeats, 1, || {
        let (members, _) =
            rta_over_order_masked(&tree, &weights, &order, &q, k, Some(&dom), &mut scratch);
        assert_eq!(members.len(), expected_members, "masked RTA drifted");
    });
    let rta_off = time_passes(cfg.repeats, 1, || {
        let (members, _) =
            rta_over_order_masked(&tree, &weights, &order, &q, k, None, &mut scratch);
        assert_eq!(members.len(), expected_members, "unmasked RTA drifted");
    });

    let totals = flat_quant.tier_totals();
    ScaleCell {
        n,
        dim,
        mask_build,
        membership_on,
        membership_off,
        flat_two_tier,
        flat_quant_only,
        flat_mask_only,
        flat_exact,
        rta_on,
        rta_off,
        prefilter_skips: dom.skips(),
        bound_skips: totals.bound_skips,
        quantized_blocks: totals.quantized_blocks,
        quantized_fallbacks: totals.quantized_fallbacks,
        members: expected_members,
        frontier_size,
        rta_buffer_prunes: rta_stats.buffer_prunes as u64,
        rta_tree_verifications: rta_stats.tree_verifications as u64,
        bit_identical,
    }
}

/// Runs the full sweep. Prints one progress line per cell to stderr as
/// large cells take tens of seconds to build.
pub fn run(cfg: &ScaleBenchConfig) -> ScaleReport {
    let mut cells = Vec::new();
    for (n, dim) in cfg.cell_list() {
        eprintln!("scale_bench: measuring n={n} d={dim} ...");
        cells.push(measure_cell(cfg, n, dim));
    }
    ScaleReport {
        config: cfg.clone(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleBenchConfig {
        ScaleBenchConfig {
            ns: vec![1500, 3000],
            dims: vec![2, 3],
            num_weights: 60,
            k: 5,
            repeats: 2,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_is_bit_identical_and_reports_every_cell() {
        let report = run(&tiny());
        assert_eq!(report.cells.len(), 4);
        assert!(report.bit_identical());
        for cell in &report.cells {
            assert!(cell.members > 0, "degenerate workload: no members");
            assert!(cell.members < cell.dim * 60, "degenerate: all members");
            assert!(cell.membership_on.ops_per_sec() > 0.0);
            assert!(cell.rta_off.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn explicit_cells_override_the_cross_product() {
        let cfg = ScaleBenchConfig {
            cells: vec![(1000, 2), (2000, 3)],
            ..tiny()
        };
        assert_eq!(cfg.cell_list(), vec![(1000, 2), (2000, 3)]);
        let report = run(&ScaleBenchConfig {
            num_weights: 40,
            repeats: 1,
            ..cfg
        });
        assert_eq!(report.cells.len(), 2);
        assert_eq!((report.gate_cell().n, report.gate_cell().dim), (2000, 3));
        assert!(report.bit_identical());
    }

    #[test]
    fn gate_cell_prefers_largest_n_at_dim_3() {
        let report = run(&tiny());
        let gate = report.gate_cell();
        assert_eq!((gate.n, gate.dim), (3000, 3));
        assert!(report.membership_two_tier_speedup() > 0.0);
        assert!(report.rta_two_tier_speedup() > 0.0);
    }

    #[test]
    fn json_report_carries_the_gate_keys() {
        let report = run(&ScaleBenchConfig {
            ns: vec![1000],
            dims: vec![3],
            num_weights: 40,
            k: 4,
            repeats: 1,
            seed: 11,
            ..Default::default()
        });
        let json = report.to_json();
        assert!(json.contains("\"membership_two_tier_speedup\""));
        assert!(json.contains("\"rta_two_tier_speedup\""));
        assert!(json.contains("\"two_tier_bit_identical\": true"));
        assert!(json.contains("\"prefilter_skips\""));
    }
}
