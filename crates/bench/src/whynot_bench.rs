//! Why-not advisor benchmark: one [`Request::WhyNot`] plan against the
//! equivalent hand-rolled sequence of legacy calls.
//!
//! Before the advisor, a caller wanting the paper's actual deliverable —
//! "which refinement is cheapest?" — had to issue one `WhyNotExplain`
//! per why-not vector plus all three `WhyNotRefine` strategies, then
//! compare penalties by hand. The plan request does the same work in a
//! single round trip through the engine (one validation pass, one cache
//! entry, one queue hop) and additionally verifies every answer and
//! breaks every penalty into its terms.
//!
//! Two things are measured on identical workloads (distinct query
//! points per round, so the result cache never flatters either side):
//!
//! * **throughput** — plans per second vs. legacy bundles per second
//!   (`speedup_plan_vs_legacy_calls`); the plan runs with the exact-2D
//!   path pinned off so both sides execute the same algorithms;
//! * **streaming latency** — how much sooner the first progressive
//!   partial (an explanation) lands than the full plan
//!   (`streaming_headstart` = full-plan time / first-partial time).
//!
//! Correctness anchors: the plan's recommendation must equal the
//! minimum of the three legacy penalties bit for bit, and every plan
//! step must carry `verified = true`. The binary `whynot_bench` emits
//! the JSON report `scripts/bench.sh` writes to `BENCH_whynot.json`.

use std::time::{Duration, Instant};
use wqrtq_core::advisor::WhyNotOptions;
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{Engine, Histogram, PlanDelta, RefineStrategy, Request, Response};
use wqrtq_geom::Weight;
use wqrtq_query::rank::rank_of_point_scan;

/// Workload shape for the advisor comparison.
#[derive(Clone, Copy, Debug)]
pub struct WhyNotBenchConfig {
    /// Dataset cardinality.
    pub n: usize,
    /// Why-not cases measured (each a distinct query point).
    pub rounds: usize,
    /// Why-not vectors per case.
    pub why_not: usize,
    /// The reverse top-k parameter.
    pub k: usize,
    /// Weight samples `|S|` for the sampled MWK/MQWK paths.
    pub sample_size: usize,
    /// Query-point samples `|Q|` for MQWK.
    pub query_samples: usize,
    /// Worker threads.
    pub workers: usize,
    /// Dataset and workload seed.
    pub seed: u64,
}

impl Default for WhyNotBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            rounds: 24,
            why_not: 2,
            k: 10,
            sample_size: 200,
            query_samples: 100,
            workers: 4,
            seed: 2015,
        }
    }
}

/// One side's timed run.
#[derive(Clone, Copy, Debug)]
pub struct WhyNotTiming {
    /// Cases served.
    pub rounds: usize,
    /// Requests issued (1 per case for plans; `why_not + 3` for legacy).
    pub requests: usize,
    /// Total wall-clock.
    pub elapsed: Duration,
    /// Median per-case latency in microseconds (a legacy case is the
    /// whole explain + three-refines bundle).
    pub p50_us: f64,
    /// 99th-percentile per-case latency in microseconds.
    pub p99_us: f64,
}

impl WhyNotTiming {
    /// Cases per second.
    pub fn cases_per_sec(&self) -> f64 {
        self.rounds as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The full comparison report.
#[derive(Clone, Debug)]
pub struct WhyNotComparison {
    /// Configuration measured.
    pub config: WhyNotBenchConfig,
    /// One-request plan timing.
    pub plan: WhyNotTiming,
    /// Explain-per-vector + three-refines timing.
    pub legacy: WhyNotTiming,
    /// Full-plan time / first-partial time on an uncached streamed case.
    pub streaming_headstart: f64,
    /// Every plan recommendation equalled the legacy minimum bit for bit.
    pub recommendation_matches_legacy_minimum: bool,
    /// Every plan step carried `verified = true`.
    pub plan_steps_verified: bool,
}

impl WhyNotComparison {
    /// plan cases/s over legacy cases/s.
    pub fn speedup(&self) -> f64 {
        self.plan.cases_per_sec() / self.legacy.cases_per_sec().max(1e-12)
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        let timing = |t: &WhyNotTiming| {
            format!(
                concat!(
                    "{{\"rounds\": {}, \"requests\": {}, \"seconds\": {:.6}, ",
                    "\"cases_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}"
                ),
                t.rounds,
                t.requests,
                t.elapsed.as_secs_f64(),
                t.cases_per_sec(),
                t.p50_us,
                t.p99_us,
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"whynot_plan_vs_legacy_calls\",\n",
                "  \"config\": {{\"n\": {}, \"rounds\": {}, \"why_not\": {}, \"k\": {}, ",
                "\"sample_size\": {}, \"query_samples\": {}, \"workers\": {}, \"seed\": {}}},\n",
                "  \"plan\": {},\n",
                "  \"legacy_calls\": {},\n",
                "  \"speedup_plan_vs_legacy_calls\": {:.3},\n",
                "  \"streaming_headstart\": {:.2},\n",
                "  \"plan_matches_legacy_minimum\": {},\n",
                "  \"plan_steps_verified\": {}\n",
                "}}"
            ),
            self.config.n,
            self.config.rounds,
            self.config.why_not,
            self.config.k,
            self.config.sample_size,
            self.config.query_samples,
            self.config.workers,
            self.config.seed,
            timing(&self.plan),
            timing(&self.legacy),
            self.speedup(),
            self.streaming_headstart,
            self.recommendation_matches_legacy_minimum,
            self.plan_steps_verified,
        )
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One why-not case: a query point and vectors under which it genuinely
/// ranks below `k` (checked against the dataset during setup, outside
/// every timed region).
struct Case {
    q: Vec<f64>,
    why_not: Vec<Vec<f64>>,
}

/// Generates `rounds + extras` valid why-not cases over `coords`.
fn cases(cfg: &WhyNotBenchConfig, coords: &[f64], extras: usize) -> Vec<Case> {
    let mut state = cfg.seed ^ 0x5151_a0a0_c3c3_7e7e;
    let mut out = Vec::with_capacity(cfg.rounds + extras);
    let mut attempts = 0usize;
    while out.len() < cfg.rounds + extras {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "could not find enough why-not cases — workload too easy?"
        );
        // A mid-field query point: competitive enough to be plausible,
        // weak enough that skewed weights rank it below k.
        let q: Vec<f64> = (0..2).map(|_| 0.25 + 0.35 * unit(&mut state)).collect();
        let mut why_not = Vec::with_capacity(cfg.why_not);
        for _ in 0..cfg.why_not * 8 {
            if why_not.len() == cfg.why_not {
                break;
            }
            // Skewed weights are the ones that exclude mid-field points.
            let x = if unit(&mut state) < 0.5 {
                0.02 + 0.1 * unit(&mut state)
            } else {
                0.88 + 0.1 * unit(&mut state)
            };
            let w = Weight::from_first_2d(x);
            if rank_of_point_scan(coords, &w, &q) > cfg.k {
                why_not.push(vec![w[0], w[1]]);
            }
        }
        if why_not.len() == cfg.why_not {
            out.push(Case { q, why_not });
        }
    }
    out
}

fn plan_options(cfg: &WhyNotBenchConfig) -> WhyNotOptions {
    WhyNotOptions {
        sample_size: cfg.sample_size,
        query_samples: cfg.query_samples,
        seed: cfg.seed,
        // Pinned off so the plan and the legacy calls run the *same*
        // algorithms — the speedup measures the surface, not a better
        // algorithm sneaking in.
        exact_2d: false,
        ..WhyNotOptions::default()
    }
}

fn plan_request(cfg: &WhyNotBenchConfig, case: &Case) -> Request {
    Request::WhyNot {
        dataset: "bench".into(),
        q: case.q.clone(),
        k: cfg.k,
        why_not: case.why_not.clone(),
        options: plan_options(cfg),
    }
}

/// Runs the full comparison.
pub fn compare(cfg: &WhyNotBenchConfig) -> WhyNotComparison {
    let ds = independent(cfg.n, 2, cfg.seed);
    let all_cases = cases(cfg, &ds.coords, 1);
    let (timed_cases, streamed_case) = all_cases.split_at(cfg.rounds);

    let engine = Engine::builder().workers(cfg.workers).build();
    engine
        .register_dataset("bench", 2, ds.coords.clone())
        .expect("register");
    engine.catalog().handle("bench").expect("warm index");

    // Legacy side: one explain per vector + all three strategies, the
    // pre-advisor recipe for "which refinement is cheapest?".
    let mut legacy_minima: Vec<f64> = Vec::with_capacity(cfg.rounds);
    let mut legacy_requests = 0usize;
    let legacy_latency = Histogram::new();
    let legacy_start = Instant::now();
    for case in timed_cases {
        let case_began = Instant::now();
        for w in &case.why_not {
            let r = engine.submit(Request::WhyNotExplain {
                dataset: "bench".into(),
                weight: w.clone(),
                q: case.q.clone(),
                limit: 16,
            });
            assert!(!r.is_error(), "legacy explain failed: {r:?}");
            legacy_requests += 1;
        }
        let mut min = f64::INFINITY;
        for strategy in [
            RefineStrategy::Mqp,
            RefineStrategy::Mwk {
                sample_size: cfg.sample_size,
                seed: cfg.seed,
            },
            RefineStrategy::Mqwk {
                sample_size: cfg.sample_size,
                query_samples: cfg.query_samples,
                seed: cfg.seed,
            },
        ] {
            let r = engine.submit(Request::WhyNotRefine {
                dataset: "bench".into(),
                q: case.q.clone(),
                k: cfg.k,
                why_not: case.why_not.clone(),
                strategy,
            });
            legacy_requests += 1;
            match r {
                Response::Refinement(refinement) => min = min.min(refinement.penalty),
                other => panic!("legacy refine failed: {other:?}"),
            }
        }
        legacy_minima.push(min);
        legacy_latency.record_duration(case_began.elapsed());
    }
    let legacy_snap = legacy_latency.snapshot();
    let legacy = WhyNotTiming {
        rounds: cfg.rounds,
        requests: legacy_requests,
        elapsed: legacy_start.elapsed(),
        p50_us: legacy_snap.quantile_micros(0.50),
        p99_us: legacy_snap.quantile_micros(0.99),
    };

    // Plan side: the same cases, one request each.
    let mut matches = true;
    let mut verified = true;
    let plan_latency = Histogram::new();
    let plan_start = Instant::now();
    for (case, legacy_min) in timed_cases.iter().zip(&legacy_minima) {
        let case_began = Instant::now();
        match engine.submit(plan_request(cfg, case)) {
            Response::Plan(plan) => {
                matches &= plan.recommended().refinement.penalty.to_bits() == legacy_min.to_bits();
                verified &= plan.steps.iter().all(|s| s.verified);
            }
            other => panic!("plan request failed: {other:?}"),
        }
        plan_latency.record_duration(case_began.elapsed());
    }
    let plan_snap = plan_latency.snapshot();
    let plan = WhyNotTiming {
        rounds: cfg.rounds,
        requests: cfg.rounds,
        elapsed: plan_start.elapsed(),
        p50_us: plan_snap.quantile_micros(0.50),
        p99_us: plan_snap.quantile_micros(0.99),
    };

    // Streaming latency: on a fresh (uncached) case, how much sooner
    // does the first partial land than the full plan?
    let (tx, rx) = std::sync::mpsc::channel();
    let first_tx = tx.clone();
    let streamed_start = Instant::now();
    engine.submit_with_progress(
        plan_request(cfg, &streamed_case[0]),
        move |delta| {
            if matches!(delta, PlanDelta::Explained { index: 0, .. }) {
                let _ = first_tx.send(None);
            }
        },
        move |response| tx.send(Some(response)).unwrap(),
    );
    let mut first_partial = None;
    let mut full_plan = None;
    for event in rx.iter() {
        match event {
            None => first_partial.get_or_insert(streamed_start.elapsed()),
            Some(response) => {
                assert!(matches!(response, Response::Plan(_)));
                full_plan.get_or_insert(streamed_start.elapsed())
            }
        };
        if full_plan.is_some() {
            break;
        }
    }
    let first = first_partial.expect("first partial observed").as_secs_f64();
    let full = full_plan.expect("plan completed").as_secs_f64();
    let streaming_headstart = full / first.max(1e-9);

    WhyNotComparison {
        config: *cfg,
        plan,
        legacy,
        streaming_headstart,
        recommendation_matches_legacy_minimum: matches,
        plan_steps_verified: verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WhyNotBenchConfig {
        WhyNotBenchConfig {
            n: 1_500,
            rounds: 4,
            why_not: 2,
            k: 5,
            sample_size: 48,
            query_samples: 16,
            workers: 2,
            seed: 7,
        }
    }

    #[test]
    fn comparison_runs_and_report_is_json_shaped() {
        let c = compare(&tiny());
        assert_eq!(c.plan.rounds, 4);
        assert_eq!(c.plan.requests, 4);
        assert_eq!(c.legacy.requests, 4 * (2 + 3));
        assert!(
            c.recommendation_matches_legacy_minimum,
            "plan must recommend the legacy minimum"
        );
        assert!(c.plan_steps_verified, "every step must verify");
        assert!(c.streaming_headstart >= 1.0);
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"speedup_plan_vs_legacy_calls\""));
        assert!(json.contains("\"plan_matches_legacy_minimum\": true"));
        assert!(json.contains("\"plan_steps_verified\": true"));
        assert!(json.contains("\"p50_us\""));
        assert!(json.contains("\"p99_us\""));
        assert!(c.plan.p99_us >= c.plan.p50_us);
        assert!(c.plan.p50_us > 0.0);
    }
}
