//! Mutation-throughput benchmark: the delta-overlay engine against the
//! rebuild-per-mutation baseline, on an append-heavy interleaved
//! workload.
//!
//! The workload alternates appends (a few rows each, some deletes mixed
//! in) with queries (`TopK` and why-not explanations) against one `n`-
//! point dataset — the live-traffic shape the overlay exists for. Two
//! engines serve the identical operation sequence:
//!
//! * **overlay** — appends/deletes flow through [`Request::Append`] /
//!   [`Request::Delete`] into the delta memtable (`O(Δ)` each); queries
//!   fold the overlay corrections into the still-valid base index, and
//!   compaction (left on its adaptive policy) re-bulk-loads off the
//!   request path only when the overlay outgrows `base/4`;
//! * **rebuild** — the pre-overlay behaviour, reproduced faithfully:
//!   every mutation re-registers the grown coordinate buffer, so the
//!   next query pays a full `bulk_load` of all `n` points.
//!
//! Both engines must agree on the final top-k scores (ids differ by
//! design — the overlay keeps stable ids), which anchors the speedup
//! claim to equivalent answers. The binary `mutation_bench` emits the
//! JSON report `scripts/bench.sh` writes to `BENCH_mutation.json`.

use std::time::{Duration, Instant};
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{Engine, Histogram, Request, Response};

/// Workload shape for the mutation comparison.
#[derive(Clone, Copy, Debug)]
pub struct MutationBenchConfig {
    /// Initial dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Interleaved operations (half mutations, half queries).
    pub ops: usize,
    /// Rows per append.
    pub append_rows: usize,
    /// The top-k parameter of the query side.
    pub k: usize,
    /// Worker threads per engine.
    pub workers: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for MutationBenchConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            dim: 3,
            ops: 400,
            append_rows: 4,
            k: 10,
            workers: 4,
            seed: 2015,
        }
    }
}

/// One engine's timed run.
#[derive(Clone, Copy, Debug)]
pub struct MutationTiming {
    /// Operations executed (mutations + queries).
    pub ops: usize,
    /// Total wall-clock.
    pub elapsed: Duration,
    /// Median per-operation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-operation latency in microseconds (on this
    /// mixed workload the tail is where rebuild stalls live).
    pub p99_us: f64,
}

impl MutationTiming {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The full comparison report.
#[derive(Clone, Debug)]
pub struct MutationComparison {
    /// Configuration measured.
    pub config: MutationBenchConfig,
    /// Delta-overlay engine timing.
    pub overlay: MutationTiming,
    /// Rebuild-per-mutation baseline timing.
    pub rebuild: MutationTiming,
    /// Overlay requests that consulted a non-empty delta.
    pub delta_hits: u64,
    /// Mutations the overlay absorbed with a built index intact.
    pub rebuilds_avoided: u64,
    /// Background compactions the overlay ran.
    pub compactions: u64,
    /// Bulk loads the overlay engine executed in total.
    pub overlay_index_builds: u64,
    /// Bulk loads the rebuild baseline executed in total.
    pub rebuild_index_builds: u64,
}

impl MutationComparison {
    /// overlay / rebuild throughput.
    pub fn speedup(&self) -> f64 {
        self.overlay.ops_per_sec() / self.rebuild.ops_per_sec().max(1e-12)
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        let timing = |t: &MutationTiming| {
            format!(
                concat!(
                    "{{\"ops\": {}, \"seconds\": {:.6}, \"ops_per_sec\": {:.1}, ",
                    "\"p50_us\": {:.3}, \"p99_us\": {:.3}}}"
                ),
                t.ops,
                t.elapsed.as_secs_f64(),
                t.ops_per_sec(),
                t.p50_us,
                t.p99_us,
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"mutation_overlay_vs_rebuild\",\n",
                "  \"config\": {{\"n\": {}, \"dim\": {}, \"ops\": {}, ",
                "\"append_rows\": {}, \"k\": {}, \"workers\": {}, \"seed\": {}}},\n",
                "  \"overlay\": {},\n",
                "  \"rebuild_per_mutation\": {},\n",
                "  \"speedup_overlay_vs_rebuild\": {:.2},\n",
                "  \"overlay_metrics\": {{\"delta_hits\": {}, \"rebuilds_avoided\": {}, ",
                "\"compactions\": {}, \"index_builds\": {}}},\n",
                "  \"rebuild_index_builds\": {},\n",
                "  \"final_topk_scores_identical\": true\n",
                "}}"
            ),
            self.config.n,
            self.config.dim,
            self.config.ops,
            self.config.append_rows,
            self.config.k,
            self.config.workers,
            self.config.seed,
            timing(&self.overlay),
            timing(&self.rebuild),
            self.speedup(),
            self.delta_hits,
            self.rebuilds_avoided,
            self.compactions,
            self.overlay_index_builds,
            self.rebuild_index_builds,
        )
    }
}

/// One operation of the interleaved workload.
enum Op {
    Append(Vec<f64>),
    Delete(Vec<u32>),
    TopK(Vec<f64>),
    Explain(Vec<f64>, Vec<f64>),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic interleaved op sequence both engines serve.
fn workload(cfg: &MutationBenchConfig) -> Vec<Op> {
    let mut state = cfg.seed ^ 0xabcd_1234_5678_9e3f;
    let mut ops = Vec::with_capacity(cfg.ops);
    let mut next_id = cfg.n as u32;
    let mut appended: Vec<u32> = Vec::new();
    for i in 0..cfg.ops {
        if i % 2 == 0 {
            // Mutation side: mostly appends, every 8th a delete of a
            // previously appended row (keeps the id space modellable for
            // both engines without tracking compaction).
            if i % 16 == 8 && !appended.is_empty() {
                let victim = appended.remove((splitmix(&mut state) as usize) % appended.len());
                ops.push(Op::Delete(vec![victim]));
            } else {
                let rows: Vec<f64> = (0..cfg.append_rows * cfg.dim)
                    .map(|_| unit(&mut state))
                    .collect();
                for r in 0..cfg.append_rows {
                    appended.push(next_id + r as u32);
                }
                next_id += cfg.append_rows as u32;
                ops.push(Op::Append(rows));
            }
        } else if i % 6 == 1 {
            let w: Vec<f64> = (0..cfg.dim).map(|_| 0.05 + unit(&mut state)).collect();
            let q: Vec<f64> = (0..cfg.dim).map(|_| 0.3 * unit(&mut state)).collect();
            ops.push(Op::Explain(normalize(w), q));
        } else {
            let w: Vec<f64> = (0..cfg.dim).map(|_| 0.05 + unit(&mut state)).collect();
            ops.push(Op::TopK(normalize(w)));
        }
    }
    ops
}

fn normalize(raw: Vec<f64>) -> Vec<f64> {
    let s: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / s).collect()
}

/// Deletions in the rebuild baseline remove the row from its coordinate
/// buffer; ids there are positional, so the baseline tracks (id → row)
/// itself. The overlay engine handles ids natively.
struct RebuildBaseline {
    engine: Engine,
    coords: Vec<f64>,
    ids: Vec<u32>,
    dim: usize,
    next_id: u32,
}

impl RebuildBaseline {
    fn apply(&mut self, op: &Op, k: usize) {
        match op {
            Op::Append(rows) => {
                self.coords.extend_from_slice(rows);
                for _ in 0..rows.len() / self.dim {
                    self.ids.push(self.next_id);
                    self.next_id += 1;
                }
                // Pre-overlay semantics: re-register, dropping the index.
                self.engine
                    .register_dataset("bench", self.dim, self.coords.clone())
                    .expect("register");
            }
            Op::Delete(ids) => {
                for id in ids {
                    if let Some(pos) = self.ids.iter().position(|i| i == id) {
                        self.ids.remove(pos);
                        self.coords.drain(pos * self.dim..(pos + 1) * self.dim);
                    }
                }
                self.engine
                    .register_dataset("bench", self.dim, self.coords.clone())
                    .expect("register");
            }
            Op::TopK(w) => {
                let r = self.engine.submit(Request::TopK {
                    dataset: "bench".into(),
                    weight: w.clone(),
                    k,
                });
                assert!(!r.is_error(), "baseline TopK failed");
            }
            Op::Explain(w, q) => {
                let r = self.engine.submit(Request::WhyNotExplain {
                    dataset: "bench".into(),
                    weight: w.clone(),
                    q: q.clone(),
                    limit: k,
                });
                assert!(!r.is_error(), "baseline explain failed");
            }
        }
    }
}

fn run_overlay(cfg: &MutationBenchConfig, coords: &[f64], ops: &[Op]) -> (MutationTiming, Engine) {
    let engine = Engine::builder().workers(cfg.workers).build();
    engine
        .register_dataset("bench", cfg.dim, coords.to_vec())
        .expect("register");
    engine.catalog().handle("bench").expect("warm index");
    let latency = Histogram::new();
    let start = Instant::now();
    for op in ops {
        let began = Instant::now();
        match op {
            Op::Append(rows) => {
                let r = engine.submit(Request::Append {
                    dataset: "bench".into(),
                    points: rows.clone(),
                });
                assert!(matches!(r, Response::Mutated { .. }), "append failed");
            }
            Op::Delete(ids) => {
                let r = engine.submit(Request::Delete {
                    dataset: "bench".into(),
                    ids: ids.clone(),
                });
                assert!(matches!(r, Response::Mutated { .. }), "delete failed");
            }
            Op::TopK(w) => {
                let r = engine.submit(Request::TopK {
                    dataset: "bench".into(),
                    weight: w.clone(),
                    k: cfg.k,
                });
                assert!(!r.is_error(), "overlay TopK failed");
            }
            Op::Explain(w, q) => {
                let r = engine.submit(Request::WhyNotExplain {
                    dataset: "bench".into(),
                    weight: w.clone(),
                    q: q.clone(),
                    limit: cfg.k,
                });
                assert!(!r.is_error(), "overlay explain failed");
            }
        }
        latency.record_duration(began.elapsed());
    }
    let snap = latency.snapshot();
    (
        MutationTiming {
            ops: ops.len(),
            elapsed: start.elapsed(),
            p50_us: snap.quantile_micros(0.50),
            p99_us: snap.quantile_micros(0.99),
        },
        engine,
    )
}

/// Runs the full comparison.
pub fn compare(cfg: &MutationBenchConfig) -> MutationComparison {
    let ds = independent(cfg.n, cfg.dim, cfg.seed);
    let ops = workload(cfg);

    let (overlay_timing, overlay_engine) = run_overlay(cfg, &ds.coords, &ops);

    let mut baseline = RebuildBaseline {
        engine: Engine::builder().workers(cfg.workers).build(),
        coords: ds.coords.clone(),
        ids: (0..cfg.n as u32).collect(),
        dim: cfg.dim,
        next_id: cfg.n as u32,
    };
    baseline
        .engine
        .register_dataset("bench", cfg.dim, ds.coords.clone())
        .expect("register");
    baseline.engine.catalog().handle("bench").expect("warm");
    let rebuild_latency = Histogram::new();
    let start = Instant::now();
    for op in &ops {
        let began = Instant::now();
        baseline.apply(op, cfg.k);
        rebuild_latency.record_duration(began.elapsed());
    }
    let rebuild_snap = rebuild_latency.snapshot();
    let rebuild_timing = MutationTiming {
        ops: ops.len(),
        elapsed: start.elapsed(),
        p50_us: rebuild_snap.quantile_micros(0.50),
        p99_us: rebuild_snap.quantile_micros(0.99),
    };

    // Equivalence anchor: the final top-k *scores* must be identical
    // (ids differ — the overlay keeps stable ids, the baseline renumbers
    // on every rebuild).
    let w = normalize(vec![1.0; cfg.dim]);
    let final_scores = |engine: &Engine| -> Vec<u64> {
        match engine.submit(Request::TopK {
            dataset: "bench".into(),
            weight: w.clone(),
            k: cfg.k,
        }) {
            Response::TopK(points) => points.iter().map(|(_, s)| s.to_bits()).collect(),
            other => panic!("final TopK failed: {other:?}"),
        }
    };
    assert_eq!(
        final_scores(&overlay_engine),
        final_scores(&baseline.engine),
        "overlay and rebuild engines diverged on the final top-k"
    );

    let m = overlay_engine.metrics();
    let bm = baseline.engine.metrics();
    MutationComparison {
        config: *cfg,
        overlay: overlay_timing,
        rebuild: rebuild_timing,
        delta_hits: m.delta_hits,
        rebuilds_avoided: m.catalog.rebuilds_avoided,
        compactions: m.catalog.compactions,
        overlay_index_builds: m.catalog.index_builds,
        rebuild_index_builds: bm.catalog.index_builds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MutationBenchConfig {
        MutationBenchConfig {
            n: 2_000,
            dim: 3,
            ops: 40,
            append_rows: 2,
            k: 5,
            workers: 2,
            seed: 7,
        }
    }

    #[test]
    fn comparison_runs_and_report_is_json_shaped() {
        let c = compare(&tiny());
        assert_eq!(c.overlay.ops, 40);
        assert_eq!(c.rebuild.ops, 40);
        assert!(c.delta_hits > 0, "queries must see the overlay");
        assert!(
            c.rebuild_index_builds > c.overlay_index_builds,
            "the baseline must actually rebuild: {} vs {}",
            c.rebuild_index_builds,
            c.overlay_index_builds
        );
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"speedup_overlay_vs_rebuild\""));
        assert!(json.contains("\"rebuilds_avoided\""));
        assert!(json.contains("\"final_topk_scores_identical\": true"));
        assert!(json.contains("\"p50_us\""));
        assert!(json.contains("\"p99_us\""));
        assert!(c.overlay.p99_us >= c.overlay.p50_us);
        assert!(c.overlay.p50_us > 0.0);
    }

    #[test]
    fn overlay_beats_rebuild_even_at_toy_scale() {
        // The acceptance gate demands ≥10x at the full 100k scale; even
        // a 2k-point smoke run must show a clear win.
        let c = compare(&tiny());
        assert!(
            c.speedup() > 1.5,
            "expected a clear overlay win, got {:.2}x",
            c.speedup()
        );
    }
}
