//! Batched-engine vs sequential-naive serving comparison.
//!
//! Three ways to serve the same mixed request stream:
//!
//! * **sequential naive** — the one-shot library pattern: every call
//!   rebuilds the R-tree index before querying (what ad-hoc invocations
//!   of the pre-engine entry points amounted to);
//! * **sequential shared** — direct library calls against one pre-built
//!   index (isolates the index-reuse win from pooling/caching);
//! * **batched engine** — `Engine::submit_batch` over the worker pool
//!   with the epoch-keyed result cache.
//!
//! The binary `engine_bench` runs the comparison and emits a JSON report
//! (`scripts/bench.sh` writes it to `BENCH_engine.json`).

use std::time::{Duration, Instant};
use wqrtq_core::explain;
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{Engine, Histogram, HistogramSnapshot, Request, Response};
use wqrtq_geom::Weight;
use wqrtq_query::brtopk::bichromatic_reverse_topk_rta;
use wqrtq_query::topk::topk;
use wqrtq_rtree::RTree;

/// Workload shape for the comparison.
#[derive(Clone, Copy, Debug)]
pub struct EngineBenchConfig {
    /// Dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Requests per batch.
    pub batch: usize,
    /// Batches served (distinct request streams, then one repeat pass).
    pub rounds: usize,
    /// Worker threads for the engine side.
    pub workers: usize,
    /// Dataset / workload seed.
    pub seed: u64,
}

impl Default for EngineBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            dim: 3,
            batch: 64,
            rounds: 4,
            workers: std::thread::available_parallelism().map_or(4, |p| p.get()),
            seed: 2015,
        }
    }
}

/// One serving strategy's measurement.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock for the whole stream.
    pub elapsed: Duration,
    /// Median per-request latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-request latency (microseconds).
    pub p99_us: f64,
}

impl Throughput {
    /// A measurement whose tail latencies come from a recorded
    /// histogram (the workspace's log-linear scheme: ~3% relative
    /// error, so a p99 of 100µs may report as 103µs, never 130µs).
    pub fn with_latency(requests: usize, elapsed: Duration, latency: &HistogramSnapshot) -> Self {
        Throughput {
            requests,
            elapsed,
            p50_us: latency.quantile_micros(0.50),
            p99_us: latency.quantile_micros(0.99),
        }
    }

    /// Requests per second.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Renders one [`Throughput`] as a JSON object (shared by the engine
/// and server reports).
pub fn throughput_json(t: &Throughput) -> String {
    format!(
        "{{\"requests\": {}, \"seconds\": {:.6}, \"rps\": {:.1}, \
         \"p50_us\": {:.3}, \"p99_us\": {:.3}}}",
        t.requests,
        t.elapsed.as_secs_f64(),
        t.rps(),
        t.p50_us,
        t.p99_us,
    )
}

/// The comparison report.
#[derive(Clone, Debug)]
pub struct EngineComparison {
    /// Configuration measured.
    pub config: EngineBenchConfig,
    /// One-shot calls, index rebuilt per request.
    pub sequential_naive: Throughput,
    /// One-shot calls against a pre-built index.
    pub sequential_shared: Throughput,
    /// `Engine::submit_batch` with a single worker (pool + cache, no
    /// parallelism) — the scaling baseline.
    pub batched_engine_workers_1: Throughput,
    /// `Engine::submit_batch` over `config.workers` workers with caching.
    pub batched_engine: Throughput,
    /// The multi-worker workload with tracing disabled — the
    /// observability-overhead baseline. Measured on the stretched
    /// overhead workload (see [`compare`]), so compare it against
    /// `obs_overhead`, not against `batched_engine`.
    pub untraced_engine: Throughput,
    /// traced / untraced throughput, median of the interleaved pairs
    /// (see [`compare`]) — what histogram and span recording costs on
    /// the hot path. Guarded at >= 0.95 by `scripts/check_bench.sh`.
    pub obs_overhead: f64,
    /// Cache hit rate observed on the single-worker engine.
    pub cache_hit_rate_workers_1: f64,
    /// Cache hit rate observed on the multi-worker engine.
    pub cache_hit_rate: f64,
}

impl EngineComparison {
    /// batched / naive speedup.
    pub fn speedup_vs_naive(&self) -> f64 {
        self.batched_engine.rps() / self.sequential_naive.rps().max(1e-12)
    }

    /// multi-worker / single-worker engine throughput ratio.
    pub fn worker_scaling(&self) -> f64 {
        self.batched_engine.rps() / self.batched_engine_workers_1.rps().max(1e-12)
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"engine_batched_vs_sequential\",\n",
                "  \"config\": {{\"n\": {}, \"dim\": {}, \"batch\": {}, \"rounds\": {}, \"workers\": {}, \"seed\": {}}},\n",
                "  \"sequential_naive\": {},\n",
                "  \"sequential_shared\": {},\n",
                "  \"batched_engine_workers_1\": {},\n",
                "  \"batched_engine\": {},\n",
                "  \"untraced_engine\": {},\n",
                "  \"cache_hit_rate_workers_1\": {:.4},\n",
                "  \"cache_hit_rate\": {:.4},\n",
                "  \"speedup_vs_naive\": {:.2},\n",
                "  \"worker_scaling\": {:.2},\n",
                "  \"obs_overhead\": {:.4}\n",
                "}}"
            ),
            self.config.n,
            self.config.dim,
            self.config.batch,
            self.config.rounds,
            self.config.workers,
            self.config.seed,
            throughput_json(&self.sequential_naive),
            throughput_json(&self.sequential_shared),
            throughput_json(&self.batched_engine_workers_1),
            throughput_json(&self.batched_engine),
            throughput_json(&self.untraced_engine),
            self.cache_hit_rate_workers_1,
            self.cache_hit_rate,
            self.speedup_vs_naive(),
            self.worker_scaling(),
            self.obs_overhead,
        )
    }
}

/// The mixed request stream: mostly top-k probes with periodic why-not
/// explanations and bichromatic reverse top-k calls, `rounds` distinct
/// batches followed by one repeated batch (the cache's best case — and a
/// no-op for the baselines, which recompute it).
pub fn request_stream(cfg: &EngineBenchConfig) -> Vec<Vec<Request>> {
    let mut batches: Vec<Vec<Request>> = (0..cfg.rounds)
        .map(|round| {
            (0..cfg.batch)
                .map(|i| {
                    let t = (round * cfg.batch + i) as f64 / (cfg.rounds * cfg.batch) as f64;
                    let w = stream_weight(cfg.dim, t);
                    match i % 8 {
                        6 => Request::WhyNotExplain {
                            dataset: "bench".into(),
                            weight: w,
                            q: vec![0.35; cfg.dim],
                            limit: 16,
                        },
                        7 => Request::ReverseTopKBi {
                            dataset: "bench".into(),
                            weights: wqrtq_engine::WeightSet::Named("population".into()),
                            q: vec![0.2; cfg.dim],
                            k: 10,
                        },
                        _ => Request::TopK {
                            dataset: "bench".into(),
                            weight: w,
                            k: 10,
                        },
                    }
                })
                .collect()
        })
        .collect();
    batches.push(batches[0].clone()); // repeat pass
    batches
}

fn stream_weight(dim: usize, t: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..dim)
        .map(|j| 0.15 + 0.7 * ((t * 7.3 + j as f64 * 1.7).sin() * 0.5 + 0.5))
        .collect();
    let s: f64 = w.iter().sum();
    for x in &mut w {
        *x /= s;
    }
    w
}

fn population(dim: usize) -> Vec<Weight> {
    (0..40)
        .map(|i| Weight::normalized(stream_weight(dim, i as f64 / 40.0)))
        .collect()
}

/// Serves the stream with direct library calls. `rebuild_per_call`
/// selects the naive (rebuild) or shared (pre-built) baseline.
fn run_sequential(cfg: &EngineBenchConfig, coords: &[f64], rebuild_per_call: bool) -> Throughput {
    let prebuilt = if rebuild_per_call {
        None
    } else {
        Some(RTree::bulk_load(cfg.dim, coords))
    };
    let pop = population(cfg.dim);
    let mut served = 0usize;
    let mut sink = 0usize; // keep results observable
    let latency = Histogram::new();
    let start = Instant::now();
    for batch in request_stream(cfg) {
        for request in batch {
            let began = Instant::now();
            let rebuilt;
            let tree = match &prebuilt {
                Some(t) => t,
                None => {
                    rebuilt = RTree::bulk_load(cfg.dim, coords);
                    &rebuilt
                }
            };
            match request {
                Request::TopK { weight, k, .. } => sink += topk(tree, &weight, k).len(),
                Request::WhyNotExplain {
                    weight, q, limit, ..
                } => sink += explain(tree, &weight, &q, limit).rank,
                Request::ReverseTopKBi { q, k, .. } => {
                    sink += bichromatic_reverse_topk_rta(tree, &pop, &q, k).len()
                }
                other => unreachable!("stream only emits 3 kinds, got {other:?}"),
            }
            latency.record_duration(began.elapsed());
            served += 1;
        }
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    Throughput::with_latency(served, elapsed, &latency.snapshot())
}

/// Serves the stream through an engine with `workers` threads.
/// `tracing` toggles the observability pipeline (histograms stay on —
/// they feed the report's percentiles — but span recording obeys it).
fn run_batched(
    cfg: &EngineBenchConfig,
    coords: &[f64],
    workers: usize,
    tracing: bool,
) -> (Throughput, f64) {
    let engine = Engine::builder()
        .workers(workers)
        .cache_capacity(2 * cfg.batch * cfg.rounds)
        .tracing(tracing)
        .build();
    engine
        .register_dataset("bench", cfg.dim, coords.to_vec())
        .expect("register bench dataset");
    engine
        .register_weights("population", population(cfg.dim))
        .expect("register population");
    // Warm the lazy index outside the timed region, as the baselines'
    // pre-built variant does (the naive baseline pays it per call).
    engine.catalog().handle("bench").expect("warm index");
    let mut served = 0usize;
    let start = Instant::now();
    for batch in request_stream(cfg) {
        let responses = engine.submit_batch(batch);
        assert!(
            responses.iter().all(|r| !matches!(r, Response::Error(_))),
            "bench stream must serve cleanly"
        );
        served += responses.len();
    }
    let elapsed = start.elapsed();
    let metrics = engine.metrics();
    let hit_rate = metrics.cache.hit_rate();
    (
        // Engine-side latency: what the workers measured per request
        // (queue wait excluded — that is a stage histogram of its own).
        Throughput::with_latency(served, elapsed, &metrics.merged_latency()),
        hit_rate,
    )
}

/// Runs the full comparison.
pub fn compare(cfg: &EngineBenchConfig) -> EngineComparison {
    let ds = independent(cfg.n, cfg.dim, cfg.seed);
    let sequential_naive = run_sequential(cfg, &ds.coords, true);
    let sequential_shared = run_sequential(cfg, &ds.coords, false);
    let (batched_engine_workers_1, cache_hit_rate_workers_1) =
        run_batched(cfg, &ds.coords, 1, true);
    let (batched_engine, cache_hit_rate) = run_batched(cfg, &ds.coords, cfg.workers, true);

    // The guarded obs_overhead ratio needs more care than the headline
    // throughput: at smoke scale a timed side lasts ~25 ms, where
    // scheduler noise dwarfs a few-percent effect. Four defences: the
    // workload is stretched to >= 12 rounds so each side runs long
    // enough to average over hiccups; a discarded warm-up run eats the
    // one-time costs (page faults, allocator growth) that would
    // otherwise always land on the side that runs first; traced and
    // untraced runs are interleaved in back-to-back pairs with
    // alternating order, so slow common-mode drift cancels in each
    // ratio instead of biasing one side; and the median of five
    // per-pair ratios throws away the pairs a hiccup hit.
    let mut ov_cfg = *cfg;
    ov_cfg.rounds = cfg.rounds.max(12);
    let _ = run_batched(&ov_cfg, &ds.coords, cfg.workers, true);
    let mut traced_runs: Vec<Throughput> = Vec::new();
    let mut untraced_runs: Vec<Throughput> = Vec::new();
    for i in 0..5 {
        if i % 2 == 0 {
            traced_runs.push(run_batched(&ov_cfg, &ds.coords, cfg.workers, true).0);
            untraced_runs.push(run_batched(&ov_cfg, &ds.coords, cfg.workers, false).0);
        } else {
            untraced_runs.push(run_batched(&ov_cfg, &ds.coords, cfg.workers, false).0);
            traced_runs.push(run_batched(&ov_cfg, &ds.coords, cfg.workers, true).0);
        }
    }
    let mut ratios: Vec<f64> = traced_runs
        .iter()
        .zip(&untraced_runs)
        .map(|(t, u)| t.rps() / u.rps().max(1e-12))
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let obs_overhead = ratios[ratios.len() / 2];
    let untraced_engine = untraced_runs
        .into_iter()
        .max_by(|a, b| a.rps().partial_cmp(&b.rps()).expect("finite rps"))
        .expect("at least one run");
    EngineComparison {
        config: *cfg,
        sequential_naive,
        sequential_shared,
        batched_engine_workers_1,
        batched_engine,
        untraced_engine,
        obs_overhead,
        cache_hit_rate_workers_1,
        cache_hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EngineBenchConfig {
        EngineBenchConfig {
            n: 2_000,
            dim: 3,
            batch: 16,
            rounds: 2,
            workers: 2,
            seed: 7,
        }
    }

    #[test]
    fn stream_shape_and_repeat_pass() {
        let cfg = tiny();
        let batches = request_stream(&cfg);
        assert_eq!(batches.len(), cfg.rounds + 1);
        assert!(batches.iter().all(|b| b.len() == cfg.batch));
        assert_eq!(
            batches[0], batches[cfg.rounds],
            "last batch repeats the first"
        );
    }

    #[test]
    fn batched_engine_beats_naive_and_report_is_json_shaped() {
        let c = compare(&tiny());
        assert_eq!(c.sequential_naive.requests, c.batched_engine.requests);
        assert!(
            c.speedup_vs_naive() > 1.0,
            "engine must out-serve per-call index rebuilds: {:?}",
            c
        );
        assert!(c.cache_hit_rate > 0.0, "repeat pass must hit the cache");
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"batched_engine\""));
        assert!(json.contains("\"batched_engine_workers_1\""));
        assert!(json.contains("\"worker_scaling\""));
        assert!(json.contains("\"untraced_engine\""));
        assert!(json.contains("\"obs_overhead\""));
        assert!(json.contains("\"p50_us\"") && json.contains("\"p99_us\""));
        assert!(
            c.batched_engine.p99_us >= c.batched_engine.p50_us,
            "p99 below p50: {:?}",
            c.batched_engine
        );
        assert!(c.batched_engine.p50_us > 0.0, "engine recorded latencies");
        assert!(c.obs_overhead > 0.0);
    }
}
