//! Workload preparation and timed algorithm runs.
//!
//! `prepare` turns a [`Config`] into an indexed dataset plus a why-not
//! case (outside the timed region, as in the paper: index construction
//! is not part of query cost); `run_algorithm` measures one algorithm's
//! total running time and the penalty of its refined query — the two
//! metrics of every figure in §5.

use crate::params::{Config, DatasetKind};
use std::time::{Duration, Instant};
use wqrtq_core::mqp::mqp;
use wqrtq_core::mqwk::mqwk;
use wqrtq_core::mwk::mwk;
use wqrtq_core::penalty::Tolerances;
use wqrtq_data::realistic::{household_like_scaled, nba_like_scaled};
use wqrtq_data::synthetic::{anticorrelated, independent, Dataset};
use wqrtq_data::workload::{build_case, WhyNotCase, WorkloadSpec};
use wqrtq_rtree::RTree;

/// The three refinement algorithms of the WQRTQ framework.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Modify the query point (Algorithm 1).
    Mqp,
    /// Modify `Wm` and `k` (Algorithm 2).
    Mwk,
    /// Modify everything (Algorithm 3).
    Mqwk,
}

impl Algorithm {
    /// All three, in the paper's presentation order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Mqp, Algorithm::Mwk, Algorithm::Mqwk];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Mqp => "MQP",
            Algorithm::Mwk => "MWK",
            Algorithm::Mqwk => "MQWK",
        }
    }
}

/// A prepared experiment: index + why-not case.
pub struct Prepared {
    /// The indexed product dataset.
    pub tree: RTree,
    /// The generated why-not case.
    pub case: WhyNotCase,
    /// Sample size to use (|S| = |Q|).
    pub sample_size: usize,
    /// Seed for algorithm-internal sampling.
    pub seed: u64,
}

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Total running time.
    pub time: Duration,
    /// Penalty of the refined query it returned.
    pub penalty: f64,
}

/// Generates the dataset described by a configuration.
pub fn generate_dataset(cfg: &Config) -> Dataset {
    match cfg.dataset {
        DatasetKind::Independent => independent(cfg.n, cfg.dim, cfg.seed),
        DatasetKind::Anticorrelated => anticorrelated(cfg.n, cfg.dim, cfg.seed),
        DatasetKind::Household => household_like_scaled(cfg.n, cfg.seed),
        DatasetKind::Nba => {
            let n = cfg.n.min(wqrtq_data::realistic::NBA_N);
            nba_like_scaled(n, cfg.seed)
        }
    }
}

/// Builds the index and why-not case for a configuration (untimed).
pub fn prepare(cfg: &Config) -> Prepared {
    let ds = generate_dataset(cfg);
    let tree = RTree::bulk_load(ds.dim, &ds.coords);
    let spec = WorkloadSpec {
        k: cfg.k,
        num_why_not: cfg.num_why_not,
        target_rank: cfg
            .target_rank
            .min(tree.len().saturating_sub(1))
            .max(cfg.k + 1),
        rank_tolerance: 0.5,
    };
    let case = build_case(&tree, &spec, cfg.seed);
    Prepared {
        tree,
        case,
        sample_size: cfg.sample_size,
        seed: cfg.seed,
    }
}

/// Runs one algorithm on a prepared case, returning time and penalty.
pub fn run_algorithm(prep: &Prepared, algorithm: Algorithm) -> Measurement {
    let tol = Tolerances::paper_default();
    let start = Instant::now();
    let penalty = match algorithm {
        Algorithm::Mqp => {
            mqp(&prep.tree, &prep.case.q, prep.case.k, &prep.case.why_not)
                .expect("MQP succeeds")
                .penalty
        }
        Algorithm::Mwk => {
            mwk(
                &prep.tree,
                &prep.case.q,
                prep.case.k,
                &prep.case.why_not,
                prep.sample_size,
                &tol,
                prep.seed,
            )
            .expect("MWK succeeds")
            .penalty
        }
        Algorithm::Mqwk => {
            mqwk(
                &prep.tree,
                &prep.case.q,
                prep.case.k,
                &prep.case.why_not,
                prep.sample_size,
                prep.sample_size,
                &tol,
                prep.seed,
            )
            .expect("MQWK succeeds")
            .penalty
        }
    };
    Measurement {
        algorithm,
        time: start.elapsed(),
        penalty,
    }
}

/// Runs all three algorithms on one prepared case.
pub fn run_all(prep: &Prepared) -> Vec<Measurement> {
    Algorithm::ALL
        .iter()
        .map(|&a| run_algorithm(prep, a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Profile;

    fn tiny_config(dataset: DatasetKind) -> Config {
        let mut c = Config::default_for(dataset, Profile::Quick);
        c.n = 4_000;
        c.sample_size = 60;
        c
    }

    #[test]
    fn prepare_and_run_all_on_each_dataset_kind() {
        for kind in [
            DatasetKind::Independent,
            DatasetKind::Anticorrelated,
            DatasetKind::Household,
            DatasetKind::Nba,
        ] {
            let prep = prepare(&tiny_config(kind));
            assert!(!prep.tree.is_empty(), "{kind:?}");
            let ms = run_all(&prep);
            assert_eq!(ms.len(), 3);
            for m in &ms {
                assert!(m.penalty >= 0.0, "{kind:?} {:?}", m.algorithm);
                assert!(m.time.as_nanos() > 0);
            }
        }
    }

    #[test]
    fn time_ordering_matches_paper_shape() {
        // MQP must be the fastest and MQWK the slowest (Figures 7–12).
        let prep = prepare(&tiny_config(DatasetKind::Independent));
        let ms = run_all(&prep);
        let t = |a: Algorithm| ms.iter().find(|m| m.algorithm == a).expect("measured").time;
        assert!(t(Algorithm::Mqp) < t(Algorithm::Mqwk));
        assert!(t(Algorithm::Mwk) < t(Algorithm::Mqwk));
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Mqp.name(), "MQP");
        assert_eq!(Algorithm::ALL.len(), 3);
    }
}
