//! Table 1 of the paper: parameter ranges and default values.
//!
//! | Parameter                     | Range                        | Default |
//! |-------------------------------|------------------------------|---------|
//! | Dimensionality d              | 2, 3, 4, 5                   | 3       |
//! | Dataset cardinality |P|       | 10K … 1000K                  | 100K    |
//! | k                             | 10 … 50                      | 10      |
//! | Actual ranking of q under Wm  | 11, 101, 501, 1001           | 101     |
//! | |Wm|                          | 1 … 5                        | 1       |
//! | Sample size                   | 100 … 1600                   | 800     |
//!
//! α = β = γ = λ = 0.5 throughout (§5.1).

/// Which dataset a configuration runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Uniform independent attributes (synthetic).
    Independent,
    /// Anti-correlated attributes (synthetic).
    Anticorrelated,
    /// Household surrogate (127K × 6 when unscaled).
    Household,
    /// NBA surrogate (17,264 × 13 when unscaled).
    Nba,
}

impl DatasetKind {
    /// Display name used in figure tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Independent => "Independent",
            DatasetKind::Anticorrelated => "Anti-correlated",
            DatasetKind::Household => "Household",
            DatasetKind::Nba => "NBA",
        }
    }

    /// The four datasets of Figures 9–12, in the paper's panel order.
    pub fn figure_panels() -> [DatasetKind; 4] {
        [
            DatasetKind::Household,
            DatasetKind::Nba,
            DatasetKind::Independent,
            DatasetKind::Anticorrelated,
        ]
    }
}

/// Scale profile for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Reduced scale for CI/laptops: |P| capped, |S| = |Q| = 200. Shapes
    /// are preserved (every cost term scales multiplicatively); absolute
    /// numbers are smaller. See DESIGN.md.
    Quick,
    /// The paper's Table-1 grid.
    Paper,
}

impl Profile {
    /// Default dataset cardinality under this profile.
    pub fn default_cardinality(self) -> usize {
        match self {
            Profile::Quick => 50_000,
            Profile::Paper => 100_000,
        }
    }

    /// Cardinality sweep of Figure 8.
    pub fn cardinality_sweep(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![10_000, 50_000, 100_000, 200_000],
            Profile::Paper => vec![10_000, 50_000, 100_000, 500_000, 1_000_000],
        }
    }

    /// Default sample size (|S|, and |Q| for MQWK).
    pub fn default_sample_size(self) -> usize {
        match self {
            Profile::Quick => 200,
            Profile::Paper => 800,
        }
    }

    /// Sample-size sweep of Figure 12.
    pub fn sample_size_sweep(self) -> Vec<usize> {
        vec![100, 200, 400, 800, 1600]
    }

    /// Cardinality used for the Figure-12 sweep (reduced under Quick so
    /// the |S| = 1600 MQWK point stays affordable).
    pub fn fig12_cardinality(self) -> usize {
        match self {
            Profile::Quick => 10_000,
            Profile::Paper => 100_000,
        }
    }
}

/// One experiment configuration (a point on a figure's x-axis).
#[derive(Clone, Debug)]
pub struct Config {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Dataset cardinality |P| (ignored for the fixed-size real-data
    /// surrogates under the Paper profile).
    pub n: usize,
    /// Dimensionality d (synthetic datasets only; surrogates fix it).
    pub dim: usize,
    /// The reverse top-k parameter.
    pub k: usize,
    /// Target actual rank of q under Wm (Table 1 row 4).
    pub target_rank: usize,
    /// |Wm|.
    pub num_why_not: usize,
    /// Sample size |S| (= |Q|).
    pub sample_size: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// The Table-1 default configuration on a dataset, under a profile.
    pub fn default_for(dataset: DatasetKind, profile: Profile) -> Self {
        Self {
            dataset,
            n: profile.default_cardinality(),
            dim: 3,
            k: 10,
            target_rank: 101,
            num_why_not: 1,
            sample_size: profile.default_sample_size(),
            seed: 2015,
        }
    }

    /// Effective dimensionality after accounting for fixed-dimension
    /// surrogates.
    pub fn effective_dim(&self) -> usize {
        match self.dataset {
            DatasetKind::Household => wqrtq_data::realistic::HOUSEHOLD_DIM,
            DatasetKind::Nba => wqrtq_data::realistic::NBA_DIM,
            _ => self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = Config::default_for(DatasetKind::Independent, Profile::Paper);
        assert_eq!(c.dim, 3);
        assert_eq!(c.n, 100_000);
        assert_eq!(c.k, 10);
        assert_eq!(c.target_rank, 101);
        assert_eq!(c.num_why_not, 1);
        assert_eq!(c.sample_size, 800);
    }

    #[test]
    fn quick_profile_is_smaller() {
        assert!(Profile::Quick.default_cardinality() < Profile::Paper.default_cardinality());
        assert!(Profile::Quick.default_sample_size() < Profile::Paper.default_sample_size());
        assert_eq!(Profile::Paper.cardinality_sweep().last(), Some(&1_000_000));
    }

    #[test]
    fn surrogates_fix_dimensionality() {
        let mut c = Config::default_for(DatasetKind::Nba, Profile::Quick);
        c.dim = 3;
        assert_eq!(c.effective_dim(), 13);
        c.dataset = DatasetKind::Household;
        assert_eq!(c.effective_dim(), 6);
        c.dataset = DatasetKind::Anticorrelated;
        assert_eq!(c.effective_dim(), 3);
    }
}
