//! Benchmark harness for the WQRTQ experimental study (§5 of the paper).
//!
//! [`params`] encodes Table 1 (parameter ranges and defaults) plus the
//! run profiles; [`harness`] prepares workloads and measures the three
//! refinement algorithms. The `figures` binary regenerates every
//! experimental figure (7–12) as a printed table; the Criterion benches
//! in `benches/` track the same configurations at reduced scale plus the
//! design-choice ablations called out in DESIGN.md.

pub mod alloc_count;
pub mod durability_bench;
pub mod engine_bench;
pub mod harness;
pub mod mutation_bench;
pub mod params;
pub mod rank_bench;
pub mod scale_bench;
pub mod server_bench;
pub mod whynot_bench;

pub use durability_bench::{DurabilityBenchConfig, DurabilityComparison};
pub use engine_bench::{compare, EngineBenchConfig, EngineComparison};
pub use harness::{prepare, run_algorithm, Algorithm, Measurement, Prepared};
pub use mutation_bench::{MutationBenchConfig, MutationComparison};
pub use params::{Config, DatasetKind, Profile};
pub use rank_bench::{RankBenchConfig, RankComparison};
pub use scale_bench::{ScaleBenchConfig, ScaleCell, ScaleReport, TierTiming};
pub use server_bench::{ServerBenchConfig, ServerComparison, SweepPoint};
pub use whynot_bench::{WhyNotBenchConfig, WhyNotComparison};
