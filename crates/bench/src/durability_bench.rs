//! Durability-overhead benchmark: WAL-logged mutations against the
//! in-memory engine, plus recovery replay speed.
//!
//! Three engines serve the identical append/delete stream against one
//! `n`-point dataset:
//!
//! * **in-memory** — no data directory; mutations touch only the delta
//!   overlay (the zero-cost path the durability layer must not tax);
//! * **wal-buffered** — a data directory with [`FsyncPolicy::Never`]:
//!   every mutation appends a CRC-framed record to `wal.log` through
//!   the OS page cache, isolating the *logging* overhead (encode +
//!   write syscall) from device sync latency;
//! * **wal-fsync** — [`FsyncPolicy::Always`]: the full durable cost,
//!   one `fsync` per mutation. Reported for honesty but not gated —
//!   sync latency is a property of the machine, not the code.
//!
//! Compaction is disabled (`overlay_limit = MAX`) in every engine so
//! the comparison measures WAL appends, not snapshot writes.
//!
//! The second half measures recovery: a durable engine logs
//! `replay_records` mutations (no checkpoint, so all of them land in
//! the WAL), is dropped, and the reopen is timed — the metric is
//! milliseconds per 100 k replayed records. A never-restarted oracle
//! replays the same logical stream and the recovered engine must
//! answer a query battery **bit-identically** (`recovered_bit_identical`,
//! a truth guard in `scripts/bench_baselines.json`).
//!
//! The binary `durability_bench` emits the JSON report
//! `scripts/bench.sh` writes to `BENCH_durability.json`.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use wqrtq_data::synthetic::independent;
use wqrtq_engine::{Engine, FsyncPolicy, Request, Response, WeightSet};

/// Workload shape for the durability comparison.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityBenchConfig {
    /// Initial dataset cardinality.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Mutations in the throughput phase (each logs one WAL record).
    pub ops: usize,
    /// Rows per append.
    pub append_rows: usize,
    /// Worker threads per engine.
    pub workers: usize,
    /// WAL records accumulated for the recovery-replay measurement.
    pub replay_records: usize,
    /// Dataset and workload seed.
    pub seed: u64,
}

impl Default for DurabilityBenchConfig {
    fn default() -> Self {
        Self {
            n: 20_000,
            dim: 3,
            ops: 2_000,
            append_rows: 4,
            workers: 4,
            replay_records: 100_000,
            seed: 2015,
        }
    }
}

/// One engine's timed mutation run.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityTiming {
    /// Mutations executed.
    pub ops: usize,
    /// Total wall-clock.
    pub elapsed: Duration,
}

impl DurabilityTiming {
    /// Mutations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The timed recovery replay.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryTiming {
    /// WAL records the reopen replayed.
    pub records_replayed: u64,
    /// Wall-clock of the reopening `build()` (open + replay + attach).
    pub elapsed: Duration,
}

impl RecoveryTiming {
    /// Milliseconds of recovery per 100 k replayed records.
    pub fn ms_per_100k(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3 * 100_000.0 / (self.records_replayed as f64).max(1.0)
    }
}

/// The full comparison report.
#[derive(Clone, Debug)]
pub struct DurabilityComparison {
    /// Configuration measured.
    pub config: DurabilityBenchConfig,
    /// No data directory: the overlay-only mutation path.
    pub in_memory: DurabilityTiming,
    /// WAL appends through the page cache (`FsyncPolicy::Never`).
    pub wal_buffered: DurabilityTiming,
    /// WAL appends with one `fsync` per record (`FsyncPolicy::Always`).
    pub wal_fsync: DurabilityTiming,
    /// The timed reopen over `replay_records` logged mutations.
    pub recovery: RecoveryTiming,
    /// The recovered engine answered the query battery bit-identically
    /// to a never-restarted oracle and resumed the same epoch triple.
    pub recovered_bit_identical: bool,
}

impl DurabilityComparison {
    /// wal-buffered / in-memory throughput (the gated logging overhead).
    pub fn wal_vs_inmemory(&self) -> f64 {
        self.wal_buffered.ops_per_sec() / self.in_memory.ops_per_sec().max(1e-12)
    }

    /// wal-fsync / in-memory throughput (informational).
    pub fn wal_fsync_vs_inmemory(&self) -> f64 {
        self.wal_fsync.ops_per_sec() / self.in_memory.ops_per_sec().max(1e-12)
    }

    /// The report as a JSON object (hand-rolled; std-only workspace).
    pub fn to_json(&self) -> String {
        let timing = |t: &DurabilityTiming| {
            format!(
                "{{\"ops\": {}, \"seconds\": {:.6}, \"ops_per_sec\": {:.1}}}",
                t.ops,
                t.elapsed.as_secs_f64(),
                t.ops_per_sec(),
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"durability_wal_vs_inmemory\",\n",
                "  \"config\": {{\"n\": {}, \"dim\": {}, \"ops\": {}, ",
                "\"append_rows\": {}, \"workers\": {}, \"replay_records\": {}, \"seed\": {}}},\n",
                "  \"in_memory\": {},\n",
                "  \"wal_buffered\": {},\n",
                "  \"wal_fsync\": {},\n",
                "  \"wal_vs_inmemory\": {:.4},\n",
                "  \"wal_fsync_vs_inmemory\": {:.4},\n",
                "  \"recovery\": {{\"records_replayed\": {}, \"seconds\": {:.6}}},\n",
                "  \"recovery_ms_per_100k\": {:.2},\n",
                "  \"recovered_bit_identical\": {}\n",
                "}}"
            ),
            self.config.n,
            self.config.dim,
            self.config.ops,
            self.config.append_rows,
            self.config.workers,
            self.config.replay_records,
            self.config.seed,
            timing(&self.in_memory),
            timing(&self.wal_buffered),
            timing(&self.wal_fsync),
            self.wal_vs_inmemory(),
            self.wal_fsync_vs_inmemory(),
            self.recovery.records_replayed,
            self.recovery.elapsed.as_secs_f64(),
            self.recovery.ms_per_100k(),
            self.recovered_bit_identical,
        )
    }
}

/// One mutation of the workload (each logs exactly one WAL record).
enum Op {
    Register(Vec<f64>),
    Append(Vec<f64>),
    Delete(Vec<u32>),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// How many records the recovery stream accumulates before a register
/// record resets the overlay, mirroring the bound compaction enforces
/// on live traffic. Without it the COW memtable's `O(Δ)` append makes
/// the replay quadratic in the stream length, and "ms per 100 k
/// records" would stop being a rate.
const REREGISTER_EVERY: usize = 2_000;

/// The deterministic mutation stream all engines serve.
///
/// The throughput phase (`with_deletes = true`) is mostly appends with
/// every 8th op a delete of a previously appended row. The recovery
/// stream (`with_deletes = false`) is appends punctuated by a register
/// every [`REREGISTER_EVERY`] records — deletes cost `O(Δ)` in the
/// overlay whether they arrive live or by replay, and the replay
/// metric should price WAL decoding, not the overlay's complexity.
fn workload(cfg: &DurabilityBenchConfig, ops: usize, with_deletes: bool) -> Vec<Op> {
    let mut state = cfg.seed ^ 0x5eed_ba5e_d00d_f00d;
    let mut out = Vec::with_capacity(ops);
    let mut next_id = cfg.n as u32;
    let mut appended: Vec<u32> = Vec::new();
    for i in 0..ops {
        if with_deletes && i % 8 == 7 && !appended.is_empty() {
            let victim = appended.remove((splitmix(&mut state) as usize) % appended.len());
            out.push(Op::Delete(vec![victim]));
        } else if !with_deletes && i > 0 && i % REREGISTER_EVERY == 0 {
            let coords: Vec<f64> = (0..cfg.n * cfg.dim).map(|_| unit(&mut state)).collect();
            next_id = cfg.n as u32;
            appended.clear();
            out.push(Op::Register(coords));
        } else {
            let rows: Vec<f64> = (0..cfg.append_rows * cfg.dim)
                .map(|_| unit(&mut state))
                .collect();
            for r in 0..cfg.append_rows {
                appended.push(next_id + r as u32);
            }
            next_id += cfg.append_rows as u32;
            out.push(Op::Append(rows));
        }
    }
    out
}

fn apply(engine: &Engine, dim: usize, op: &Op) {
    match op {
        Op::Register(coords) => {
            engine
                .register_dataset("bench", dim, coords.clone())
                .expect("re-register");
        }
        Op::Append(rows) => {
            let r = engine.submit(Request::Append {
                dataset: "bench".into(),
                points: rows.clone(),
            });
            assert!(matches!(r, Response::Mutated { .. }), "append failed");
        }
        Op::Delete(ids) => {
            let r = engine.submit(Request::Delete {
                dataset: "bench".into(),
                ids: ids.clone(),
            });
            assert!(matches!(r, Response::Mutated { .. }), "delete failed");
        }
    }
}

/// A scratch directory under the system temp root, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str, seed: u64) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "wqrtq-durability-bench-{label}-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn builder(cfg: &DurabilityBenchConfig) -> wqrtq_engine::EngineBuilder {
    // Compaction off: a compaction checkpoints (snapshot + WAL reset),
    // and this bench isolates per-record logging and replay costs.
    Engine::builder()
        .workers(cfg.workers)
        .overlay_limit(usize::MAX)
}

fn timed_run(cfg: &DurabilityBenchConfig, engine: &Engine, ops: &[Op]) -> DurabilityTiming {
    engine
        .register_dataset(
            "bench",
            cfg.dim,
            independent(cfg.n, cfg.dim, cfg.seed).coords,
        )
        .expect("register");
    let start = Instant::now();
    for op in ops {
        apply(engine, cfg.dim, op);
    }
    DurabilityTiming {
        ops: ops.len(),
        elapsed: start.elapsed(),
    }
}

/// Queries whose bit-identical answers anchor the recovery truth guard.
fn battery(dim: usize) -> Vec<Request> {
    let uniform = vec![1.0 / dim as f64; dim];
    let mut skew = vec![0.5 / (dim as f64 - 1.0); dim];
    skew[0] = 0.5;
    vec![
        Request::TopK {
            dataset: "bench".into(),
            weight: uniform.clone(),
            k: 16,
        },
        Request::ReverseTopKBi {
            dataset: "bench".into(),
            weights: WeightSet::Inline(vec![uniform.clone(), skew.clone()]),
            q: vec![0.4; dim],
            k: 10,
        },
        Request::WhyNotExplain {
            dataset: "bench".into(),
            weight: skew,
            q: vec![0.2; dim],
            limit: 8,
        },
    ]
}

/// Runs the full comparison.
pub fn compare(cfg: &DurabilityBenchConfig) -> DurabilityComparison {
    let ops = workload(cfg, cfg.ops, true);

    // Untimed warmup: the first run otherwise pays allocator and CPU
    // cold-start that would skew the in-memory / durable ratio.
    timed_run(cfg, &builder(cfg).build(), &ops);

    let in_memory = timed_run(cfg, &builder(cfg).build(), &ops);

    let buffered_dir = ScratchDir::new("buffered", cfg.seed);
    let wal_buffered = timed_run(
        cfg,
        &builder(cfg)
            .data_dir(&buffered_dir.0)
            .fsync(FsyncPolicy::Never)
            .build(),
        &ops,
    );

    let fsync_dir = ScratchDir::new("fsync", cfg.seed);
    let wal_fsync = timed_run(
        cfg,
        &builder(cfg)
            .data_dir(&fsync_dir.0)
            .fsync(FsyncPolicy::Always)
            .build(),
        &ops,
    );

    // Recovery: log `replay_records` mutations (no checkpoint — they
    // all stay in the WAL), drop the engine, time the reopen.
    let recovery_dir = ScratchDir::new("recovery", cfg.seed);
    let replay_ops = workload(cfg, cfg.replay_records, false);
    {
        let engine = builder(cfg)
            .data_dir(&recovery_dir.0)
            .fsync(FsyncPolicy::Never)
            .build();
        engine
            .register_dataset(
                "bench",
                cfg.dim,
                independent(cfg.n, cfg.dim, cfg.seed).coords,
            )
            .expect("register");
        for op in &replay_ops {
            apply(&engine, cfg.dim, op);
        }
    }
    let start = Instant::now();
    let recovered = builder(cfg).data_dir(&recovery_dir.0).build();
    let elapsed = start.elapsed();
    let stats = recovered.metrics().catalog;
    assert_eq!(stats.recoveries, 1, "reopen must recover");
    let recovery = RecoveryTiming {
        records_replayed: stats.wal_replayed,
        elapsed,
    };

    let oracle = builder(cfg).build();
    oracle
        .register_dataset(
            "bench",
            cfg.dim,
            independent(cfg.n, cfg.dim, cfg.seed).coords,
        )
        .expect("register");
    for op in &replay_ops {
        apply(&oracle, cfg.dim, op);
    }
    let recovered_bit_identical = recovered.submit_batch(battery(cfg.dim))
        == oracle.submit_batch(battery(cfg.dim))
        && recovered.catalog().epoch("bench") == oracle.catalog().epoch("bench");

    DurabilityComparison {
        config: *cfg,
        in_memory,
        wal_buffered,
        wal_fsync,
        recovery,
        recovered_bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DurabilityBenchConfig {
        DurabilityBenchConfig {
            n: 1_500,
            dim: 3,
            ops: 60,
            append_rows: 2,
            workers: 2,
            replay_records: 300,
            seed: 11,
        }
    }

    #[test]
    fn comparison_runs_and_report_is_json_shaped() {
        let c = compare(&tiny());
        assert_eq!(c.in_memory.ops, 60);
        assert_eq!(c.wal_buffered.ops, 60);
        assert_eq!(c.wal_fsync.ops, 60);
        // register is checkpoint-free here, so every mutation plus the
        // register record itself is replayed.
        assert_eq!(c.recovery.records_replayed, 301);
        assert!(c.recovered_bit_identical, "recovery diverged from oracle");
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"wal_vs_inmemory\""));
        assert!(json.contains("\"recovery_ms_per_100k\""));
        assert!(json.contains("\"recovered_bit_identical\": true"));
        assert!(c.recovery.ms_per_100k() > 0.0);
    }
}
