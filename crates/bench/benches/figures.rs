//! Criterion benches tracking every experimental figure of the paper
//! (7–12) at reduced scale — one bench point per (figure, x-value,
//! algorithm). The `figures` binary regenerates the full printed tables;
//! these benches exist to catch performance regressions per commit.
//!
//! Scale: |P| = 5K (20K for the cardinality sweep), |S| = |Q| = 50, so
//! one full `cargo bench` pass stays in the minutes range while keeping
//! the paper's cost ordering (MQP < MWK < MQWK) visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wqrtq_bench::harness::{prepare, run_algorithm, Algorithm, Prepared};
use wqrtq_bench::params::{Config, DatasetKind, Profile};

fn bench_config(base: Config) -> Config {
    Config {
        n: 5_000,
        sample_size: 50,
        target_rank: 101,
        ..base
    }
}

fn bench_point(c: &mut Criterion, group: &str, x: String, prep: &Prepared) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    for algo in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::new(algo.name(), &x), &algo, |b, &algo| {
            b.iter(|| run_algorithm(prep, algo))
        });
    }
    g.finish();
}

fn fig07_dimensionality(c: &mut Criterion) {
    for d in [2usize, 3, 4, 5] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Independent,
            Profile::Quick,
        ));
        cfg.dim = d;
        let prep = prepare(&cfg);
        bench_point(c, "fig07_dimensionality", format!("d{d}"), &prep);
    }
}

fn fig08_cardinality(c: &mut Criterion) {
    for n in [2_000usize, 5_000, 10_000, 20_000] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Independent,
            Profile::Quick,
        ));
        cfg.n = n;
        let prep = prepare(&cfg);
        bench_point(c, "fig08_cardinality", format!("n{n}"), &prep);
    }
}

fn fig09_k(c: &mut Criterion) {
    for k in [10usize, 30, 50] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Anticorrelated,
            Profile::Quick,
        ));
        cfg.k = k;
        let prep = prepare(&cfg);
        bench_point(c, "fig09_k", format!("k{k}"), &prep);
    }
}

fn fig10_rank(c: &mut Criterion) {
    for rank in [11usize, 101, 1001] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Independent,
            Profile::Quick,
        ));
        cfg.target_rank = rank;
        let prep = prepare(&cfg);
        bench_point(c, "fig10_rank", format!("r{rank}"), &prep);
    }
}

fn fig11_wm(c: &mut Criterion) {
    for m in [1usize, 3, 5] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Independent,
            Profile::Quick,
        ));
        cfg.num_why_not = m;
        let prep = prepare(&cfg);
        bench_point(c, "fig11_wm", format!("m{m}"), &prep);
    }
}

fn fig12_sample_size(c: &mut Criterion) {
    for s in [25usize, 50, 100, 200] {
        let mut cfg = bench_config(Config::default_for(
            DatasetKind::Independent,
            Profile::Quick,
        ));
        cfg.sample_size = s;
        let prep = prepare(&cfg);
        bench_point(c, "fig12_sample_size", format!("s{s}"), &prep);
    }
}

fn fig09_real_surrogates(c: &mut Criterion) {
    // The Household/NBA panels of Figures 9–12 at their default point.
    for kind in [DatasetKind::Household, DatasetKind::Nba] {
        let cfg = bench_config(Config::default_for(kind, Profile::Quick));
        let prep = prepare(&cfg);
        bench_point(
            c,
            "fig09_real_surrogates",
            kind.name().replace('-', "_"),
            &prep,
        );
    }
}

criterion_group!(
    figures,
    fig07_dimensionality,
    fig08_cardinality,
    fig09_k,
    fig10_rank,
    fig11_wm,
    fig12_sample_size,
    fig09_real_surrogates,
);
criterion_main!(figures);
