//! Per-commit regression bench for the serving subsystem: one small
//! mixed stream served batched (engine) vs sequentially against a shared
//! index vs naively (index rebuilt per call). The `engine_bench` binary
//! produces the full JSON comparison; these points exist so `cargo
//! bench` catches serving-path regressions alongside the algorithm
//! ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wqrtq_bench::engine_bench::{compare, EngineBenchConfig};

fn serving_strategies(c: &mut Criterion) {
    let cfg = EngineBenchConfig {
        n: 5_000,
        dim: 3,
        batch: 32,
        rounds: 2,
        workers: 4,
        seed: 2015,
    };
    let mut g = c.benchmark_group("engine_serving");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    g.bench_function("full_comparison", |b| b.iter(|| compare(&cfg)));
    g.finish();
}

criterion_group!(engine, serving_strategies);
criterion_main!(engine);
