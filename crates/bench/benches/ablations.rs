//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `qp_vs_exact2d`    — MQP's quadratic program vs materialising the
//!   exact 2-D safe-region polygon (§4.2's scalability argument);
//! * `rank_tree_vs_scan` — counted R-tree rank queries vs a linear scan;
//! * `rta_vs_naive`     — RTA's threshold-buffer pruning vs per-weight
//!   evaluation for bichromatic reverse top-k;
//! * `reuse_vs_fresh`   — MQWK's frontier reuse vs re-running `FindIncom`
//!   per sampled query point (§4.4);
//! * `sampler`          — hyperplane sampling vs uniform simplex sampling
//!   (§4.3 issue (i): sample quality).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use wqrtq_core::incomparable::DominanceFrontier;
use wqrtq_core::mqp::mqp;
use wqrtq_core::mwk::mwk_with_frontier;
use wqrtq_core::penalty::Tolerances;
use wqrtq_core::safe_region::SafeRegion;
use wqrtq_core::sampling::WeightSampler;
use wqrtq_data::synthetic::independent;
use wqrtq_data::workload::{build_case, WorkloadSpec};
use wqrtq_geom::Weight;
use wqrtq_query::brtopk::{bichromatic_reverse_topk_naive, bichromatic_reverse_topk_rta};
use wqrtq_query::rank::{rank_of_point, rank_of_point_scan};
use wqrtq_rtree::RTree;

fn small_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    g
}

fn qp_vs_exact2d(c: &mut Criterion) {
    let ds = independent(20_000, 2, 7);
    let tree = RTree::bulk_load(2, &ds.coords);
    let spec = WorkloadSpec {
        k: 10,
        num_why_not: 3,
        target_rank: 101,
        rank_tolerance: 0.5,
    };
    let case = build_case(&tree, &spec, 1);
    let mut g = small_group(c, "ablation_qp_vs_exact2d");
    g.bench_function("qp", |b| {
        b.iter(|| mqp(&tree, &case.q, case.k, &case.why_not).unwrap())
    });
    g.bench_function("exact_polygon", |b| {
        b.iter(|| {
            let sr = SafeRegion::build(&tree, &case.q, case.k, &case.why_not).unwrap();
            sr.closest_point_2d()
        })
    });
    g.finish();
}

fn rank_tree_vs_scan(c: &mut Criterion) {
    let ds = independent(100_000, 3, 9);
    let tree = RTree::bulk_load(3, &ds.coords);
    let w = [0.3, 0.3, 0.4];
    let q = [0.1, 0.12, 0.09];
    let mut g = small_group(c, "ablation_rank_tree_vs_scan");
    g.bench_function("tree_counted", |b| b.iter(|| rank_of_point(&tree, &w, &q)));
    g.bench_function("linear_scan", |b| {
        b.iter(|| rank_of_point_scan(&ds.coords, &w, &q))
    });
    g.finish();
}

fn rta_vs_naive(c: &mut Criterion) {
    let ds = independent(20_000, 3, 11);
    let tree = RTree::bulk_load(3, &ds.coords);
    let points: Vec<wqrtq_geom::Point> = (0..ds.len())
        .map(|i| wqrtq_geom::Point::new(ds.point(i).to_vec()))
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let weights: Vec<Weight> = (0..200)
        .map(|_| {
            Weight::normalized(vec![
                rng.gen_range(0.05..1.0),
                rng.gen_range(0.05..1.0),
                rng.gen_range(0.05..1.0),
            ])
        })
        .collect();
    let q = [0.12, 0.1, 0.14];
    let mut g = small_group(c, "ablation_rta_vs_naive");
    g.bench_function("rta_buffered", |b| {
        b.iter(|| bichromatic_reverse_topk_rta(&tree, &weights, &q, 10))
    });
    g.bench_function("naive_per_weight", |b| {
        b.iter(|| bichromatic_reverse_topk_naive(&points, &weights, &q, 10))
    });
    g.finish();
}

fn reuse_vs_fresh(c: &mut Criterion) {
    // The inner loop of MQWK: evaluate 32 sampled query points, either
    // re-classifying the cached frontier (reuse) or re-traversing the
    // R-tree each time (fresh).
    let ds = independent(50_000, 3, 13);
    let tree = RTree::bulk_load(3, &ds.coords);
    let spec = WorkloadSpec::paper_default();
    let case = build_case(&tree, &spec, 3);
    let base = DominanceFrontier::from_tree(&tree, &case.q);
    let samples: Vec<Vec<f64>> = wqrtq_core::sampling::sample_query_points(
        &case.q.iter().map(|x| x * 0.9).collect::<Vec<_>>(),
        &case.q,
        32,
        17,
    );
    let tol = Tolerances::paper_default();
    let mut g = small_group(c, "ablation_reuse_vs_fresh");
    g.bench_function("reuse_frontier", |b| {
        b.iter(|| {
            for (i, qp) in samples.iter().enumerate() {
                let f = base.reclassify(qp);
                mwk_with_frontier(&f, case.k, &case.why_not, 50, &tol, i as u64);
            }
        })
    });
    g.bench_function("fresh_traversal", |b| {
        b.iter(|| {
            for (i, qp) in samples.iter().enumerate() {
                let f = DominanceFrontier::from_tree(&tree, qp);
                mwk_with_frontier(&f, case.k, &case.why_not, 50, &tol, i as u64);
            }
        })
    });
    g.finish();
}

fn sampler_quality(c: &mut Criterion) {
    // §4.3 issue (i): hyperplane samples tie q with a frontier point, so
    // they sit exactly where optimal replacements live; uniform simplex
    // samples mostly don't. We benchmark the *time* here; the penalty
    // advantage is asserted in the integration tests.
    let ds = independent(20_000, 3, 15);
    let tree = RTree::bulk_load(3, &ds.coords);
    let spec = WorkloadSpec::paper_default();
    let case = build_case(&tree, &spec, 5);
    let frontier = DominanceFrontier::from_tree(&tree, &case.q);
    let mut g = small_group(c, "ablation_sampler");
    g.bench_function("hyperplane_hit_and_run", |b| {
        b.iter(|| WeightSampler::new(&frontier, &case.why_not, 1).sample(400))
    });
    g.bench_function("uniform_simplex", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            (0..400)
                .map(|_| {
                    let raw: Vec<f64> =
                        (0..3).map(|_| -rng.gen_range(1e-12f64..1.0).ln()).collect();
                    Weight::normalized(raw)
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn brs_vs_ta_topk(c: &mut Criterion) {
    // Two independent top-k engines: best-first branch-and-bound over
    // the R-tree (BRS, the paper's default) vs the threshold algorithm
    // over per-dimension sorted lists.
    let ds = independent(100_000, 3, 21);
    let tree = RTree::bulk_load(3, &ds.coords);
    let lists = wqrtq_query::ta::SortedLists::new(&ds.coords, 3);
    let w = [0.25, 0.35, 0.4];
    let mut g = small_group(c, "ablation_brs_vs_ta");
    for k in [10usize, 100] {
        g.bench_function(format!("brs_k{k}"), |b| {
            b.iter(|| wqrtq_query::topk::topk(&tree, &w, k))
        });
        g.bench_function(format!("ta_k{k}"), |b| b.iter(|| lists.topk(&w, k)));
        g.bench_function(format!("scan_k{k}"), |b| {
            b.iter(|| wqrtq_query::topk::topk_scan(&ds.coords, &w, k))
        });
    }
    g.finish();
}

fn sampled_vs_exact2d_mwk(c: &mut Criterion) {
    // §4.3's quality-for-time trade, measured: the sampling MWK vs the
    // exact 2-D enumeration oracle.
    let ds = independent(10_000, 2, 23);
    let tree = RTree::bulk_load(2, &ds.coords);
    let spec = WorkloadSpec {
        k: 10,
        num_why_not: 2,
        target_rank: 101,
        rank_tolerance: 0.5,
    };
    let case = build_case(&tree, &spec, 9);
    let tol = Tolerances::paper_default();
    let mut g = small_group(c, "ablation_sampled_vs_exact2d");
    g.bench_function("sampled_s400", |b| {
        b.iter(|| {
            wqrtq_core::mwk::mwk(&tree, &case.q, case.k, &case.why_not, 400, &tol, 5).unwrap()
        })
    });
    g.bench_function("exact_enumeration", |b| {
        b.iter(|| {
            wqrtq_core::exact2d::mwk_exact_2d(&ds.coords, &case.q, case.k, &case.why_not, &tol)
        })
    });
    g.finish();
}

fn view_cache_vs_direct(c: &mut Criterion) {
    // Membership probes over a fan of similar weights: the cached-views
    // component (paper §2's cached top-k family) vs direct index probes.
    let ds = independent(50_000, 3, 29);
    let tree = RTree::bulk_load(3, &ds.coords);
    let q = [0.6, 0.6, 0.6]; // far from the top: probes are negative
    let weights: Vec<Weight> = (0..100)
        .map(|i| {
            let t = i as f64 / 100.0;
            Weight::normalized(vec![0.3 + 0.1 * t, 0.4 - 0.1 * t, 0.3])
        })
        .collect();
    let mut g = small_group(c, "ablation_view_cache");
    g.bench_function("cached_views", |b| {
        b.iter(|| {
            let mut cache = wqrtq_query::cache::TopkViewCache::new(10, 8);
            weights
                .iter()
                .filter(|w| cache.is_in_topk(&tree, w, &q))
                .count()
        })
    });
    g.bench_function("direct_probes", |b| {
        b.iter(|| {
            weights
                .iter()
                .filter(|w| wqrtq_query::rank::is_in_topk(&tree, w, &q, 10))
                .count()
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    qp_vs_exact2d,
    rank_tree_vs_scan,
    rta_vs_naive,
    reuse_vs_fresh,
    sampler_quality,
    brs_vs_ta_topk,
    sampled_vs_exact2d_mwk,
    view_cache_vs_direct,
);
criterion_main!(ablations);
