//! Infeasible-start primal–dual interior-point method for convex QP.
//!
//! Solves `min ½xᵀHx + cᵀx  s.t.  Gx ≤ h` (bounds folded into `G`) by
//! following the central path of the log-barrier reformulation — the same
//! algorithmic family as the paper's QuadProg reference (Monteiro & Adler,
//! *Interior path following primal–dual algorithms, part II: convex
//! quadratic programming*, Math. Program. 44, 1989).
//!
//! Per iteration the method solves one reduced KKT system
//! `(H + Gᵀ·diag(λ/s)·G)·Δx = r` via Cholesky, then takes a damped Newton
//! step that keeps the slacks `s` and multipliers `λ` strictly positive
//! (fraction-to-the-boundary rule).

use crate::problem::QpProblem;
use wqrtq_linalg::{dot, norm_inf, Cholesky, Matrix};

/// Tunables for the interior-point iteration.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Maximum Newton iterations.
    pub max_iter: u32,
    /// Convergence tolerance on KKT residuals and duality gap.
    pub tol: f64,
    /// Centring parameter σ ∈ (0, 1): fraction of the current duality gap
    /// targeted by the next step.
    pub sigma: f64,
    /// Fraction-to-the-boundary damping (close to but below 1).
    pub boundary_frac: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iter: 100,
            tol: 1e-9,
            sigma: 0.2,
            boundary_frac: 0.95,
        }
    }
}

/// Why the solver stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpStatus {
    /// All KKT conditions hold within tolerance.
    Optimal,
    /// Iteration budget exhausted; the returned point is the best iterate.
    MaxIterations,
}

/// A solver result.
#[derive(Clone, Debug)]
pub struct QpSolution {
    /// The (approximately) optimal point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: u32,
    /// Termination status.
    pub status: QpStatus,
    /// Maximum primal constraint violation at `x`.
    pub max_violation: f64,
    /// Final complementarity gap `sᵀλ / m`.
    pub gap: f64,
}

/// Failure modes surfaced to callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QpError {
    /// The reduced KKT system could not be factored even with
    /// regularisation (H not PSD or pathological constraints).
    NumericalFailure,
}

impl std::fmt::Display for QpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpError::NumericalFailure => write!(f, "KKT system could not be factored"),
        }
    }
}

impl std::error::Error for QpError {}

/// Solves a convex QP with the default options.
pub fn solve(problem: &QpProblem) -> Result<QpSolution, QpError> {
    solve_with(problem, SolverOptions::default())
}

/// Solves a convex QP with explicit options.
pub fn solve_with(problem: &QpProblem, opts: SolverOptions) -> Result<QpSolution, QpError> {
    let n = problem.dim();
    let (g, h) = problem.canonical_constraints();
    let m = g.rows();

    // Starting point: interior of the box for x; positive slacks and
    // multipliers regardless of primal feasibility (infeasible start).
    let mut x = problem.interior_start();
    let gx = g.matvec(&x);
    let mut s: Vec<f64> = h
        .iter()
        .zip(&gx)
        .map(|(hi, gi)| (hi - gi).max(1.0))
        .collect();
    let mut lambda = vec![1.0; m];

    let mut iterations = 0;
    let mut status = QpStatus::MaxIterations;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;

        // Residuals.
        let hx = problem.h().matvec(&x);
        let gt_lambda = g.matvec_t(&lambda);
        let r_dual: Vec<f64> = (0..n)
            .map(|i| hx[i] + problem.c()[i] + gt_lambda[i])
            .collect();
        let gx = g.matvec(&x);
        let r_prim: Vec<f64> = (0..m).map(|i| gx[i] + s[i] - h[i]).collect();
        let mu = dot(&s, &lambda) / m as f64;

        if norm_inf(&r_dual) < opts.tol && norm_inf(&r_prim) < opts.tol && mu < opts.tol {
            status = QpStatus::Optimal;
            break;
        }

        // Reduced KKT matrix M = H + Gᵀ·diag(λ/s)·G.
        let d: Vec<f64> = lambda.iter().zip(&s).map(|(l, si)| l / si).collect();
        let mut kkt = problem.h().add(&g.t_diag_self(&d));
        let rhs = reduced_rhs(problem, &g, &r_dual, &r_prim, &s, &lambda, opts.sigma * mu);
        let chol = match Cholesky::factor_regularized(&kkt, 1e-12, 14) {
            Ok(c) => c,
            Err(_) => {
                // One more, heavier, attempt before reporting failure.
                kkt.add_diag(1e-8 * kkt.norm_inf().max(1.0));
                Cholesky::factor_regularized(&kkt, 1e-8, 10)
                    .map_err(|_| QpError::NumericalFailure)?
            }
        };
        let dx = chol.solve(&rhs);

        // Back-substitute: Δs = −r_prim − G·Δx; Δλ from complementarity.
        let g_dx = g.matvec(&dx);
        let ds: Vec<f64> = (0..m).map(|i| -r_prim[i] - g_dx[i]).collect();
        let target = opts.sigma * mu;
        let dlambda: Vec<f64> = (0..m)
            .map(|i| (target - lambda[i] * s[i] - lambda[i] * ds[i]) / s[i])
            .collect();

        // Fraction-to-the-boundary step length.
        let mut alpha: f64 = 1.0;
        for i in 0..m {
            if ds[i] < 0.0 {
                alpha = alpha.min(-s[i] / ds[i]);
            }
            if dlambda[i] < 0.0 {
                alpha = alpha.min(-lambda[i] / dlambda[i]);
            }
        }
        alpha = (alpha * opts.boundary_frac).min(1.0);

        for i in 0..n {
            x[i] += alpha * dx[i];
        }
        for i in 0..m {
            s[i] += alpha * ds[i];
            lambda[i] += alpha * dlambda[i];
        }
    }

    let gap = dot(&s, &lambda) / m as f64;
    Ok(QpSolution {
        objective: problem.objective(&x),
        max_violation: problem.max_violation(&x),
        x,
        iterations,
        status,
        gap,
    })
}

/// Right-hand side of the reduced KKT system:
/// `−r_dual + Gᵀ·diag(1/s)·(σμ·e − Λ·S·e − Λ·(−r_prim))` rearranged so that
/// the elimination above is exact.
fn reduced_rhs(
    problem: &QpProblem,
    g: &Matrix,
    r_dual: &[f64],
    r_prim: &[f64],
    s: &[f64],
    lambda: &[f64],
    target: f64,
) -> Vec<f64> {
    let _ = problem;
    let m = s.len();
    // Eliminating Δs and Δλ from the Newton system gives
    // (H + GᵀDG)·Δx = −r_dual + Gᵀ·w with w_i = (r_cent,i − λ_i·r_prim,i)/s_i
    // and r_cent,i = λ_i·s_i − σμ.
    let w: Vec<f64> = (0..m)
        .map(|i| (lambda[i] * s[i] - target - lambda[i] * r_prim[i]) / s[i])
        .collect();
    let gt_w = g.matvec_t(&w);
    r_dual.iter().zip(&gt_w).map(|(rd, gw)| -rd + gw).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn projection_onto_box() {
        // Closest point to (5, −3) in [0,1]² is (1, 0).
        let mut p = QpProblem::least_change(&[5.0, -3.0]);
        p.set_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, QpStatus::Optimal);
        assert_close(&sol.x, &[1.0, 0.0], 1e-6);
        assert!(sol.max_violation < 1e-8);
    }

    #[test]
    fn projection_onto_half_space() {
        // Closest point to (1, 1) under x + y ≤ 1 is (0.5, 0.5).
        let mut p = QpProblem::least_change(&[1.0, 1.0]);
        p.add_inequality(vec![1.0, 1.0], 1.0);
        p.set_bounds(vec![-10.0, -10.0], vec![10.0, 10.0]);
        let sol = solve(&p).unwrap();
        assert_close(&sol.x, &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn inactive_constraints_leave_target_unchanged() {
        let mut p = QpProblem::least_change(&[0.25, 0.75]);
        p.add_inequality(vec![1.0, 1.0], 5.0);
        p.set_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let sol = solve(&p).unwrap();
        assert_close(&sol.x, &[0.25, 0.75], 1e-6);
        assert!(sol.objective < -0.625 + 1e-6); // ‖x−q‖² − ‖q‖² at optimum
    }

    #[test]
    fn paper_figure_5b_refinement() {
        // Safe region constraints of Figure 5(b): f(w1, x) ≤ f(w1, p4)=3.6
        // and f(w4, x) ≤ f(w4, p7)=3.4 with w1=(0.1,0.9), w4=(0.9,0.1),
        // box [0, q] with q=(4,4). Analytic optimum: both constraints
        // active → q′ = (3.375, 3.625).
        let mut p = QpProblem::least_change(&[4.0, 4.0]);
        p.add_inequality(vec![0.1, 0.9], 3.6);
        p.add_inequality(vec![0.9, 0.1], 3.4);
        p.set_bounds(vec![0.0, 0.0], vec![4.0, 4.0]);
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, QpStatus::Optimal);
        assert_close(&sol.x, &[3.375, 3.625], 1e-6);
    }

    #[test]
    fn degenerate_box_pins_variables() {
        // lb = ub forces x exactly.
        let mut p = QpProblem::least_change(&[9.0, 9.0]);
        p.set_bounds(vec![2.0, 3.0], vec![2.0, 3.0]);
        let sol = solve(&p).unwrap();
        assert_close(&sol.x, &[2.0, 3.0], 1e-5);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut p = QpProblem::least_change(&[2.0, 2.0]);
        for _ in 0..8 {
            p.add_inequality(vec![1.0, 0.0], 1.0); // x0 ≤ 1, repeated
        }
        p.set_bounds(vec![0.0, 0.0], vec![5.0, 5.0]);
        let sol = solve(&p).unwrap();
        assert_close(&sol.x, &[1.0, 2.0], 1e-6);
    }

    #[test]
    fn higher_dimensional_projection() {
        // Project (2,2,2,2,2) onto the simplex-ish region Σx ≤ 1, x ≥ 0:
        // optimum spreads equally: x = (0.2, 0.2, 0.2, 0.2, 0.2).
        let mut p = QpProblem::least_change(&[2.0; 5]);
        p.add_inequality(vec![1.0; 5], 1.0);
        p.set_bounds(vec![0.0; 5], vec![10.0; 5]);
        let sol = solve(&p).unwrap();
        assert_close(&sol.x, &[0.2; 5], 1e-6);
    }

    #[test]
    fn kkt_stationarity_holds_at_reported_optimum() {
        let mut p = QpProblem::least_change(&[3.0, 1.0, 2.0]);
        p.add_inequality(vec![1.0, 1.0, 1.0], 2.0);
        p.add_inequality(vec![1.0, 0.0, 0.0], 0.8);
        p.set_bounds(vec![0.0; 3], vec![3.0; 3]);
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, QpStatus::Optimal);
        assert!(sol.max_violation < 1e-8);
        assert!(sol.gap < 1e-8);
        // Optimality sanity: perturbations inside the feasible set do not
        // materially improve the objective.
        let deltas = [
            [0.01, 0.0, 0.0],
            [-0.01, 0.0, 0.0],
            [0.0, 0.01, -0.01],
            [0.0, -0.01, 0.01],
        ];
        for d in deltas {
            let y: Vec<f64> = sol.x.iter().zip(d).map(|(xi, di)| xi + di).collect();
            if p.max_violation(&y) <= 1e-12 {
                assert!(p.objective(&y) >= sol.objective - 1e-7);
            }
        }
    }

    #[test]
    fn general_spd_objective_not_just_least_change() {
        // H = [[4, 1], [1, 3]], c = (−1, −2), x + y ≤ 0.6, x, y ≥ 0.
        // Verified against a fine grid search.
        let h = wqrtq_linalg::Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let mut p = QpProblem::new(h, vec![-1.0, -2.0]);
        p.add_inequality(vec![1.0, 1.0], 0.6);
        p.set_bounds(vec![0.0, 0.0], vec![10.0, 10.0]);
        let sol = solve(&p).unwrap();
        assert_eq!(sol.status, QpStatus::Optimal);
        let mut best = f64::INFINITY;
        let mut arg = [0.0, 0.0];
        for i in 0..=600 {
            for j in 0..=(600 - i) {
                let x = [i as f64 / 1000.0, j as f64 / 1000.0];
                let v = p.objective(&x);
                if v < best {
                    best = v;
                    arg = x;
                }
            }
        }
        assert!(
            sol.objective <= best + 1e-6,
            "{} vs grid {best}",
            sol.objective
        );
        assert_close(&sol.x, &arg, 2e-3);
    }

    #[test]
    fn options_control_iteration_budget() {
        let mut p = QpProblem::least_change(&[1.0, 1.0]);
        p.add_inequality(vec![1.0, 1.0], 1.0);
        p.set_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let opts = SolverOptions {
            max_iter: 2,
            ..Default::default()
        };
        let sol = solve_with(&p, opts).unwrap();
        assert_eq!(sol.status, QpStatus::MaxIterations);
        assert_eq!(sol.iterations, 2);
    }
}
