//! QP problem construction and validation.

use wqrtq_linalg::Matrix;

/// A convex quadratic program
/// `min ½xᵀHx + cᵀx  s.t.  Gx ≤ h,  lb ≤ x ≤ ub`.
///
/// Box bounds are kept separate from general inequalities so callers can
/// express the paper's `0 ≤ q′ ≤ q` range directly; the solver folds them
/// into the constraint set internally.
#[derive(Clone, Debug)]
pub struct QpProblem {
    h: Matrix,
    c: Vec<f64>,
    g_rows: Vec<Vec<f64>>,
    g_rhs: Vec<f64>,
    lb: Option<Vec<f64>>,
    ub: Option<Vec<f64>>,
}

impl QpProblem {
    /// Creates a problem with objective `½xᵀHx + cᵀx`.
    ///
    /// # Panics
    /// Panics if `H` is not square, does not match `c`, or is asymmetric.
    pub fn new(h: Matrix, c: Vec<f64>) -> Self {
        assert_eq!(h.rows(), h.cols(), "H must be square");
        assert_eq!(h.rows(), c.len(), "H and c dimension mismatch");
        for i in 0..h.rows() {
            for j in (i + 1)..h.cols() {
                assert!((h[(i, j)] - h[(j, i)]).abs() < 1e-9, "H must be symmetric");
            }
        }
        Self {
            h,
            c,
            g_rows: Vec::new(),
            g_rhs: Vec::new(),
            lb: None,
            ub: None,
        }
    }

    /// The paper's MQP objective: minimise `‖x − target‖²` (H = 2I,
    /// c = −2·target as in §4.2).
    pub fn least_change(target: &[f64]) -> Self {
        let n = target.len();
        assert!(n > 0, "target must be non-empty");
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            h[(i, i)] = 2.0;
        }
        let c = target.iter().map(|t| -2.0 * t).collect();
        Self::new(h, c)
    }

    /// Adds a linear inequality `row·x ≤ rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or non-finite coefficients.
    pub fn add_inequality(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        assert_eq!(row.len(), self.dim(), "constraint dimension mismatch");
        assert!(
            row.iter().all(|v| v.is_finite()) && rhs.is_finite(),
            "constraint coefficients must be finite"
        );
        self.g_rows.push(row);
        self.g_rhs.push(rhs);
        self
    }

    /// Sets the box `lb ≤ x ≤ ub`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if any `lb[i] > ub[i]`.
    pub fn set_bounds(&mut self, lb: Vec<f64>, ub: Vec<f64>) -> &mut Self {
        assert_eq!(lb.len(), self.dim(), "lb dimension mismatch");
        assert_eq!(ub.len(), self.dim(), "ub dimension mismatch");
        assert!(
            lb.iter().zip(&ub).all(|(l, u)| l <= u),
            "lb must not exceed ub"
        );
        self.lb = Some(lb);
        self.ub = Some(ub);
        self
    }

    /// Number of decision variables.
    #[inline]
    pub fn dim(&self) -> usize {
        self.c.len()
    }

    /// Number of general (non-bound) inequality rows.
    #[inline]
    pub fn num_inequalities(&self) -> usize {
        self.g_rows.len()
    }

    /// Objective value at `x`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let hx = self.h.matvec(x);
        0.5 * wqrtq_linalg::dot(x, &hx) + wqrtq_linalg::dot(&self.c, x)
    }

    /// Maximum constraint violation at `x` (0 when feasible), across both
    /// general inequalities and bounds.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut v: f64 = 0.0;
        for (row, rhs) in self.g_rows.iter().zip(&self.g_rhs) {
            v = v.max(wqrtq_linalg::dot(row, x) - rhs);
        }
        if let Some(lb) = &self.lb {
            for (l, xi) in lb.iter().zip(x) {
                v = v.max(l - xi);
            }
        }
        if let Some(ub) = &self.ub {
            for (u, xi) in ub.iter().zip(x) {
                v = v.max(xi - u);
            }
        }
        v
    }

    /// Quadratic term.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// Linear term.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Lower bounds, if set.
    pub fn lb(&self) -> Option<&[f64]> {
        self.lb.as_deref()
    }

    /// Upper bounds, if set.
    pub fn ub(&self) -> Option<&[f64]> {
        self.ub.as_deref()
    }

    /// Folds general rows and bounds into a single `(G, h)` pair for the
    /// solver: one `≤` row per inequality, `−x ≤ −lb`, `x ≤ ub`.
    pub(crate) fn canonical_constraints(&self) -> (Matrix, Vec<f64>) {
        let n = self.dim();
        let extra = self.lb.iter().count() * n + self.ub.iter().count() * n;
        let m = self.g_rows.len() + extra;
        assert!(m > 0, "problem must have at least one constraint");
        let mut g = Matrix::zeros(m, n);
        let mut rhs = Vec::with_capacity(m);
        let mut r = 0;
        for (row, b) in self.g_rows.iter().zip(&self.g_rhs) {
            g.row_mut(r).copy_from_slice(row);
            rhs.push(*b);
            r += 1;
        }
        if let Some(lb) = &self.lb {
            for (i, l) in lb.iter().enumerate() {
                g[(r, i)] = -1.0;
                rhs.push(-l);
                r += 1;
            }
        }
        if let Some(ub) = &self.ub {
            for (i, u) in ub.iter().enumerate() {
                g[(r, i)] = 1.0;
                rhs.push(*u);
                r += 1;
            }
        }
        (g, rhs)
    }

    /// A point in the (relative) interior of the box, used as the IPM
    /// starting point; the origin when no bounds are set.
    pub(crate) fn interior_start(&self) -> Vec<f64> {
        let n = self.dim();
        match (&self.lb, &self.ub) {
            (Some(lb), Some(ub)) => lb.iter().zip(ub).map(|(l, u)| 0.5 * (l + u)).collect(),
            (Some(lb), None) => lb.iter().map(|l| l + 1.0).collect(),
            (None, Some(ub)) => ub.iter().map(|u| u - 1.0).collect(),
            (None, None) => vec![0.0; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_change_objective_is_squared_distance_shifted() {
        let p = QpProblem::least_change(&[4.0, 4.0]);
        // ½xᵀ(2I)x − 2q·x = ‖x−q‖² − ‖q‖².
        let x = [3.0, 2.5];
        let expected = (1.0f64 + 1.5 * 1.5) - 32.0;
        assert!((p.objective(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn max_violation_accounts_for_all_constraint_kinds() {
        let mut p = QpProblem::least_change(&[1.0, 1.0]);
        p.add_inequality(vec![1.0, 1.0], 1.0);
        p.set_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(p.max_violation(&[0.5, 0.25]), 0.0);
        assert!((p.max_violation(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[-0.5, 0.0]) - 0.5).abs() < 1e-12);
        assert!((p.max_violation(&[0.0, 1.25]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn canonical_constraints_shape() {
        let mut p = QpProblem::least_change(&[1.0, 2.0]);
        p.add_inequality(vec![0.5, 0.5], 3.0);
        p.set_bounds(vec![0.0, 0.0], vec![1.0, 2.0]);
        let (g, h) = p.canonical_constraints();
        assert_eq!(g.rows(), 1 + 2 + 2);
        assert_eq!(h.len(), 5);
        assert_eq!(g.row(0), &[0.5, 0.5]);
        assert_eq!(h[0], 3.0);
        // Bound rows: −x0 ≤ 0, −x1 ≤ 0, x0 ≤ 1, x1 ≤ 2.
        assert_eq!(g.row(1), &[-1.0, 0.0]);
        assert_eq!(h[3], 1.0);
        assert_eq!(h[4], 2.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_h_rejected() {
        let h = Matrix::from_rows(2, 2, vec![1.0, 0.5, 0.0, 1.0]);
        let _ = QpProblem::new(h, vec![0.0, 0.0]);
    }

    #[test]
    fn interior_start_midpoint() {
        let mut p = QpProblem::least_change(&[4.0, 4.0]);
        p.set_bounds(vec![0.0, 0.0], vec![4.0, 4.0]);
        assert_eq!(p.interior_start(), vec![2.0, 2.0]);
    }
}
