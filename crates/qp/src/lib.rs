#![warn(missing_docs)]

//! Convex quadratic programming for WQRTQ.
//!
//! MQP (Algorithm 1 of the paper) finds the refined query point `q′` with
//! minimum penalty by solving
//!
//! ```text
//! minimize   ½·xᵀH·x + cᵀx        (H = 2I, c = −2q  ⇒  ‖x − q‖²)
//! subject to G·x ≤ h              (one row per why-not weighting vector)
//!            lb ≤ x ≤ ub          (0 ≤ q′ ≤ q)
//! ```
//!
//! The paper uses the interior path-following primal–dual algorithm of
//! Monteiro & Adler (their reference \[26\]); this crate implements the same
//! family: an infeasible-start primal–dual interior-point method with a
//! centring parameter and fraction-to-the-boundary steps, using the
//! Cholesky kernel from `wqrtq-linalg` for the reduced KKT systems.

pub mod problem;
pub mod solver;

pub use problem::QpProblem;
pub use solver::{solve, QpError, QpSolution, QpStatus, SolverOptions};
