//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the record
//! checksum of the on-disk formats.
//!
//! The wire protocol rides TCP, whose checksums make an extra CRC
//! redundant; a WAL record or snapshot read back after a crash has no
//! such transport, so every durable payload carries one of these and a
//! mismatch marks the record as torn/corrupt instead of decoding
//! garbage. The byte-at-a-time table is built at compile time — no
//! runtime initialisation, no dependencies.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (IEEE, as used by zlib/PNG/Ethernet).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(checksum(b""), 0x0000_0000);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"wqrtq wal record payload".to_vec();
        let crc = checksum(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum(&flipped), crc, "byte {byte} bit {bit}");
            }
        }
    }
}
