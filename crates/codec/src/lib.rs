#![warn(missing_docs)]

//! # WQRTQ codec — length-prefixed binary framing and byte primitives
//!
//! The one vocabulary both the wire protocol (`wqrtq-server`) and the
//! durability layer (`wqrtq-engine`'s WAL + snapshots) speak: a
//! **frame** is a little-endian `u32` payload length followed by exactly
//! that many payload bytes, and payloads are built from fixed-width
//! little-endian integers, `f64`s by IEEE-754 bit pattern (so values
//! survive the round trip **bit-identically**), and length-prefixed
//! strings and float vectors.
//!
//! The length prefix is checked against a maximum before a single
//! payload byte is read, so a hostile or corrupt length can neither
//! allocate unbounded memory nor desynchronise the stream silently, and
//! every [`ByteReader::take_str`]-style accessor validates the claimed
//! length against the bytes that actually remain before allocating, so
//! a truncated or malicious payload fails with a typed [`DecodeError`]
//! instead of aborting on an impossible `Vec::with_capacity`.
//!
//! [`crc32`] adds the integrity half the on-disk formats need on top of
//! framing: TCP already checksums the wire, but a log record read back
//! from disk after a crash has no transport vouching for it.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

pub mod crc32;

/// Framing-layer failures.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// A frame announced a payload larger than the negotiated maximum.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// Maximum this endpoint accepts.
        max: usize,
    },
    /// The stream ended in the middle of a frame (abrupt disconnect).
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload). The caller flushes.
///
/// # Errors
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload into `buf` (cleared and reused across
/// calls). Returns `Ok(false)` on a clean end-of-stream *at a frame
/// boundary* — the peer closed or half-closed after a complete frame,
/// the normal end of a session.
///
/// # Errors
/// [`FrameError::Oversized`] before any payload byte is read when the
/// prefix exceeds `max_len`; [`FrameError::Truncated`] when the stream
/// dies mid-frame; [`FrameError::Io`] on transport failure.
pub fn read_frame(
    r: &mut impl Read,
    max_len: usize,
    buf: &mut Vec<u8>,
) -> Result<bool, FrameError> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_clean_eof(r, &mut prefix)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    buf.clear();
    buf.resize(len, 0);
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Splits the next complete frame off the front of a receive buffer
/// without copying: returns `Ok(Some((consumed, payload_range)))` when
/// `buf` starts with a whole frame (`consumed` = prefix + payload bytes,
/// `payload_range` indexes the payload inside `buf`), `Ok(None)` when
/// more bytes are needed. This is the nonblocking twin of
/// [`read_frame`]: the event-loop server reads a burst into a reusable
/// arena and decodes every complete frame in place.
///
/// # Errors
/// [`FrameError::Oversized`] as soon as the 4-byte prefix announces a
/// payload beyond `max_len` — before waiting for (or buffering) any of
/// that payload.
pub fn split_frame(
    buf: &[u8],
    max_len: usize,
) -> Result<Option<(usize, std::ops::Range<usize>)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((4 + len, 4..4 + len)))
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF,
/// returns `Ok(false)`) from "some bytes then EOF" (truncation).
pub fn read_exact_or_clean_eof(r: &mut impl Read, out: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < out.len() {
        match r.read(&mut out[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// A payload could not be decoded into a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    what: &'static str,
}

impl DecodeError {
    /// A decode failure naming the field (or structure) that broke.
    pub fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only payload builder (little-endian integers, `f64` by bit
/// pattern, length-prefixed strings and vectors).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by IEEE-754 bit pattern (lossless round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` vector.
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// The finished payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked sequential reader over a frame payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads `buf` from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(what));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn take_usize(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        usize::try_from(self.take_u64(what)?).map_err(|_| DecodeError::new(what))
    }

    /// Reads an `f64` by bit pattern.
    pub fn take_f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string. The claimed length is
    /// validated against the remaining payload before any allocation.
    pub fn take_str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.take_usize(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new(what))
    }

    /// Reads a length-prefixed `f64` vector, validating the claimed
    /// element count against the remaining payload before allocating.
    pub fn take_f64s(&mut self, what: &'static str) -> Result<Vec<f64>, DecodeError> {
        let len = self.take_usize(what)?;
        if len > self.remaining() / 8 {
            return Err(DecodeError::new(what));
        }
        (0..len).map(|_| self.take_f64(what)).collect()
    }

    /// Reads a length-prefixed count for a collection whose elements
    /// occupy at least `min_elem_bytes` each, rejecting counts that
    /// cannot fit in the remaining payload.
    pub fn take_count(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, DecodeError> {
        let len = self.take_usize(what)?;
        if len > self.remaining() / min_elem_bytes.max(1) {
            return Err(DecodeError::new(what));
        }
        Ok(len)
    }

    /// Asserts the payload is fully consumed (trailing garbage is a
    /// protocol violation, not silently ignored).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::new("trailing bytes after message"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, 1024, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, 1024, &mut buf).unwrap());
        assert!(buf.is_empty());
        assert!(!read_frame(&mut r, 1024, &mut buf).unwrap());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut buf = Vec::new();
        match read_frame(&mut Cursor::new(wire), 64, &mut buf) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_detected() {
        // Prefix promises 10 bytes, stream holds 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), 64, &mut buf),
            Err(FrameError::Truncated)
        ));
        // Stream dies inside the prefix itself.
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![1u8, 0]), 64, &mut buf),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn split_frame_extracts_whole_frames_and_waits_for_partials() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        // Whole first frame available.
        let (consumed, payload) = split_frame(&wire, 1024).unwrap().unwrap();
        assert_eq!(consumed, 9);
        assert_eq!(&wire[payload], b"hello");
        // Empty frame right behind it.
        let (consumed2, payload2) = split_frame(&wire[consumed..], 1024).unwrap().unwrap();
        assert_eq!(consumed2, 4);
        assert!(payload2.is_empty());
        // Every strict prefix of a frame is "need more bytes", never an
        // error — partial reads must park, not kill the connection.
        for cut in 0..wire.len().min(8) {
            assert!(
                split_frame(&wire[..cut], 1024).unwrap().is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn split_frame_rejects_oversized_prefix_without_buffering_payload() {
        let wire = (u32::MAX).to_le_bytes();
        assert!(matches!(
            split_frame(&wire, 64),
            Err(FrameError::Oversized { len, max: 64 }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn byte_codec_roundtrip_preserves_f64_bits() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_str("catalog");
        w.put_f64s(&[1.5, f64::MIN_POSITIVE, 2.0f64.powi(-1074)]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert_eq!(r.take_u64("b").unwrap(), u64::MAX);
        assert_eq!(r.take_f64("c").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_str("d").unwrap(), "catalog");
        let xs = r.take_f64s("e").unwrap();
        assert_eq!(xs[2].to_bits(), 2.0f64.powi(-1074).to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn hostile_lengths_cannot_force_allocation() {
        // A tiny payload claiming a billion floats must fail cleanly.
        let mut w = ByteWriter::new();
        w.put_u64(1_000_000_000);
        let buf = w.into_vec();
        assert!(ByteReader::new(&buf).take_f64s("floats").is_err());
        assert!(ByteReader::new(&buf).take_str("string").is_err());
        assert!(ByteReader::new(&buf).take_count(8, "rows").is_err());
    }

    #[test]
    fn trailing_bytes_are_a_protocol_violation() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        r.take_u8("x").unwrap();
        assert!(r.finish().is_err());
    }
}
