//! The Threshold Algorithm (TA) over per-dimension sorted lists — the
//! classic alternative top-k engine the paper's related work surveys
//! (§2: Onion, PREFER, LPTA all belong to this sorted-access family,
//! with BRS \[29\] being the R-tree branch-and-bound alternative this
//! crate uses by default).
//!
//! TA maintains one list per dimension, sorted ascending (smaller is
//! better). It round-robins *sorted accesses* across the lists, resolves
//! each newly seen point with a *random access* to its full coordinates,
//! and stops once the k-th best score seen is no worse than the
//! threshold `T = Σ wᵢ·(last value seen in list i)` — no unseen point
//! can beat `T`. The `ablation_brs_vs_ta` bench compares the two engines.

use std::collections::BinaryHeap;
use wqrtq_geom::score;
use wqrtq_rtree::OrdF64;

/// A per-dimension sorted-list index (the TA access structure).
#[derive(Clone, Debug)]
pub struct SortedLists {
    dim: usize,
    /// Flat row-major coordinates for random access.
    coords: Vec<f64>,
    /// Per dimension: point ids ordered by ascending coordinate.
    lists: Vec<Vec<u32>>,
}

/// Work counters for one TA run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaStats {
    /// Sorted accesses performed (list positions consumed).
    pub sorted_accesses: usize,
    /// Random accesses performed (distinct points scored).
    pub random_accesses: usize,
}

impl SortedLists {
    /// Builds the index over a flat `n × dim` buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim` or `dim`
    /// is zero.
    pub fn new(points: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
        let n = points.len() / dim;
        let mut lists = Vec::with_capacity(dim);
        for d in 0..dim {
            let mut ids: Vec<u32> = (0..n as u32).collect();
            ids.sort_by(|&a, &b| {
                points[a as usize * dim + d].total_cmp(&points[b as usize * dim + d])
            });
            lists.push(ids);
        }
        Self {
            dim,
            coords: points.to_vec(),
            lists,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of a point.
    #[inline]
    pub fn point(&self, id: u32) -> &[f64] {
        let i = id as usize;
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// `TOPk(w)` via the threshold algorithm. Results are in ascending
    /// score order (ties broken by id for determinism).
    ///
    /// # Panics
    /// Panics if `w.len() != dim`.
    pub fn topk(&self, w: &[f64], k: usize) -> Vec<(u32, f64)> {
        self.topk_with_stats(w, k).0
    }

    /// [`SortedLists::topk`] with access counters.
    pub fn topk_with_stats(&self, w: &[f64], k: usize) -> (Vec<(u32, f64)>, TaStats) {
        assert_eq!(w.len(), self.dim, "weight dimension mismatch");
        let n = self.len();
        let k = k.min(n);
        let mut stats = TaStats::default();
        if k == 0 {
            return (Vec::new(), stats);
        }

        let mut seen = vec![false; n];
        // Max-heap of the current k best: (score, id) with largest on top.
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();
        let mut depth = 0usize;
        'outer: while depth < n {
            // One round of sorted accesses at this depth.
            for (d, list) in self.lists.iter().enumerate() {
                // Dimensions with zero weight contribute nothing to the
                // threshold and can be skipped entirely.
                if w[d] == 0.0 {
                    continue;
                }
                let id = list[depth];
                stats.sorted_accesses += 1;
                if !seen[id as usize] {
                    seen[id as usize] = true;
                    stats.random_accesses += 1;
                    let s = score(w, self.point(id));
                    if best.len() < k {
                        best.push((OrdF64(s), id));
                    } else if let Some(&(OrdF64(worst), _)) = best.peek() {
                        if s < worst {
                            best.pop();
                            best.push((OrdF64(s), id));
                        }
                    }
                }
            }
            depth += 1;
            // Threshold: the best score any unseen point could attain.
            let threshold: f64 = (0..self.dim)
                .filter(|&d| w[d] > 0.0)
                .map(|d| {
                    let id = self.lists[d][depth - 1];
                    w[d] * self.coords[id as usize * self.dim + d]
                })
                .sum();
            if best.len() == k {
                if let Some(&(OrdF64(worst), _)) = best.peek() {
                    if worst <= threshold {
                        break 'outer;
                    }
                }
            }
        }

        let mut out: Vec<(u32, f64)> = best.into_iter().map(|(OrdF64(s), id)| (id, s)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::topk_scan;
    use proptest::prelude::*;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn ta_matches_figure_1_topk() {
        let ta = SortedLists::new(&fig_points(), 2);
        let ids: Vec<u32> = ta.topk(&[0.1, 0.9], 3).iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 3]); // p1, p2, p4 (paper §3)
    }

    #[test]
    fn ta_matches_scan_on_paper_data() {
        let pts = fig_points();
        let ta = SortedLists::new(&pts, 2);
        for k in 0..=7 {
            let a = ta.topk(&[0.4, 0.6], k);
            let b = topk_scan(&pts, &[0.4, 0.6], k);
            let sa: Vec<f64> = a.iter().map(|(_, s)| *s).collect();
            let sb: Vec<f64> = b.iter().map(|(_, s)| *s).collect();
            assert_eq!(sa, sb, "k = {k}");
        }
    }

    #[test]
    fn ta_terminates_early_on_selective_queries() {
        // 5 000 points, k = 5: TA should resolve far fewer than n points.
        let mut pts = Vec::new();
        let mut state = 7u64;
        for _ in 0..5_000 {
            for _ in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                pts.push((state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        let ta = SortedLists::new(&pts, 3);
        let (res, stats) = ta.topk_with_stats(&[0.3, 0.3, 0.4], 5);
        assert_eq!(res.len(), 5);
        assert!(
            stats.random_accesses < 2_500,
            "TA did {} random accesses of 5000 points",
            stats.random_accesses
        );
        // Cross-check against the scan baseline.
        let brute = topk_scan(&pts, &[0.3, 0.3, 0.4], 5);
        for (a, b) in res.iter().zip(&brute) {
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_weight_dimensions_are_skipped() {
        let pts = fig_points();
        let ta = SortedLists::new(&pts, 2);
        let (res, stats) = ta.topk_with_stats(&[1.0, 0.0], 2);
        // Only the price list is accessed.
        assert!(stats.sorted_accesses <= 2 * 7);
        let ids: Vec<u32> = res.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![2, 0]); // p3 (price 1), p1 (price 2)
    }

    #[test]
    fn k_larger_than_dataset() {
        let ta = SortedLists::new(&fig_points(), 2);
        assert_eq!(ta.topk(&[0.5, 0.5], 100).len(), 7);
        assert!(ta.topk(&[0.5, 0.5], 0).is_empty());
    }

    #[test]
    fn empty_index() {
        let ta = SortedLists::new(&[], 2);
        assert!(ta.is_empty());
        assert!(ta.topk(&[0.5, 0.5], 3).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn ta_always_matches_scan(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..200),
            raw in (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..15,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let ta = SortedLists::new(&flat, 3);
            let s = raw.0 + raw.1 + raw.2;
            let w = [raw.0 / s, raw.1 / s, raw.2 / s];
            let a = ta.topk(&w, k);
            let b = topk_scan(&flat, &w, k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }
}
