//! Top-k answering with cached views.
//!
//! The paper's related work surveys top-k processing "using cached
//! views" (its \[35\], Xie et al., EDBT 2013): a previously computed
//! `TOPk(w′)` can answer a new query `TOPk(w)` *without touching the
//! base data* when the cached entries provably contain the new answer.
//! We implement the safe-approximation variant used by reverse top-k
//! drivers: a cached view answers a *membership* question
//! (`q ∈ TOPk(w)`?) negatively whenever `k` cached points beat `q` under
//! the new weight — the same threshold reasoning as RTA's buffer, made
//! reusable and capacity-bounded (LRU).
//!
//! This accelerates workloads that probe many similar weights against
//! one query point (e.g. the workload builder's bisection search and
//! population partitioning).

use crate::rank::is_in_topk;
use wqrtq_geom::score;
use wqrtq_rtree::RTree;

/// An LRU cache of top-k views used to short-circuit membership probes.
#[derive(Debug)]
pub struct TopkViewCache {
    k: usize,
    capacity: usize,
    /// Views in LRU order (front = least recent): the cached weight and
    /// the coordinates of its top-k points.
    views: Vec<CachedView>,
    hits: usize,
    misses: usize,
}

#[derive(Debug)]
struct CachedView {
    weight: Vec<f64>,
    /// Flat `k × dim` coordinates of the view's top-k points.
    coords: Vec<f64>,
    dim: usize,
}

impl CachedView {
    /// Number of cached points.
    fn len(&self) -> usize {
        self.coords.len().checked_div(self.dim).unwrap_or(0)
    }
}

impl TopkViewCache {
    /// Creates a cache of at most `capacity` views for `TOPk` probes.
    ///
    /// # Panics
    /// Panics if `capacity` or `k` is zero.
    pub fn new(k: usize, capacity: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(capacity > 0, "capacity must be positive");
        Self {
            k,
            capacity,
            views: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Membership probe `q ∈ TOPk(w)` with view acceleration: if any
    /// cached view already shows `k` points beating `q` under `w`, the
    /// answer is `false` without touching the index; otherwise the index
    /// decides and (on a miss) the exact view for `w` is cached.
    pub fn is_in_topk(&mut self, tree: &RTree, w: &[f64], q: &[f64]) -> bool {
        let sq = score(w, q);
        // Most-recently-used first: recent views are likeliest to match.
        for vi in (0..self.views.len()).rev() {
            let view = &self.views[vi];
            if view.len() < self.k {
                continue;
            }
            let dim = view.dim;
            let beating = (0..view.len())
                .filter(|&i| score(w, &view.coords[i * dim..(i + 1) * dim]) < sq)
                .count();
            if beating >= self.k {
                self.hits += 1;
                // Refresh recency.
                let v = self.views.remove(vi);
                self.views.push(v);
                return false;
            }
        }
        self.misses += 1;
        let answer = is_in_topk(tree, w, q, self.k);
        self.insert_view(tree, w);
        answer
    }

    /// Computes and caches the exact top-k view for `w`.
    fn insert_view(&mut self, tree: &RTree, w: &[f64]) {
        let dim = tree.dim();
        let mut coords = Vec::with_capacity(self.k * dim);
        let mut bf = tree.best_first(w);
        for _ in 0..self.k {
            match bf.next_entry() {
                Some(r) => coords.extend_from_slice(r.coords),
                None => break,
            }
        }
        if self.views.len() == self.capacity {
            self.views.remove(0); // evict least recently used
        }
        self.views.push(CachedView {
            weight: w.to_vec(),
            coords,
            dim,
        });
    }

    /// Number of probes answered purely from cached views.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of probes that needed the index.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of currently cached views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views are cached yet.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The cached weights, least recently used first (for inspection).
    pub fn cached_weights(&self) -> Vec<&[f64]> {
        self.views.iter().map(|v| v.weight.as_slice()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wqrtq_geom::Weight;

    fn scatter(n: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * 2);
        let mut state = seed | 1;
        for _ in 0..n * 2 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        v
    }

    #[test]
    fn cache_answers_match_direct_probes() {
        let pts = scatter(2_000, 5);
        let tree = RTree::bulk_load(2, &pts);
        let q = [0.4, 0.4];
        let mut cache = TopkViewCache::new(10, 8);
        for i in 1..60 {
            let w = Weight::from_first_2d(i as f64 / 60.0);
            let direct = is_in_topk(&tree, &w, &q, 10);
            let cached = cache.is_in_topk(&tree, &w, &q);
            assert_eq!(direct, cached, "weight {w:?}");
        }
    }

    #[test]
    fn similar_weights_hit_the_cache() {
        let pts = scatter(5_000, 9);
        let tree = RTree::bulk_load(2, &pts);
        let q = [0.9, 0.9]; // never in any top-10: every probe is negative
        let mut cache = TopkViewCache::new(10, 4);
        for i in 0..200 {
            let w = Weight::from_first_2d(0.4 + 0.2 * (i as f64 / 200.0));
            let r = cache.is_in_topk(&tree, &w, &q);
            assert!(!r);
        }
        assert!(
            cache.hits() > 150,
            "expected most probes served from views: {} hits / {} misses",
            cache.hits(),
            cache.misses()
        );
    }

    #[test]
    fn capacity_is_bounded_lru() {
        let pts = scatter(500, 3);
        let tree = RTree::bulk_load(2, &pts);
        // A member query point: views can never reject it, so every
        // probe misses and inserts a fresh view.
        let q = [0.0, 0.0];
        let mut cache = TopkViewCache::new(5, 3);
        for x in [0.05, 0.5, 0.95, 0.3] {
            let w = Weight::from_first_2d(x);
            assert!(cache.is_in_topk(&tree, &w, &q));
        }
        assert_eq!(cache.len(), 3);
        assert!(!cache.is_empty());
        // The first-inserted view (x = 0.05) was evicted; LRU front is 0.5.
        let first = cache.cached_weights()[0];
        assert!((first[0] - 0.5).abs() < 1e-12, "LRU front = {first:?}");
    }

    #[test]
    fn positive_answers_never_served_from_views() {
        // A view can only *reject*; members must be confirmed by the
        // index, so correctness never depends on the cache contents.
        let pts = scatter(1_000, 7);
        let tree = RTree::bulk_load(2, &pts);
        let q = [0.01, 0.01]; // in everyone's top-k
        let mut cache = TopkViewCache::new(10, 4);
        for i in 1..30 {
            let w = Weight::from_first_2d(i as f64 / 30.0);
            assert!(cache.is_in_topk(&tree, &w, &q));
        }
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TopkViewCache::new(5, 0);
    }
}
