//! Rank queries: where would `q` place under a weighting vector?
//!
//! `rank(q, w) = 1 + |{p ∈ P : f(w, p) < f(w, q)}|`, so `q ∈ TOPk(w)` iff
//! `rank(q, w) ≤ k` — the membership rule of Definitions 2/3 with the
//! paper's tie semantics (`f(w, q) ≤ f(w, p)` keeps `q` in on a tie).
//!
//! Three engines answer it:
//!
//! * [`rank_of_point`] — exact counting over the R-tree (subtree counts
//!   make it sub-linear);
//! * [`is_in_topk`] — the *early-exit* membership probe: a best-first
//!   descent that stops the moment `k` better points are known **or**
//!   the smallest remaining MBR lower bound reaches `f(w, q)` (at which
//!   point the count is exact and `count < k` proves membership);
//! * [`rank_of_flat`] / [`rank_of_point_scan`] — flat scans: the fused
//!   column-major kernel of [`FlatPoints`] and the naive row-major
//!   oracle it is validated against.

use wqrtq_geom::{score, DeltaView, FlatPoints};
use wqrtq_rtree::{DominanceIndex, ProbeScratch, RTree};

/// Exact rank of `q` under `w` using counted R-tree pruning.
pub fn rank_of_point(tree: &RTree, w: &[f64], q: &[f64]) -> usize {
    let s = score(w, q);
    tree.count_score_below(w, s, true) + 1
}

/// Exact rank of `q` over a column-major [`FlatPoints`] store via the
/// fused count kernel (`f(w, q)` is computed once, outside the scan).
pub fn rank_of_flat(flat: &FlatPoints, w: &[f64], q: &[f64]) -> usize {
    flat.rank_of(w, q)
}

/// Linear-scan rank baseline over a flat row-major `n × dim` buffer —
/// the correctness oracle for the tree and kernel paths. The query score
/// is hoisted out of the per-point loop.
///
/// # Panics
/// Panics if the buffer length is not a multiple of `w.len()`.
pub fn rank_of_point_scan(points: &[f64], w: &[f64], q: &[f64]) -> usize {
    let dim = w.len();
    assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
    let s = score(w, q);
    points.chunks_exact(dim).filter(|p| score(w, p) < s).count() + 1
}

/// Decides `q ∈ TOPk(w)` without computing the exact rank, via the
/// best-first early-exit membership probe. Allocates a fresh traversal
/// queue; hot loops should use [`is_in_topk_scratch`].
pub fn is_in_topk(tree: &RTree, w: &[f64], q: &[f64], k: usize) -> bool {
    let mut scratch = ProbeScratch::new();
    is_in_topk_scratch(tree, w, q, k, &mut scratch)
}

/// [`is_in_topk`] with a caller-owned reusable [`ProbeScratch`] — zero
/// allocations per call once the queue has grown to the tree's depth.
pub fn is_in_topk_scratch(
    tree: &RTree,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> bool {
    is_in_topk_with_stats(tree, w, q, k, scratch).0
}

/// [`is_in_topk_scratch`], additionally reporting the index nodes the
/// probe expanded (the paper's `|RT|` cost term, for serving metrics).
pub fn is_in_topk_with_stats(
    tree: &RTree,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> (bool, usize) {
    if k == 0 {
        return (false, 0);
    }
    let s = score(w, q);
    let probe = tree.probe_topk_membership(w, s, k, scratch, None);
    (probe.in_topk, probe.nodes_visited)
}

/// Exact rank of `q` over a delta overlay: the base R-tree's counted
/// pruning plus the `O(Δ)` overlay corrections (appended rows add,
/// tombstoned rows subtract). `tree` must be the index of `view`'s base.
pub fn rank_of_point_view(tree: &RTree, view: &DeltaView, w: &[f64], q: &[f64]) -> usize {
    let s = score(w, q);
    let base_all = tree.count_score_below(w, s, true);
    base_all - view.count_better_dead(w, s) + view.count_better_delta(w, s) + 1
}

/// Decides `q ∈ TOPk(w)` over a delta overlay without an exact rank:
/// the overlay corrections shift the base probe's count target, so the
/// early-exit membership probe still decides the live verdict exactly.
///
/// `q` is a live member ⟺ `live_better < k` where
/// `live_better = base_all − dead_better + delta_better`; substituting
/// gives `base_all < k − delta_better + dead_better`, which is precisely
/// the probe with an adjusted `k`. When the delta alone already supplies
/// `k` better points the verdict is known without touching the index.
pub fn is_in_topk_view(
    tree: &RTree,
    view: &DeltaView,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> bool {
    is_in_topk_view_with_stats(tree, view, w, q, k, scratch).0
}

/// [`is_in_topk_view`], additionally reporting the index nodes expanded.
pub fn is_in_topk_view_with_stats(
    tree: &RTree,
    view: &DeltaView,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> (bool, usize) {
    if k == 0 {
        return (false, 0);
    }
    let s = score(w, q);
    let d_add = view.count_better_delta(w, s);
    if d_add >= k {
        return (false, 0);
    }
    let cap = k - d_add + view.count_better_dead(w, s);
    let probe = tree.probe_topk_membership(w, s, cap, scratch, None);
    (probe.in_topk, probe.nodes_visited)
}

/// [`is_in_topk_scratch`] consulting a [`DominanceIndex`] built from
/// `tree`: bit-identical verdicts, with masked points and all-masked
/// subtrees skipped. Falls back to the unmasked probe when the mask's
/// build cap cannot certify exclusion at `k`.
pub fn is_in_topk_masked(
    tree: &RTree,
    dom: &DominanceIndex,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> bool {
    if k == 0 {
        return false;
    }
    let s = score(w, q);
    // Culprit-plane fast path: a capped count over the k-skyband plane
    // decides the verdict without touching the index (see
    // `DominanceIndex::plane_outranked` for the dominance argument).
    if let Some(outranked) = dom.plane_outranked(w, s, k) {
        return !outranked;
    }
    if !dom.usable_for(k) {
        return tree.probe_topk_membership(w, s, k, scratch, None).in_topk;
    }
    tree.probe_topk_membership_masked(w, s, k, k, dom, scratch, None)
        .in_topk
}

/// [`is_in_topk_view`] consulting a [`DominanceIndex`] built from the
/// view's *base* tree. Deletes inflate the exclusion threshold
/// (`k_eff = adjusted cap + tombstones`, so every exclusion still has
/// cap-many live dominators); appends never join the mask. Bit-identical
/// to the unmasked path — the differential proptests below prove it.
pub fn is_in_topk_view_masked(
    tree: &RTree,
    view: &DeltaView,
    dom: &DominanceIndex,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> bool {
    is_in_topk_view_masked_with_stats(tree, view, dom, w, q, k, scratch).0
}

/// [`is_in_topk_view_masked`], additionally reporting the index nodes
/// expanded.
pub fn is_in_topk_view_masked_with_stats(
    tree: &RTree,
    view: &DeltaView,
    dom: &DominanceIndex,
    w: &[f64],
    q: &[f64],
    k: usize,
    scratch: &mut ProbeScratch,
) -> (bool, usize) {
    if k == 0 {
        return (false, 0);
    }
    let s = score(w, q);
    let d_add = view.count_better_delta(w, s);
    if d_add >= k {
        return (false, 0);
    }
    let cap = k - d_add + view.count_better_dead(w, s);
    // Culprit-plane fast path over the base: dead better points are
    // counted by the plane too, so the inflated cap decides the live
    // verdict exactly (see `rta_over_order_view_masked`).
    if let Some(outranked) = dom.plane_outranked(w, s, cap) {
        return (!outranked, 0);
    }
    let k_eff = k - d_add + view.tombstone_len();
    let probe = if dom.usable_for(k_eff) {
        tree.probe_topk_membership_masked(w, s, cap, k_eff, dom, scratch, None)
    } else {
        tree.probe_topk_membership(w, s, cap, scratch, None)
    };
    (probe.in_topk, probe.nodes_visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn ranks_match_figure_1c() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        let q = [4.0, 4.0];
        // Kevin (0.1,0.9): p1,p2,p4 better → rank 4 (why-not!).
        assert_eq!(rank_of_point(&t, &[0.1, 0.9], &q), 4);
        // Tony (0.5,0.5): only p1 (1.5) beats q (4.0); p2 scores 4.5.
        // TOP3(w2) = {p1, q, p2} per Figure 1(c) → rank 2 → in BRTOP3.
        assert_eq!(rank_of_point(&t, &[0.5, 0.5], &q), 2);
        // Anna (0.3,0.7): scores 1.3,3.9,6.6,4.8,5.6,7.1,5.8 vs q=4 → rank 3.
        assert_eq!(rank_of_point(&t, &[0.3, 0.7], &q), 3);
        // Julia (0.9,0.1): p1,p3,p7 better → rank 4 (why-not!).
        assert_eq!(rank_of_point(&t, &[0.9, 0.1], &q), 4);
    }

    #[test]
    fn scan_tree_and_flat_kernel_ranks_agree_on_figure_1() {
        // Regression: all three rank engines must agree point-for-point
        // on the paper's dataset, for every dataset point and the query.
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        let flat = FlatPoints::from_row_major(2, &pts);
        let weights = [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]];
        let mut queries: Vec<[f64; 2]> = pts.chunks_exact(2).map(|p| [p[0], p[1]]).collect();
        queries.push([4.0, 4.0]);
        for w in &weights {
            for q in &queries {
                let scan = rank_of_point_scan(&pts, w, q);
                assert_eq!(rank_of_point(&t, w, q), scan, "tree vs scan {w:?} {q:?}");
                assert_eq!(rank_of_flat(&flat, w, q), scan, "flat vs scan {w:?} {q:?}");
            }
        }
    }

    #[test]
    fn membership_matches_paper_reverse_top3() {
        let t = RTree::bulk_load(2, &fig_points());
        let q = [4.0, 4.0];
        assert!(!is_in_topk(&t, &[0.1, 0.9], &q, 3)); // Kevin
        assert!(is_in_topk(&t, &[0.5, 0.5], &q, 3)); // Tony
        assert!(is_in_topk(&t, &[0.3, 0.7], &q, 3)); // Anna
        assert!(!is_in_topk(&t, &[0.9, 0.1], &q, 3)); // Julia
                                                      // Everyone admits q at k = 4 (Lemma 4: k'max = 4 in the example).
        for w in [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]] {
            assert!(is_in_topk(&t, &w, &q, 4));
        }
    }

    #[test]
    fn tie_keeps_query_in_topk() {
        // A point tying with q does not push q out (≤ semantics).
        let pts = vec![1.0, 1.0, 2.0, 2.0];
        let t = RTree::bulk_load(2, &pts);
        let q = [2.0, 2.0]; // ties with the second point under any weight
        assert_eq!(rank_of_point(&t, &[0.5, 0.5], &q), 2);
        assert!(is_in_topk(&t, &[0.5, 0.5], &q, 2));
        let flat = FlatPoints::from_row_major(2, &pts);
        assert_eq!(rank_of_flat(&flat, &[0.5, 0.5], &q), 2);
    }

    #[test]
    fn k_zero_is_never_member() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(!is_in_topk(&t, &[0.5, 0.5], &[0.0, 0.0], 0));
    }

    #[test]
    fn stats_variant_reports_nodes() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let mut scratch = ProbeScratch::new();
        let (member, nodes) = is_in_topk_with_stats(&t, &[0.1, 0.9], &[4.0, 4.0], 3, &mut scratch);
        assert!(!member);
        assert!(nodes > 0);
    }

    /// Builds an overlay over the paper dataset (delete p2/p5, append two
    /// rows) and the equivalent rebuilt-from-scratch flat buffer.
    fn overlaid_fig() -> (RTree, DeltaView, Vec<f64>) {
        let pts = fig_points();
        let tree = RTree::bulk_load_with_fanout(2, &pts, 4);
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        let (live, _) = view.materialize_row_major();
        (tree, view, live)
    }

    #[test]
    fn view_rank_and_membership_match_rebuilt_scan() {
        let (tree, view, live) = overlaid_fig();
        let mut scratch = ProbeScratch::new();
        for w in [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]] {
            for q in [[4.0, 4.0], [1.0, 1.0], [0.4, 0.6], [9.0, 9.0]] {
                let oracle = rank_of_point_scan(&live, &w, &q);
                assert_eq!(rank_of_point_view(&tree, &view, &w, &q), oracle);
                for k in 0..=9 {
                    assert_eq!(
                        is_in_topk_view(&tree, &view, &w, &q, k, &mut scratch),
                        k > 0 && oracle <= k,
                        "w {w:?} q {q:?} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn plain_view_agrees_with_plain_primitives() {
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let view = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &pts)));
        let mut scratch = ProbeScratch::new();
        let q = [4.0, 4.0];
        for w in [[0.1, 0.9], [0.5, 0.5]] {
            assert_eq!(
                rank_of_point_view(&tree, &view, &w, &q),
                rank_of_point(&tree, &w, &q)
            );
            for k in 1..=5 {
                assert_eq!(
                    is_in_topk_view(&tree, &view, &w, &q, k, &mut scratch),
                    is_in_topk(&tree, &w, &q, k)
                );
            }
        }
    }

    /// Injects exact score ties at the k boundary: some points are copies
    /// of q (tie under every weight), some share q's score under the
    /// specific w by construction.
    fn with_boundary_ties(mut pts: Vec<(f64, f64)>, q: (f64, f64), copies: usize) -> Vec<f64> {
        for _ in 0..copies {
            pts.push(q);
        }
        pts.iter().flat_map(|(a, b)| [*a, *b]).collect()
    }

    #[test]
    fn masked_membership_matches_unmasked_on_paper_data() {
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let dom = DominanceIndex::build(&t);
        let mut scratch = ProbeScratch::new();
        for w in [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]] {
            for q in [[4.0, 4.0], [1.0, 1.0], [9.0, 9.0]] {
                for k in 0..=8 {
                    assert_eq!(
                        is_in_topk_masked(&t, &dom, &w, &q, k, &mut scratch),
                        is_in_topk(&t, &w, &q, k),
                        "w {w:?} q {q:?} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_view_membership_matches_unmasked_on_overlay() {
        let (tree, view, live) = overlaid_fig();
        let dom = DominanceIndex::build(&tree);
        let mut scratch = ProbeScratch::new();
        for w in [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]] {
            for q in [[4.0, 4.0], [1.0, 1.0], [0.4, 0.6], [9.0, 9.0]] {
                let oracle = rank_of_point_scan(&live, &w, &q);
                for k in 0..=9 {
                    assert_eq!(
                        is_in_topk_view_masked(&tree, &view, &dom, &w, &q, k, &mut scratch),
                        k > 0 && oracle <= k,
                        "w {w:?} q {q:?} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_membership_falls_back_when_cap_too_small() {
        // A mask built with cap = 1 cannot certify exclusion for k ≥ 2;
        // the wrapper must fall back to the unmasked probe, never panic
        // or misclassify.
        let t = RTree::bulk_load_with_fanout(2, &fig_points(), 4);
        let dom = DominanceIndex::build_with_cap(&t, 1);
        let mut scratch = ProbeScratch::new();
        for k in 1..=6 {
            for w in [[0.5, 0.5], [0.1, 0.9]] {
                assert_eq!(
                    is_in_topk_masked(&t, &dom, &w, &[4.0, 4.0], k, &mut scratch),
                    is_in_topk(&t, &w, &[4.0, 4.0], k),
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn tree_rank_matches_scan(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..300),
            q in (0.0f64..10.0, 0.0f64..10.0),
            raw in (0.01f64..1.0, 0.01f64..1.0),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            let qv = [q.0, q.1];
            let scan = rank_of_point_scan(&flat, &w, &qv);
            prop_assert_eq!(rank_of_point(&t, &w, &qv), scan);
            let fp = FlatPoints::from_row_major(2, &flat);
            prop_assert_eq!(rank_of_flat(&fp, &w, &qv), scan);
        }

        #[test]
        fn early_exit_membership_matches_naive_count(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..250),
            q in (0.0f64..10.0, 0.0f64..10.0),
            raw in (0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..14,
            tie_copies in 0usize..4,
        ) {
            // Exact-tie coverage at the k boundary: duplicate q into the
            // dataset; under the paper's strict semantics those copies
            // never count against q, whatever k is.
            let flat = with_boundary_ties(pts, q, tie_copies);
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            let qv = [q.0, q.1];
            let sq = score(&w, &qv);
            let naive_better = flat
                .chunks_exact(2)
                .filter(|p| score(&w, p) < sq)
                .count();
            let mut scratch = ProbeScratch::new();
            prop_assert_eq!(
                is_in_topk_scratch(&t, &w, &qv, k, &mut scratch),
                naive_better < k,
                "naive better-count {} vs k {}", naive_better, k
            );
        }

        #[test]
        fn view_primitives_match_rebuilt_oracle(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..200),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..12),
            q in (0.0f64..10.0, 0.0f64..10.0),
            raw in (0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..12,
            del_stride in 2usize..6,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let base = Arc::new(FlatPoints::from_row_major(2, &flat));
            // Tombstone every del_stride-th base row; append `extra`.
            let dead_ids: Vec<u32> = (0..pts.len() as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [pts[i as usize].0, pts[i as usize].1])
                .collect();
            let delta_rows: Vec<f64> = extra.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let delta_ids: Vec<u32> =
                (0..extra.len() as u32).map(|i| pts.len() as u32 + i).collect();
            let view = DeltaView::new(
                base,
                Arc::new(delta_rows),
                Arc::new(delta_ids),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let (live, _) = view.materialize_row_major();
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            let qv = [q.0, q.1];
            let oracle = rank_of_point_scan(&live, &w, &qv);
            prop_assert_eq!(rank_of_point_view(&tree, &view, &w, &qv), oracle);
            prop_assert_eq!(view.rank_of(&w, &qv), oracle);
            let mut scratch = ProbeScratch::new();
            prop_assert_eq!(
                is_in_topk_view(&tree, &view, &w, &qv, k, &mut scratch),
                oracle <= k
            );
            prop_assert_eq!(view.is_in_topk(&w, &qv, k), oracle <= k);
        }

        #[test]
        fn masked_view_membership_matches_unmasked_under_mutation(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..200),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..12),
            q in (0.0f64..10.0, 0.0f64..10.0),
            raw in (0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..12,
            del_stride in 2usize..6,
            tie_copies in 0usize..4,
        ) {
            // Same overlay construction as view_primitives_match_rebuilt_oracle,
            // plus exact copies of q in the base so ties sit right at the
            // masked/unmasked boundary.
            let flat = with_boundary_ties(pts.clone(), q, tie_copies);
            let n_base = flat.len() / 2;
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let dom = DominanceIndex::build(&tree);
            let base = Arc::new(FlatPoints::from_row_major(2, &flat));
            let dead_ids: Vec<u32> = (0..n_base as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [flat[2 * i as usize], flat[2 * i as usize + 1]])
                .collect();
            let delta_rows: Vec<f64> = extra.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let delta_ids: Vec<u32> =
                (0..extra.len() as u32).map(|i| n_base as u32 + i).collect();
            let view = DeltaView::new(
                base,
                Arc::new(delta_rows),
                Arc::new(delta_ids),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            let qv = [q.0, q.1];
            let mut scratch = ProbeScratch::new();
            // The query point itself probes the tie boundary; also probe a
            // handful of dataset points.
            let mut queries = vec![qv];
            for p in flat.chunks_exact(2).take(6) {
                queries.push([p[0], p[1]]);
            }
            for qq in &queries {
                let unmasked = is_in_topk_view(&tree, &view, &w, qq, k, &mut scratch);
                prop_assert_eq!(
                    is_in_topk_view_masked(&tree, &view, &dom, &w, qq, k, &mut scratch),
                    unmasked,
                    "view masked vs unmasked, q {:?} k {}", qq, k
                );
                prop_assert_eq!(
                    is_in_topk_masked(&tree, &dom, &w, qq, k, &mut scratch),
                    is_in_topk_scratch(&tree, &w, qq, k, &mut scratch),
                    "plain masked vs unmasked, q {:?} k {}", qq, k
                );
            }
        }

        #[test]
        fn membership_consistent_with_rank(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..200),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..12,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let w = [0.4, 0.6];
            let qv = [q.0, q.1];
            prop_assert_eq!(
                is_in_topk(&t, &w, &qv, k),
                rank_of_point(&t, &w, &qv) <= k
            );
        }
    }
}
