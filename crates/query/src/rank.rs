//! Rank queries: where would `q` place under a weighting vector?
//!
//! `rank(q, w) = 1 + |{p ∈ P : f(w, p) < f(w, q)}|`, so `q ∈ TOPk(w)` iff
//! `rank(q, w) ≤ k` — the membership rule of Definitions 2/3 with the
//! paper's tie semantics (`f(w, q) ≤ f(w, p)` keeps `q` in on a tie).

use wqrtq_geom::score;
use wqrtq_rtree::RTree;

/// Exact rank of `q` under `w` using counted R-tree pruning.
pub fn rank_of_point(tree: &RTree, w: &[f64], q: &[f64]) -> usize {
    let s = score(w, q);
    tree.count_score_below(w, s, true) + 1
}

/// Linear-scan rank baseline over a flat `n × dim` buffer.
///
/// # Panics
/// Panics if the buffer length is not a multiple of `w.len()`.
pub fn rank_of_point_scan(points: &[f64], w: &[f64], q: &[f64]) -> usize {
    let dim = w.len();
    assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
    let s = score(w, q);
    let n = points.len() / dim;
    let mut count = 0;
    for i in 0..n {
        if score(w, &points[i * dim..(i + 1) * dim]) < s {
            count += 1;
        }
    }
    count + 1
}

/// Decides `q ∈ TOPk(w)` without computing the exact rank: the counting
/// traversal stops descending as soon as `k` better points are known.
pub fn is_in_topk(tree: &RTree, w: &[f64], q: &[f64], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let s = score(w, q);
    tree.count_score_below_capped(w, s, true, k) < k
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn ranks_match_figure_1c() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        let q = [4.0, 4.0];
        // Kevin (0.1,0.9): p1,p2,p4 better → rank 4 (why-not!).
        assert_eq!(rank_of_point(&t, &[0.1, 0.9], &q), 4);
        // Tony (0.5,0.5): only p1 (1.5) beats q (4.0); p2 scores 4.5.
        // TOP3(w2) = {p1, q, p2} per Figure 1(c) → rank 2 → in BRTOP3.
        assert_eq!(rank_of_point(&t, &[0.5, 0.5], &q), 2);
        // Anna (0.3,0.7): scores 1.3,3.9,6.6,4.8,5.6,7.1,5.8 vs q=4 → rank 3.
        assert_eq!(rank_of_point(&t, &[0.3, 0.7], &q), 3);
        // Julia (0.9,0.1): p1,p3,p7 better → rank 4 (why-not!).
        assert_eq!(rank_of_point(&t, &[0.9, 0.1], &q), 4);
    }

    #[test]
    fn membership_matches_paper_reverse_top3() {
        let t = RTree::bulk_load(2, &fig_points());
        let q = [4.0, 4.0];
        assert!(!is_in_topk(&t, &[0.1, 0.9], &q, 3)); // Kevin
        assert!(is_in_topk(&t, &[0.5, 0.5], &q, 3)); // Tony
        assert!(is_in_topk(&t, &[0.3, 0.7], &q, 3)); // Anna
        assert!(!is_in_topk(&t, &[0.9, 0.1], &q, 3)); // Julia
                                                      // Everyone admits q at k = 4 (Lemma 4: k'max = 4 in the example).
        for w in [[0.1, 0.9], [0.5, 0.5], [0.3, 0.7], [0.9, 0.1]] {
            assert!(is_in_topk(&t, &w, &q, 4));
        }
    }

    #[test]
    fn tie_keeps_query_in_topk() {
        // A point tying with q does not push q out (≤ semantics).
        let pts = vec![1.0, 1.0, 2.0, 2.0];
        let t = RTree::bulk_load(2, &pts);
        let q = [2.0, 2.0]; // ties with the second point under any weight
        assert_eq!(rank_of_point(&t, &[0.5, 0.5], &q), 2);
        assert!(is_in_topk(&t, &[0.5, 0.5], &q, 2));
    }

    #[test]
    fn k_zero_is_never_member() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(!is_in_topk(&t, &[0.5, 0.5], &[0.0, 0.0], 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn tree_rank_matches_scan(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..300),
            q in (0.0f64..10.0, 0.0f64..10.0),
            raw in (0.01f64..1.0, 0.01f64..1.0),
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            let qv = [q.0, q.1];
            prop_assert_eq!(
                rank_of_point(&t, &w, &qv),
                rank_of_point_scan(&flat, &w, &qv)
            );
        }

        #[test]
        fn membership_consistent_with_rank(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..200),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..12,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let t = RTree::bulk_load_with_fanout(2, &flat, 8);
            let w = [0.4, 0.6];
            let qv = [q.0, q.1];
            prop_assert_eq!(
                is_in_topk(&t, &w, &qv, k),
                rank_of_point(&t, &w, &qv) <= k
            );
        }
    }
}
