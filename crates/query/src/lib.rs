#![warn(missing_docs)]

//! Top-k and reverse top-k query processing.
//!
//! Implements the query classes the paper builds on (its Definitions 1–3):
//!
//! * [`topk`](mod@topk) — top-k queries, both branch-and-bound over the R-tree (the
//!   I/O-optimal BRS strategy \[29\]) and a linear-scan baseline;
//! * [`rank`] — the *rank* of a query point under a weighting vector
//!   (`1 + #points strictly better`), the predicate behind every reverse
//!   top-k decision;
//! * [`brtopk`] — **bichromatic** reverse top-k (Definition 3): which of
//!   the known customer weighting vectors put `q` in their top-k. Includes
//!   the RTA-style algorithm with threshold-buffer reuse \[31\] and a naive
//!   per-weight baseline;
//! * [`mrtopk`] — **monochromatic** reverse top-k (Definition 2) in two
//!   dimensions, computing the exact qualifying weight intervals by a
//!   plane sweep (the segment `BC` of the paper's Figure 2).

pub mod brtopk;
pub mod cache;
pub mod mrtopk;
pub mod mrtopk_nd;
pub mod rank;
pub mod ta;
pub mod topk;

pub use brtopk::{
    bichromatic_reverse_topk_naive, bichromatic_reverse_topk_rta,
    bichromatic_reverse_topk_rta_legacy, rta_over_order, rta_sorted_order, RtaScratch, RtaStats,
};
pub use cache::TopkViewCache;
pub use mrtopk::{monochromatic_reverse_topk_2d, WeightInterval};
pub use mrtopk_nd::{monochromatic_reverse_topk_sampled, MrtopkEstimate};
pub use rank::{
    is_in_topk, is_in_topk_scratch, is_in_topk_with_stats, rank_of_flat, rank_of_point,
    rank_of_point_scan,
};
pub use ta::{SortedLists, TaStats};
pub use topk::{kth_point, topk, topk_scan, KthPoint};
