//! Top-k queries (Definition 1 of the paper).
//!
//! `TOPk(w)` is the set of `k` points with the smallest scores under `w`.
//! The branch-and-bound implementation rides the R-tree's best-first
//! traversal (BRS \[29\]); the scan implementation is the baseline used to
//! cross-check it and to quantify the index's benefit in the ablation
//! benchmarks.

use wqrtq_geom::score;
use wqrtq_rtree::RTree;

/// The top `k`-th point of a weighting vector — the constraint generator
/// of MQP (Lemma 2/3: a refined `q′` with `f(w, q′) ≤ f(w, p_k)` enters
/// `TOPk(w)`).
#[derive(Clone, Debug, PartialEq)]
pub struct KthPoint {
    /// Point id in the indexed dataset.
    pub id: u32,
    /// Its score under the weighting vector.
    pub score: f64,
    /// Its coordinates.
    pub coords: Vec<f64>,
}

/// Returns the `(id, score)` pairs of `TOPk(w)` in ascending score order
/// using best-first search. Returns fewer than `k` entries when the
/// dataset is smaller than `k`.
pub fn topk(tree: &RTree, w: &[f64], k: usize) -> Vec<(u32, f64)> {
    tree.best_first(w).take(k).collect()
}

/// Linear-scan top-k baseline over a flat `n × dim` buffer.
///
/// # Panics
/// Panics if the buffer length is not a multiple of `w.len()`.
pub fn topk_scan(points: &[f64], w: &[f64], k: usize) -> Vec<(u32, f64)> {
    let dim = w.len();
    assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
    let n = points.len() / dim;
    let mut scored: Vec<(u32, f64)> = (0..n)
        .map(|i| (i as u32, score(w, &points[i * dim..(i + 1) * dim])))
        .collect();
    // Partial selection: full sort is fine at the sizes this baseline is
    // benchmarked on, and keeps ties deterministic (by id).
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Finds the top `k`-th point under `w` (1-based: `k = 1` is the best
/// point). Returns `None` when the dataset has fewer than `k` points.
pub fn kth_point(tree: &RTree, w: &[f64], k: usize) -> Option<KthPoint> {
    assert!(k >= 1, "k must be at least 1");
    let mut it = tree.best_first(w);
    let mut last = None;
    for _ in 0..k {
        last = Some(it.next_entry()?);
    }
    last.map(|r| KthPoint {
        id: r.id,
        score: r.score,
        coords: r.coords.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn top3_for_kevin_matches_paper() {
        // §3: TOP3(w1) = {p1, p2, p4} for Kevin = (0.1, 0.9).
        let t = RTree::bulk_load(2, &fig_points());
        let ids: Vec<u32> = topk(&t, &[0.1, 0.9], 3).iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn scan_and_tree_agree_on_paper_data() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        for k in 1..=7 {
            let a = topk(&t, &[0.3, 0.7], k);
            let b = topk_scan(&pts, &[0.3, 0.7], k);
            let sa: Vec<f64> = a.iter().map(|(_, s)| *s).collect();
            let sb: Vec<f64> = b.iter().map(|(_, s)| *s).collect();
            assert_eq!(sa, sb, "k = {k}");
        }
    }

    #[test]
    fn kth_point_is_last_of_topk() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        // Kevin's top 3rd point is p4 = (9, 3) with score 3.6 (Fig. 5(b)).
        let p = kth_point(&t, &[0.1, 0.9], 3).unwrap();
        assert_eq!(p.id, 3);
        assert!((p.score - 3.6).abs() < 1e-12);
        assert_eq!(p.coords, vec![9.0, 3.0]);
    }

    #[test]
    fn kth_point_beyond_dataset_is_none() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(kth_point(&t, &[0.5, 0.5], 8).is_none());
        assert!(kth_point(&t, &[0.5, 0.5], 7).is_some());
    }

    #[test]
    fn topk_with_k_zero_is_empty() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(topk(&t, &[0.5, 0.5], 0).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn tree_topk_matches_scan_scores(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..250),
            raw in (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..20,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let t = RTree::bulk_load_with_fanout(3, &flat, 8);
            let s = raw.0 + raw.1 + raw.2;
            let w = [raw.0 / s, raw.1 / s, raw.2 / s];
            let a = topk(&t, &w, k);
            let b = topk_scan(&flat, &w, k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }
}
