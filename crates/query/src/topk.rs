//! Top-k queries (Definition 1 of the paper).
//!
//! `TOPk(w)` is the set of `k` points with the smallest scores under `w`.
//! The branch-and-bound implementation rides the R-tree's best-first
//! traversal (BRS \[29\]); the scan implementation is the baseline used to
//! cross-check it and to quantify the index's benefit in the ablation
//! benchmarks.

use wqrtq_geom::{score, DeltaView};
use wqrtq_rtree::{search::BestFirst, DominanceIndex, RTree};

/// The top `k`-th point of a weighting vector — the constraint generator
/// of MQP (Lemma 2/3: a refined `q′` with `f(w, q′) ≤ f(w, p_k)` enters
/// `TOPk(w)`).
#[derive(Clone, Debug, PartialEq)]
pub struct KthPoint {
    /// Point id in the indexed dataset.
    pub id: u32,
    /// Its score under the weighting vector.
    pub score: f64,
    /// Its coordinates.
    pub coords: Vec<f64>,
}

/// Returns the `(id, score)` pairs of `TOPk(w)` in ascending score order
/// using best-first search. Returns fewer than `k` entries when the
/// dataset is smaller than `k`.
pub fn topk(tree: &RTree, w: &[f64], k: usize) -> Vec<(u32, f64)> {
    tree.best_first(w).take(k).collect()
}

/// Linear-scan top-k baseline over a flat `n × dim` buffer.
///
/// # Panics
/// Panics if the buffer length is not a multiple of `w.len()`.
pub fn topk_scan(points: &[f64], w: &[f64], k: usize) -> Vec<(u32, f64)> {
    let dim = w.len();
    assert_eq!(points.len() % dim, 0, "coordinate buffer length mismatch");
    let n = points.len() / dim;
    let mut scored: Vec<(u32, f64)> = (0..n)
        .map(|i| (i as u32, score(w, &points[i * dim..(i + 1) * dim])))
        .collect();
    // Partial selection: full sort is fine at the sizes this baseline is
    // benchmarked on, and keeps ties deterministic (by id).
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Finds the top `k`-th point under `w` (1-based: `k = 1` is the best
/// point). Returns `None` when the dataset has fewer than `k` points.
pub fn kth_point(tree: &RTree, w: &[f64], k: usize) -> Option<KthPoint> {
    assert!(k >= 1, "k must be at least 1");
    let mut it = tree.best_first(w);
    let mut last = None;
    for _ in 0..k {
        last = Some(it.next_entry()?);
    }
    last.map(|r| KthPoint {
        id: r.id,
        score: r.score,
        coords: r.coords.to_vec(),
    })
}

/// [`kth_point`] consulting a [`DominanceIndex`] built from `tree`:
/// points with at least `k` strict dominators (and subtrees of nothing
/// else) are skipped — they can never hold the top `k`-th *score*. The
/// returned score is bit-identical to the unmasked selection; the point
/// identity may differ among exact score ties (every consumer of the
/// k-th point — the safe-region constraint planes, the QP thresholds —
/// depends only on the score). Falls back to the unmasked traversal for
/// negative weights or when the mask's build cap is too small for `k`.
pub fn kth_point_masked(
    tree: &RTree,
    dom: &DominanceIndex,
    w: &[f64],
    k: usize,
) -> Option<KthPoint> {
    assert!(k >= 1, "k must be at least 1");
    if w.iter().any(|&x| x < 0.0) || !dom.usable_for(k) {
        return kth_point(tree, w, k);
    }
    let mut it = tree.best_first_masked(w, dom, k);
    let mut last = None;
    for _ in 0..k {
        last = Some(it.next_entry()?);
    }
    last.map(|r| KthPoint {
        id: r.id,
        score: r.score,
        coords: r.coords.to_vec(),
    })
}

/// One live point produced by [`ViewBestFirst`] in ascending score order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewRanked<'a> {
    /// The point's stable id (base id, or overlay-assigned delta id).
    pub id: u32,
    /// Its score under the traversal's weighting vector.
    pub score: f64,
    /// Its coordinates (borrowed from the tree or the overlay).
    pub coords: &'a [f64],
}

/// Best-first enumeration of the *live* points of a delta overlay: the
/// base index's incremental ranking with tombstoned rows skipped, merged
/// with the (pre-scored, sorted) appended rows. Progressive consumers —
/// top-k, k-th point, the why-not culprit scan — drive it exactly like
/// a plain [`RTree::best_first`] traversal.
///
/// Ties: a base point and an appended row with the exact same score are
/// emitted base-first (appended ids always sit above base ids, so this
/// is ascending-id order); ties *within* the base keep the index's
/// traversal order, as ever.
pub struct ViewBestFirst<'a> {
    bf: BestFirst<'a>,
    view: &'a DeltaView,
    /// `(score, delta slot)` of the live appended rows, ascending by
    /// score then append order.
    delta: Vec<(f64, u32)>,
    next_delta: usize,
    /// The next not-yet-emitted live base point, if already pulled.
    pending: Option<wqrtq_rtree::search::RankedPoint<'a>>,
}

impl<'a> ViewBestFirst<'a> {
    /// Starts a merged traversal. `tree` must be the index built over
    /// `view`'s base rows.
    pub fn new(tree: &'a RTree, view: &'a DeltaView, w: &[f64]) -> Self {
        Self::with_base(tree.best_first(w), view, w)
    }

    /// [`ViewBestFirst::new`] with the *base* traversal consulting a
    /// [`DominanceIndex`]: masked base points are never surfaced.
    /// Appended rows are always live and tombstones are skipped as ever.
    /// `k_eff` must be inflated by the view's tombstone count (a masked
    /// point's dominators may since have died); callers must check
    /// `dom.usable_for(k_eff)` and weight non-negativity and fall back
    /// to [`ViewBestFirst::new`] otherwise.
    pub fn new_masked(
        tree: &'a RTree,
        view: &'a DeltaView,
        dom: &'a DominanceIndex,
        k_eff: usize,
        w: &[f64],
    ) -> Self {
        Self::with_base(tree.best_first_masked(w, dom, k_eff), view, w)
    }

    fn with_base(bf: BestFirst<'a>, view: &'a DeltaView, w: &[f64]) -> Self {
        let dim = view.dim();
        let mut delta: Vec<(f64, u32)> = view
            .delta_rows()
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (score(w, row), i as u32))
            .collect();
        delta.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Self {
            bf,
            view,
            delta,
            next_delta: 0,
            pending: None,
        }
    }

    /// Index nodes expanded by the base traversal so far.
    pub fn nodes_visited(&self) -> usize {
        self.bf.nodes_visited()
    }

    /// Returns the next live point in ascending score order.
    pub fn next_entry(&mut self) -> Option<ViewRanked<'a>> {
        if self.pending.is_none() {
            // Pull the next live base point, skipping tombstones.
            while let Some(p) = self.bf.next_entry() {
                if !self.view.is_deleted(p.id) {
                    self.pending = Some(p);
                    break;
                }
            }
        }
        let delta_head = self.delta.get(self.next_delta).copied();
        let take_base = match (&self.pending, delta_head) {
            (Some(p), Some((ds, _))) => p.score <= ds, // tie: base first
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_base {
            // lint: allow(no-panic) — `take_base` is only true in match
            // arms where `self.pending` is `Some`.
            let p = self.pending.take().expect("pending base entry");
            Some(ViewRanked {
                id: p.id,
                score: p.score,
                coords: p.coords,
            })
        } else {
            // lint: allow(no-panic) — `take_base` is only false in match
            // arms where `delta_head` is `Some`.
            let (ds, slot) = delta_head.expect("pending delta entry");
            self.next_delta += 1;
            Some(ViewRanked {
                id: self.view.delta_ids()[slot as usize],
                score: ds,
                coords: self.view.delta_row(slot as usize),
            })
        }
    }
}

/// `TOPk(w)` over the live points of a delta overlay, as `(id, score)`
/// in ascending score order. Bit-identical to running [`topk`] on a
/// dataset rebuilt from the overlay's live rows (score ties permitting —
/// see [`ViewBestFirst`]).
pub fn topk_view(tree: &RTree, view: &DeltaView, w: &[f64], k: usize) -> Vec<(u32, f64)> {
    let mut it = ViewBestFirst::new(tree, view, w);
    let mut out = Vec::with_capacity(k.min(view.live_len()));
    while out.len() < k {
        match it.next_entry() {
            Some(p) => out.push((p.id, p.score)),
            None => break,
        }
    }
    out
}

/// The top `k`-th live point of a delta overlay (1-based). Returns
/// `None` when fewer than `k` live points exist.
pub fn kth_point_view(tree: &RTree, view: &DeltaView, w: &[f64], k: usize) -> Option<KthPoint> {
    assert!(k >= 1, "k must be at least 1");
    let mut it = ViewBestFirst::new(tree, view, w);
    let mut last = None;
    for _ in 0..k {
        last = Some(it.next_entry()?);
    }
    last.map(|r| KthPoint {
        id: r.id,
        score: r.score,
        coords: r.coords.to_vec(),
    })
}

/// [`kth_point_view`] consulting a [`DominanceIndex`] built from the
/// view's *base* tree. The exclusion threshold is `k` plus the view's
/// tombstone count, so every skipped point still has `k` *live*
/// dominators scoring no worse — the k-th live score is bit-identical
/// to the unmasked selection (identity may differ among exact ties).
/// Falls back to the unmasked traversal for negative weights or when
/// the mask's build cap is too small.
pub fn kth_point_view_masked(
    tree: &RTree,
    view: &DeltaView,
    dom: &DominanceIndex,
    w: &[f64],
    k: usize,
) -> Option<KthPoint> {
    assert!(k >= 1, "k must be at least 1");
    let k_eff = k + view.tombstone_len();
    if w.iter().any(|&x| x < 0.0) || !dom.usable_for(k_eff) {
        return kth_point_view(tree, view, w, k);
    }
    let mut it = ViewBestFirst::new_masked(tree, view, dom, k_eff, w);
    let mut last = None;
    for _ in 0..k {
        last = Some(it.next_entry()?);
    }
    last.map(|r| KthPoint {
        id: r.id,
        score: r.score,
        coords: r.coords.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use wqrtq_geom::FlatPoints;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn top3_for_kevin_matches_paper() {
        // §3: TOP3(w1) = {p1, p2, p4} for Kevin = (0.1, 0.9).
        let t = RTree::bulk_load(2, &fig_points());
        let ids: Vec<u32> = topk(&t, &[0.1, 0.9], 3).iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn scan_and_tree_agree_on_paper_data() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        for k in 1..=7 {
            let a = topk(&t, &[0.3, 0.7], k);
            let b = topk_scan(&pts, &[0.3, 0.7], k);
            let sa: Vec<f64> = a.iter().map(|(_, s)| *s).collect();
            let sb: Vec<f64> = b.iter().map(|(_, s)| *s).collect();
            assert_eq!(sa, sb, "k = {k}");
        }
    }

    #[test]
    fn kth_point_is_last_of_topk() {
        let pts = fig_points();
        let t = RTree::bulk_load(2, &pts);
        // Kevin's top 3rd point is p4 = (9, 3) with score 3.6 (Fig. 5(b)).
        let p = kth_point(&t, &[0.1, 0.9], 3).unwrap();
        assert_eq!(p.id, 3);
        assert!((p.score - 3.6).abs() < 1e-12);
        assert_eq!(p.coords, vec![9.0, 3.0]);
    }

    #[test]
    fn kth_point_beyond_dataset_is_none() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(kth_point(&t, &[0.5, 0.5], 8).is_none());
        assert!(kth_point(&t, &[0.5, 0.5], 7).is_some());
    }

    #[test]
    fn topk_with_k_zero_is_empty() {
        let t = RTree::bulk_load(2, &fig_points());
        assert!(topk(&t, &[0.5, 0.5], 0).is_empty());
    }

    fn overlaid_fig() -> (RTree, DeltaView) {
        let pts = fig_points();
        let tree = RTree::bulk_load_with_fanout(2, &pts, 4);
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        (tree, view)
    }

    #[test]
    fn view_topk_merges_skips_and_keeps_order() {
        let (tree, view) = overlaid_fig();
        // Kevin (0.1, 0.9): live scores are p1=1.1, p3=8.2, p4=3.6,
        // p6=7.7, p7=6.6, d7=(4.5,2)=2.25, d8=(0.5,0.5)=0.5.
        let got = topk_view(&tree, &view, &[0.1, 0.9], 4);
        let ids: Vec<u32> = got.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![8, 0, 7, 3]); // 0.5 < 1.1 < 2.25 < 3.6
        assert!(got.windows(2).all(|p| p[0].1 <= p[1].1));
        // Deleted p2 (id 1) never surfaces, at any k.
        let all = topk_view(&tree, &view, &[0.1, 0.9], 100);
        assert_eq!(all.len(), view.live_len());
        assert!(all.iter().all(|(i, _)| *i != 1 && *i != 4));
    }

    #[test]
    fn view_kth_point_matches_rebuilt_oracle() {
        let (tree, view) = overlaid_fig();
        let (live, ids) = view.materialize_row_major();
        let rebuilt = RTree::bulk_load(2, &live);
        for w in [[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]] {
            for k in 1..=view.live_len() {
                let got = kth_point_view(&tree, &view, &w, k).unwrap();
                let oracle = kth_point(&rebuilt, &w, k).unwrap();
                assert_eq!(got.score, oracle.score, "w {w:?} k {k}");
                assert_eq!(got.id, ids[oracle.id as usize], "w {w:?} k {k}");
                assert_eq!(got.coords, oracle.coords);
            }
            assert!(kth_point_view(&tree, &view, &w, view.live_len() + 1).is_none());
        }
    }

    #[test]
    fn plain_view_topk_is_plain_topk() {
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let view = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &pts)));
        for k in [0, 1, 3, 7, 9] {
            assert_eq!(
                topk_view(&tree, &view, &[0.3, 0.7], k),
                topk(&tree, &[0.3, 0.7], k)
            );
        }
    }

    #[test]
    fn masked_kth_score_matches_unmasked_with_tie_dense_data() {
        // A 5×5 grid plus exact duplicates of every grid point: lots of
        // dominated points (masked at small k) and lots of exact score
        // ties. The k-th *score* must survive masking bit-for-bit.
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.extend([x as f64, y as f64]);
                pts.extend([x as f64, y as f64]);
            }
        }
        let t = RTree::bulk_load_with_fanout(2, &pts, 8);
        let dom = DominanceIndex::build(&t);
        for w in [[0.5, 0.5], [0.1, 0.9], [1.0, 0.0]] {
            for k in 1..=pts.len() / 2 {
                let masked = kth_point_masked(&t, &dom, &w, k).unwrap();
                let exact = kth_point(&t, &w, k).unwrap();
                assert_eq!(masked.score, exact.score, "w {w:?} k {k}");
            }
            assert!(kth_point_masked(&t, &dom, &w, pts.len() / 2 + 1).is_none());
        }
        assert!(dom.skips() > 0);
    }

    #[test]
    fn masked_view_kth_score_matches_unmasked() {
        let (tree, view) = overlaid_fig();
        let dom = DominanceIndex::build(&tree);
        for w in [[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]] {
            for k in 1..=view.live_len() {
                let masked = kth_point_view_masked(&tree, &view, &dom, &w, k).unwrap();
                let exact = kth_point_view(&tree, &view, &w, k).unwrap();
                assert_eq!(masked.score, exact.score, "w {w:?} k {k}");
            }
            assert!(kth_point_view_masked(&tree, &view, &dom, &w, view.live_len() + 1).is_none());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn masked_kth_matches_unmasked_under_mutation(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..150),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..10),
            raw in (0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..12,
            del_stride in 2usize..5,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let dom = DominanceIndex::build(&tree);
            let dead_ids: Vec<u32> = (0..pts.len() as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [pts[i as usize].0, pts[i as usize].1])
                .collect();
            let view = DeltaView::new(
                Arc::new(FlatPoints::from_row_major(2, &flat)),
                Arc::new(extra.iter().flat_map(|(a, b)| [*a, *b]).collect()),
                Arc::new((0..extra.len() as u32).map(|i| pts.len() as u32 + i).collect()),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let s = raw.0 + raw.1;
            let w = [raw.0 / s, raw.1 / s];
            match (kth_point_masked(&tree, &dom, &w, k), kth_point(&tree, &w, k)) {
                (Some(m), Some(e)) => prop_assert_eq!(m.score, e.score),
                (m, e) => prop_assert_eq!(m.is_none(), e.is_none()),
            }
            match (
                kth_point_view_masked(&tree, &view, &dom, &w, k),
                kth_point_view(&tree, &view, &w, k),
            ) {
                (Some(m), Some(e)) => prop_assert_eq!(m.score, e.score),
                (m, e) => prop_assert_eq!(m.is_none(), e.is_none()),
            }
        }

        #[test]
        fn view_topk_matches_rebuilt_scan(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..150),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..10),
            raw in (0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..20,
            del_stride in 2usize..5,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let dead_ids: Vec<u32> = (0..pts.len() as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [pts[i as usize].0, pts[i as usize].1])
                .collect();
            let view = DeltaView::new(
                Arc::new(FlatPoints::from_row_major(2, &flat)),
                Arc::new(extra.iter().flat_map(|(a, b)| [*a, *b]).collect()),
                Arc::new((0..extra.len() as u32).map(|i| pts.len() as u32 + i).collect()),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let (live, ids) = view.materialize_row_major();
            let got = topk_view(&tree, &view, &[raw.0, raw.1], k);
            let oracle = topk_scan(&live, &[raw.0, raw.1], k);
            prop_assert_eq!(got.len(), oracle.len());
            for (g, o) in got.iter().zip(&oracle) {
                prop_assert!((g.1 - o.1).abs() < 1e-12);
            }
            // Where scores are strict, ids must map through the live-row
            // id table (ties may permute between structures).
            for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                let tied = oracle.iter().filter(|(_, s)| *s == o.1).count() > 1;
                if !tied {
                    prop_assert_eq!(g.0, ids[o.0 as usize], "position {}", i);
                }
            }
        }

        #[test]
        fn tree_topk_matches_scan_scores(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..250),
            raw in (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
            k in 1usize..20,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b, c)| [*a, *b, *c]).collect();
            let t = RTree::bulk_load_with_fanout(3, &flat, 8);
            let s = raw.0 + raw.1 + raw.2;
            let w = [raw.0 / s, raw.1 / s, raw.2 / s];
            let a = topk(&t, &w, k);
            let b = topk_scan(&flat, &w, k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }
}
