//! Approximate monochromatic reverse top-k in arbitrary dimensions.
//!
//! For d > 2 the exact `MRTOPk(q)` is a union of cells of a hyperplane
//! arrangement on the (d−1)-simplex, whose complexity grows quickly
//! (the paper's §2 notes that published exact monochromatic algorithms
//! are 2-D). This module provides the standard sampling estimate: draw
//! weighting vectors uniformly from the simplex, test membership with a
//! capped rank query, and report the qualifying samples plus the
//! estimated volume fraction of the qualifying region.
//!
//! In 2-D the estimate converges to the exact interval measure from
//! [`crate::mrtopk`], which the tests verify.

use wqrtq_geom::{DeltaView, Weight};
use wqrtq_rtree::{ProbeScratch, RTree};

/// A sampled estimate of the monochromatic reverse top-k result.
#[derive(Clone, Debug)]
pub struct MrtopkEstimate {
    /// Sampled weighting vectors whose top-k contains `q`.
    pub members: Vec<Weight>,
    /// Number of samples drawn.
    pub samples: usize,
    /// Estimated fraction of the weight simplex in `MRTOPk(q)`.
    pub volume_fraction: f64,
}

/// Deterministic splitmix64 step (no external RNG needed here).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Estimates `MRTOPk(q)` by uniform simplex sampling.
///
/// # Panics
/// Panics if `q` does not match the tree's dimensionality.
pub fn monochromatic_reverse_topk_sampled(
    tree: &RTree,
    q: &[f64],
    k: usize,
    samples: usize,
    seed: u64,
) -> MrtopkEstimate {
    assert_eq!(q.len(), tree.dim(), "query dimension mismatch");
    let mut scratch = ProbeScratch::new();
    sampled_with_membership(tree.dim(), samples, seed, |w| {
        crate::rank::is_in_topk_scratch(tree, w, q, k, &mut scratch)
    })
}

/// [`monochromatic_reverse_topk_sampled`] over a delta overlay: the same
/// deterministic sample sequence (seed-driven, independent of the data),
/// with each membership verdict decided against the live point set. The
/// estimate is therefore identical to sampling a dataset rebuilt from
/// the overlay's live rows.
pub fn monochromatic_reverse_topk_sampled_view(
    tree: &RTree,
    view: &DeltaView,
    q: &[f64],
    k: usize,
    samples: usize,
    seed: u64,
) -> MrtopkEstimate {
    assert_eq!(q.len(), tree.dim(), "query dimension mismatch");
    let mut scratch = ProbeScratch::new();
    sampled_with_membership(tree.dim(), samples, seed, |w| {
        crate::rank::is_in_topk_view(tree, view, w, q, k, &mut scratch)
    })
}

/// The shared sampling loop: the weight sequence depends only on
/// `(dim, samples, seed)`, so any two membership oracles that agree on
/// every weight produce bit-identical estimates.
fn sampled_with_membership(
    dim: usize,
    samples: usize,
    seed: u64,
    mut is_member: impl FnMut(&[f64]) -> bool,
) -> MrtopkEstimate {
    let mut state = seed ^ 0xd1b54a32d192ed03;
    let mut members = Vec::new();
    for _ in 0..samples {
        // Uniform simplex draw via exponential spacings.
        let mut w: Vec<f64> = (0..dim)
            .map(|_| -unit(&mut state).max(f64::EPSILON).ln())
            .collect();
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x /= total;
        }
        if is_member(&w) {
            members.push(Weight::new(w));
        }
    }
    MrtopkEstimate {
        volume_fraction: members.len() as f64 / samples.max(1) as f64,
        samples,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrtopk::monochromatic_reverse_topk_2d;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn estimate_converges_to_exact_measure_in_2d() {
        // Exact MRTOP3(q) is [1/6, 3/4]: measure 7/12 ≈ 0.5833 of the
        // simplex (x is uniform on [0,1] under simplex sampling in 2-D).
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let est = monochromatic_reverse_topk_sampled(&tree, &[4.0, 4.0], 3, 4000, 7);
        let exact = monochromatic_reverse_topk_2d(&pts, &[4.0, 4.0], 3);
        let exact_measure: f64 = exact.iter().map(|iv| iv.hi - iv.lo).sum();
        assert!(
            (est.volume_fraction - exact_measure).abs() < 0.04,
            "estimate {} vs exact measure {exact_measure}",
            est.volume_fraction
        );
    }

    #[test]
    fn members_are_genuine_members() {
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let est = monochromatic_reverse_topk_sampled(&tree, &[4.0, 4.0], 3, 500, 3);
        let exact = monochromatic_reverse_topk_2d(&pts, &[4.0, 4.0], 3);
        for w in &est.members {
            assert!(
                exact.iter().any(|iv| iv.contains(w[0])),
                "sampled member {w:?} outside the exact intervals"
            );
        }
    }

    #[test]
    fn three_d_estimate_is_sane() {
        // A dominated query qualifies nowhere; a dominating one
        // everywhere.
        let mut pts = Vec::new();
        let mut state = 5u64;
        for _ in 0..500 {
            for _ in 0..3 {
                pts.push(unit(&mut state) + 0.5);
            }
        }
        let tree = RTree::bulk_load(3, &pts);
        let everywhere = monochromatic_reverse_topk_sampled(&tree, &[0.1, 0.1, 0.1], 1, 300, 1);
        assert_eq!(everywhere.volume_fraction, 1.0);
        let nowhere = monochromatic_reverse_topk_sampled(&tree, &[10.0, 10.0, 10.0], 1, 300, 1);
        assert_eq!(nowhere.volume_fraction, 0.0);
        assert!(nowhere.members.is_empty());
    }

    #[test]
    fn view_estimate_matches_rebuilt_oracle() {
        use std::sync::Arc;
        use wqrtq_geom::FlatPoints;
        let pts = fig_points();
        let tree = RTree::bulk_load(2, &pts);
        let view = DeltaView::new(
            Arc::new(FlatPoints::from_row_major(2, &pts)),
            Arc::new(vec![4.5, 2.0, 0.5, 0.5]),
            Arc::new(vec![7, 8]),
            Arc::new(vec![6.0, 3.0, 7.0, 5.0]),
            Arc::new(vec![1, 4]),
        );
        let (live, _) = view.materialize_row_major();
        let rebuilt = RTree::bulk_load(2, &live);
        for (k, seed) in [(1, 3u64), (3, 9), (5, 42)] {
            let got =
                monochromatic_reverse_topk_sampled_view(&tree, &view, &[4.0, 4.0], k, 400, seed);
            let oracle = monochromatic_reverse_topk_sampled(&rebuilt, &[4.0, 4.0], k, 400, seed);
            assert_eq!(got.volume_fraction, oracle.volume_fraction, "k {k}");
            assert_eq!(got.members.len(), oracle.members.len());
            for (a, b) in got.members.iter().zip(&oracle.members) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let tree = RTree::bulk_load(2, &fig_points());
        let a = monochromatic_reverse_topk_sampled(&tree, &[4.0, 4.0], 3, 200, 9);
        let b = monochromatic_reverse_topk_sampled(&tree, &[4.0, 4.0], 3, 200, 9);
        assert_eq!(a.volume_fraction, b.volume_fraction);
        assert_eq!(a.members.len(), b.members.len());
    }
}
