//! Bichromatic reverse top-k queries (Definition 3 of the paper).
//!
//! Given products `P`, customer weighting vectors `W`, a query product `q`
//! and `k`, return every `w ∈ W` with `q ∈ TOPk(w)`.
//!
//! Implementations, from oracle to hot path:
//!
//! * [`bichromatic_reverse_topk_naive`] — an independent rank scan per
//!   weight over the raw points (the correctness oracle);
//! * [`bichromatic_reverse_topk_rta_legacy`] — the PR-1 RTA: per-weight
//!   `is_in_topk` plus a *full* best-first top-k refresh of the threshold
//!   buffer after every index probe. Kept verbatim as the frozen baseline
//!   the `rank_bench` speedup is measured against;
//! * [`bichromatic_reverse_topk_rta`] — the rebuilt hot path: weights are
//!   processed in similarity order; a rolling *culprit pool* (points
//!   recently proven strictly better than `q`) provides the threshold
//!   test via the fused [`count_better_rows`] kernel, and weights that
//!   survive it go to the early-exit membership probe, which refills the
//!   pool with the culprits it encounters — no per-weight top-k, no
//!   per-weight allocation. The pool test is sound for *any* pool
//!   contents: pool members are dataset points, so `k` of them scoring
//!   strictly below `f(w, q)` proves `rank(q, w) > k` regardless of how
//!   the pool was assembled.
//!
//! The hot path is exposed in shardable form ([`rta_sorted_order`] +
//! [`rta_over_order`]): a serving engine computes the similarity order
//! once, splits it into contiguous chunks, and runs each chunk on a
//! different worker with its own scratch — results merge by
//! concatenation because every chunk's verdicts are independent.

use crate::rank::is_in_topk;
use wqrtq_geom::{count_better_rows, score, DeltaView, Point, Weight};
use wqrtq_rtree::{search::CulpritBuf, DominanceIndex, ProbeScratch, RTree};

/// Work counters exposed by the RTA implementations for the ablation
/// benchmarks (`ablation_rta_vs_naive`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtaStats {
    /// Weights rejected purely by the reused threshold buffer/pool.
    pub buffer_prunes: usize,
    /// Weights that needed an index probe.
    pub tree_verifications: usize,
}

impl RtaStats {
    /// Merges another shard's counters into this one.
    pub fn merge(&mut self, other: RtaStats) {
        self.buffer_prunes += other.buffer_prunes;
        self.tree_verifications += other.tree_verifications;
    }
}

/// Reusable buffers for the RTA hot path: the membership probe's
/// traversal queue, the rolling culprit pool, and the per-probe culprit
/// collector. One instance per serving worker; zero allocations per
/// request after warm-up.
#[derive(Debug, Default)]
pub struct RtaScratch {
    probe: ProbeScratch,
    /// Flat row-major coordinates of recently-seen culprit points.
    pool: Vec<f64>,
    /// Ids parallel to `pool` — the prune counts *distinct* dataset
    /// points, so the same point must never enter the pool twice.
    pool_ids: Vec<u32>,
    /// Culprits collected by the current probe (merged into the pool).
    fresh: CulpritBuf,
    /// Whether any RTA has run on this scratch (culprit-plane requests
    /// allocate nothing at all, so capacity alone can't signal warmth).
    warm: bool,
}

impl RtaScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the scratch has already served a request — subsequent
    /// requests reuse its buffers instead of allocating (serving
    /// metrics count these as buffer-reuse hits).
    pub fn is_warm(&self) -> bool {
        self.warm || self.pool.capacity() > 0
    }
}

/// Naive bichromatic reverse top-k: a full rank scan per weight.
/// Returns the indices (into `weights`) of the qualifying vectors, in
/// ascending order.
pub fn bichromatic_reverse_topk_naive(
    points: &[Point],
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, w) in weights.iter().enumerate() {
        let sq = w.score(q);
        let better = points.iter().filter(|p| w.score(p) < sq).count();
        if better < k {
            out.push(i);
        }
    }
    out
}

/// The similarity order RTA processes weights in: lexicographic over the
/// entries, so adjacent weights are close and their culprit sets
/// transfer well. Shared by the legacy and rebuilt implementations (and
/// by engines sharding [`rta_over_order`]).
pub fn rta_sorted_order(weights: &[Weight]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[a]
            .as_slice()
            .iter()
            .zip(weights[b].as_slice())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// RTA-style bichromatic reverse top-k over an R-tree.
/// Returns qualifying indices in ascending order.
pub fn bichromatic_reverse_topk_rta(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    bichromatic_reverse_topk_rta_with_stats(tree, weights, q, k).0
}

/// [`bichromatic_reverse_topk_rta`] with pruning statistics.
pub fn bichromatic_reverse_topk_rta_with_stats(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> (Vec<usize>, RtaStats) {
    let mut scratch = RtaScratch::new();
    let order = rta_sorted_order(weights);
    let (mut result, stats) = rta_over_order(tree, weights, &order, q, k, &mut scratch);
    result.sort_unstable();
    (result, stats)
}

/// Runs the rebuilt RTA over one contiguous slice of a similarity order
/// (see [`rta_sorted_order`]). Returns the qualifying original indices
/// in traversal order (callers sort after merging shards) plus the
/// shard's pruning counters.
///
/// Sharding-safe: each call maintains its own culprit pool inside
/// `scratch`, so verdicts never depend on other shards.
pub fn rta_over_order(
    tree: &RTree,
    weights: &[Weight],
    order: &[usize],
    q: &[f64],
    k: usize,
    scratch: &mut RtaScratch,
) -> (Vec<usize>, RtaStats) {
    rta_over_order_masked(tree, weights, order, q, k, None, scratch)
}

/// [`rta_over_order`] with an optional [`DominanceIndex`] pre-filter:
/// the seed traversal and every membership probe skip points (and whole
/// subtrees) that `k` other points dominate. Verdicts are bit-identical
/// to the unmasked run — masked points can never flip a membership
/// outcome — though the prune/verify split in [`RtaStats`] may shift
/// (the culprit pool is filled from whichever points the probes actually
/// visit). Passing `None`, a mask whose build cap is below `k`, or
/// weights with negative entries degrades gracefully to the unmasked
/// path.
#[allow(clippy::too_many_arguments)]
pub fn rta_over_order_masked(
    tree: &RTree,
    weights: &[Weight],
    order: &[usize],
    q: &[f64],
    k: usize,
    dom: Option<&DominanceIndex>,
    scratch: &mut RtaScratch,
) -> (Vec<usize>, RtaStats) {
    let mut stats = RtaStats::default();
    let mut result = Vec::new();
    if order.is_empty() || k == 0 {
        return (result, stats);
    }
    scratch.warm = true;
    let dom = dom.filter(|d| d.usable_for(k));
    // Culprit-plane fast path: a point with ≥ k dominators can never be
    // a top-k member or a culprit, so every verdict is a capped count
    // over the compact k-skyband — no tree probes at all. A rolling
    // culprit pool still fronts the plane: most outranked weights are
    // rejected by re-scoring ~2k recent culprit rows (a dozen FLOPs),
    // and whenever the plane does rule a weight out, the pool is
    // refreshed with culprits sampled from the same skyband, so it
    // tracks the sorted weight walk. Weights with negative entries
    // (where the dominance argument fails) fall back to an exact
    // unmasked probe individually.
    if let Some(d) = dom {
        if d.plane_usable_for(k) {
            let dim = tree.dim();
            let pool_points_cap = 2 * k;
            scratch.pool.clear();
            scratch.pool_ids.clear();
            for &idx in order {
                let w = &weights[idx];
                let sq = w.score(q);
                // Pool rows are distinct dataset points (ids here are
                // plane-local indices, never mixed with the tree path's
                // dataset ids — both pools are per-request), so k of
                // them beating q prove it out.
                if scratch.pool_ids.len() >= k && count_better_rows(&scratch.pool, w, sq) >= k {
                    stats.buffer_prunes += 1;
                    continue;
                }
                match d.plane_outranked(w.as_slice(), sq, k) {
                    Some(outranked) => {
                        stats.buffer_prunes += 1;
                        if outranked {
                            // Refresh the pool with culprits sampled
                            // from the same skyband (id-deduplicated,
                            // recency-bounded — the exact discipline of
                            // the tree path's probe-fed pool).
                            scratch.fresh.clear();
                            d.plane_culprits_into(w.as_slice(), sq, k, 2 * k, &mut scratch.fresh);
                            for (i, &id) in scratch.fresh.ids.iter().enumerate() {
                                if scratch.pool_ids.contains(&id) {
                                    continue;
                                }
                                scratch.pool_ids.push(id);
                                scratch.pool.extend_from_slice(
                                    &scratch.fresh.coords[i * dim..(i + 1) * dim],
                                );
                            }
                            if scratch.pool_ids.len() > pool_points_cap {
                                let excess = scratch.pool_ids.len() - pool_points_cap;
                                scratch.pool_ids.drain(0..excess);
                                scratch.pool.drain(0..excess * dim);
                            }
                        } else {
                            result.push(idx);
                        }
                    }
                    None => {
                        stats.tree_verifications += 1;
                        if tree
                            .probe_topk_membership(w.as_slice(), sq, k, &mut scratch.probe, None)
                            .in_topk
                        {
                            result.push(idx);
                        }
                    }
                }
            }
            return (result, stats);
        }
    }
    let dim = tree.dim();
    // The pool keeps at most 2k recent culprits: enough slack that the
    // k needed for a prune survive drift across the sorted weights,
    // small enough that the fused count kernel stays in L1.
    let pool_points_cap = 2 * k;
    scratch.pool.clear();
    scratch.pool_ids.clear();

    // Seed: the first weight's exact top-k both decides its membership
    // (q is in iff fewer than k of the k best strictly beat it — every
    // other point scores no better than the k-th) and fills the pool.
    // A masked traversal emits the same k scores bit-for-bit, so the
    // seeded verdict is unchanged.
    let first = order[0];
    let w0 = &weights[first];
    let sq0 = w0.score(q);
    stats.tree_verifications += 1;
    let mut seeded_better = 0usize;
    let mut bf = match dom {
        Some(d) if !w0.as_slice().iter().any(|&x| x < 0.0) => {
            tree.best_first_masked(w0.as_slice(), d, k)
        }
        _ => tree.best_first(w0),
    };
    for _ in 0..k {
        match bf.next_entry() {
            Some(r) => {
                if r.score < sq0 {
                    seeded_better += 1;
                }
                scratch.pool_ids.push(r.id);
                scratch.pool.extend_from_slice(r.coords);
            }
            None => break,
        }
    }
    if seeded_better < k {
        result.push(first);
    }

    for &idx in &order[1..] {
        let w = &weights[idx];
        let sq = w.score(q);

        // Pool threshold test: k *distinct* dataset points strictly
        // better than q under this weight prove q out with zero index
        // work (sound for any pool contents — they are dataset points).
        if scratch.pool_ids.len() >= k && count_better_rows(&scratch.pool, w, sq) >= k {
            stats.buffer_prunes += 1;
            continue;
        }

        stats.tree_verifications += 1;
        scratch.fresh.clear();
        let probe = match dom {
            Some(d) => tree.probe_topk_membership_masked(
                w.as_slice(),
                sq,
                k,
                k,
                d,
                &mut scratch.probe,
                Some(&mut scratch.fresh),
            ),
            None => {
                tree.probe_topk_membership(w, sq, k, &mut scratch.probe, Some(&mut scratch.fresh))
            }
        };
        if probe.in_topk {
            result.push(idx);
        }
        // Merge the probe's culprits into the pool (id-deduplicated),
        // recency-bounded so stale evidence ages out.
        for (i, &id) in scratch.fresh.ids.iter().enumerate() {
            if scratch.pool_ids.contains(&id) {
                continue;
            }
            scratch.pool_ids.push(id);
            scratch
                .pool
                .extend_from_slice(&scratch.fresh.coords[i * dim..(i + 1) * dim]);
        }
        if scratch.pool_ids.len() > pool_points_cap {
            let excess = scratch.pool_ids.len() - pool_points_cap;
            scratch.pool_ids.drain(0..excess);
            scratch.pool.drain(0..excess * dim);
        }
    }
    (result, stats)
}

/// [`rta_over_order`] over a delta overlay: every weight's verdict is
/// corrected by the `O(Δ)` appended/tombstoned sweeps, the culprit pool
/// keeps only *live* base points (a tombstoned culprit would prune
/// unsoundly), and the base probe's count target shifts by the overlay
/// corrections — so the verdicts are exactly those of a dataset rebuilt
/// from the live rows. Plain views take the unmodified hot path.
///
/// Soundness of the pruning ladder, per weight with `sq = f(w, q)`:
///
/// 1. `d_add` live appended rows beat `q`; if `d_add ≥ k`, `q` is out.
/// 2. The pool holds live base points; `pool_better ≥ k − d_add` proves
///    at least `k` live points beat `q` — out, no index work.
/// 3. Otherwise probe the base index for target `k − d_add + d_dead`:
///    the probe decides `base_all < k − d_add + d_dead`, which is
///    exactly `live_better < k`.
pub fn rta_over_order_view(
    tree: &RTree,
    view: &DeltaView,
    weights: &[Weight],
    order: &[usize],
    q: &[f64],
    k: usize,
    scratch: &mut RtaScratch,
) -> (Vec<usize>, RtaStats) {
    rta_over_order_view_masked(tree, view, weights, order, q, k, None, scratch)
}

/// [`rta_over_order_view`] with an optional [`DominanceIndex`]
/// pre-filter over the *base* index. The exclusion threshold per weight
/// is the probe's count target plus the view's tombstone count, so each
/// skipped point keeps enough *live* dominators to make the verdict
/// bit-identical (see `DominanceIndex`'s module docs for the deletion
/// argument). `None` or an insufficient build cap degrades to the
/// unmasked path per weight.
#[allow(clippy::too_many_arguments)]
pub fn rta_over_order_view_masked(
    tree: &RTree,
    view: &DeltaView,
    weights: &[Weight],
    order: &[usize],
    q: &[f64],
    k: usize,
    dom: Option<&DominanceIndex>,
    scratch: &mut RtaScratch,
) -> (Vec<usize>, RtaStats) {
    if view.is_plain() {
        return rta_over_order_masked(tree, weights, order, q, k, dom, scratch);
    }
    let mut stats = RtaStats::default();
    let mut result = Vec::new();
    if order.is_empty() || k == 0 {
        return (result, stats);
    }
    scratch.warm = true;
    let dim = tree.dim();
    let pool_points_cap = 2 * k;
    scratch.pool.clear();
    scratch.pool_ids.clear();

    for &idx in order {
        let w = &weights[idx];
        let sq = w.score(q);
        let d_add = view.count_better_delta(w.as_slice(), sq);
        if d_add >= k {
            // The appended rows alone outrank q.
            stats.buffer_prunes += 1;
            continue;
        }
        let need_live_base = k - d_add;
        if scratch.pool_ids.len() >= need_live_base
            && count_better_rows(&scratch.pool, w.as_slice(), sq) >= need_live_base
        {
            stats.buffer_prunes += 1;
            continue;
        }

        let d_dead = view.count_better_dead(w.as_slice(), sq);
        // Culprit-plane fast path: every base point better than q —
        // live or tombstoned — either sits in the k-skyband plane or
        // has `cap` dominators that do, so a capped plane count with
        // `cap = need_live_base + d_dead` decides the verdict exactly.
        if let Some(d) = dom {
            let cap = need_live_base + d_dead;
            if let Some(outranked) = d.plane_outranked(w.as_slice(), sq, cap) {
                stats.buffer_prunes += 1;
                if !outranked {
                    result.push(idx);
                }
                continue;
            }
        }

        stats.tree_verifications += 1;
        scratch.fresh.clear();
        let k_eff = need_live_base + view.tombstone_len();
        let probe = match dom.filter(|d| d.usable_for(k_eff)) {
            Some(d) => tree.probe_topk_membership_masked(
                w.as_slice(),
                sq,
                need_live_base + d_dead,
                k_eff,
                d,
                &mut scratch.probe,
                Some(&mut scratch.fresh),
            ),
            None => tree.probe_topk_membership(
                w.as_slice(),
                sq,
                need_live_base + d_dead,
                &mut scratch.probe,
                Some(&mut scratch.fresh),
            ),
        };
        if probe.in_topk {
            result.push(idx);
        }
        // Merge the probe's culprits into the pool — live, deduplicated.
        for (i, &id) in scratch.fresh.ids.iter().enumerate() {
            if view.is_deleted(id) || scratch.pool_ids.contains(&id) {
                continue;
            }
            scratch.pool_ids.push(id);
            scratch
                .pool
                .extend_from_slice(&scratch.fresh.coords[i * dim..(i + 1) * dim]);
        }
        if scratch.pool_ids.len() > pool_points_cap {
            let excess = scratch.pool_ids.len() - pool_points_cap;
            scratch.pool_ids.drain(0..excess);
            scratch.pool.drain(0..excess * dim);
        }
    }
    (result, stats)
}

/// Bichromatic reverse top-k over a delta overlay, in ascending index
/// order — the one-shot wrapper over [`rta_over_order_view`].
pub fn bichromatic_reverse_topk_rta_view(
    tree: &RTree,
    view: &DeltaView,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut scratch = RtaScratch::new();
    let order = rta_sorted_order(weights);
    let (mut result, _) = rta_over_order_view(tree, view, weights, &order, q, k, &mut scratch);
    result.sort_unstable();
    result
}

/// The PR-1 RTA implementation, frozen as the `rank_bench` baseline: a
/// buffered threshold test over the previous weight's *exact* top-k,
/// then `is_in_topk` plus a full best-first top-k buffer refresh per
/// verified weight (two traversals and `k` heap allocations each).
pub fn bichromatic_reverse_topk_rta_legacy(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    bichromatic_reverse_topk_rta_legacy_with_stats(tree, weights, q, k).0
}

/// [`bichromatic_reverse_topk_rta_legacy`] with pruning statistics.
pub fn bichromatic_reverse_topk_rta_legacy_with_stats(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> (Vec<usize>, RtaStats) {
    let mut stats = RtaStats::default();
    if weights.is_empty() || k == 0 {
        return (Vec::new(), stats);
    }

    let order = rta_sorted_order(weights);
    let mut result = Vec::new();
    // Buffer: coordinates of the previous weight's top-k points.
    let mut buffer: Vec<Vec<f64>> = Vec::new();

    for &idx in &order {
        let w = &weights[idx];
        let sq = w.score(q);

        // Threshold test: if k buffered points already beat q under this
        // weight, q cannot be in TOPk(w) — no index work needed.
        if buffer.len() >= k {
            let better = buffer.iter().filter(|p| score(w, p) < sq).count();
            if better >= k {
                stats.buffer_prunes += 1;
                continue;
            }
        }

        stats.tree_verifications += 1;
        if is_in_topk(tree, w, q, k) {
            result.push(idx);
        }
        // Refresh the buffer with this weight's exact top-k.
        buffer.clear();
        let mut bf = tree.best_first(w);
        for _ in 0..k {
            match bf.next_entry() {
                Some(r) => buffer.push(r.coords.to_vec()),
                None => break,
            }
        }
    }

    result.sort_unstable();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig_products() -> Vec<Point> {
        [
            [2.0, 1.0],
            [6.0, 3.0],
            [1.0, 9.0],
            [9.0, 3.0],
            [7.0, 5.0],
            [5.0, 8.0],
            [3.0, 7.0],
        ]
        .into_iter()
        .map(Point::from)
        .collect()
    }

    fn fig_customers() -> Vec<Weight> {
        vec![
            Weight::new(vec![0.1, 0.9]), // Kevin
            Weight::new(vec![0.5, 0.5]), // Tony
            Weight::new(vec![0.3, 0.7]), // Anna
            Weight::new(vec![0.9, 0.1]), // Julia
        ]
    }

    fn fig_tree() -> RTree {
        let flat: Vec<f64> = fig_products()
            .iter()
            .flat_map(|p| p.coords().to_vec())
            .collect();
        RTree::bulk_load(2, &flat)
    }

    #[test]
    fn paper_example_brtop3_is_tony_and_anna() {
        let res = bichromatic_reverse_topk_naive(&fig_products(), &fig_customers(), &[4.0, 4.0], 3);
        assert_eq!(res, vec![1, 2]); // Tony, Anna
    }

    #[test]
    fn rta_matches_naive_on_paper_example() {
        let (res, stats) =
            bichromatic_reverse_topk_rta_with_stats(&fig_tree(), &fig_customers(), &[4.0, 4.0], 3);
        assert_eq!(res, vec![1, 2]);
        assert_eq!(stats.buffer_prunes + stats.tree_verifications, 4);
    }

    #[test]
    fn legacy_rta_matches_naive_on_paper_example() {
        let (res, stats) = bichromatic_reverse_topk_rta_legacy_with_stats(
            &fig_tree(),
            &fig_customers(),
            &[4.0, 4.0],
            3,
        );
        assert_eq!(res, vec![1, 2]);
        assert_eq!(stats.buffer_prunes + stats.tree_verifications, 4);
    }

    #[test]
    fn k_larger_than_dataset_returns_everyone() {
        let res =
            bichromatic_reverse_topk_naive(&fig_products(), &fig_customers(), &[4.0, 4.0], 100);
        assert_eq!(res, vec![0, 1, 2, 3]);
        let rta = bichromatic_reverse_topk_rta(&fig_tree(), &fig_customers(), &[4.0, 4.0], 100);
        assert_eq!(rta, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_weights_and_k_zero() {
        assert!(bichromatic_reverse_topk_naive(&fig_products(), &[], &[4.0, 4.0], 3).is_empty());
        let res = bichromatic_reverse_topk_rta(&fig_tree(), &fig_customers(), &[4.0, 4.0], 0);
        assert!(res.is_empty());
        let res = bichromatic_reverse_topk_rta(&fig_tree(), &[], &[4.0, 4.0], 3);
        assert!(res.is_empty());
    }

    #[test]
    fn rta_prunes_with_many_similar_weights() {
        // A dense fan of weights on a dataset where q is far from the top:
        // most weights should be rejected by the culprit pool alone.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        for _ in 0..500 {
            for _ in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                pts.push((state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        let tree = RTree::bulk_load(2, &pts);
        let weights: Vec<Weight> = (1..100)
            .map(|i| Weight::from_first_2d(i as f64 / 100.0))
            .collect();
        let q = [0.9, 0.9]; // dominated by many points: never in top-k
        let (res, stats) = bichromatic_reverse_topk_rta_with_stats(&tree, &weights, &q, 5);
        assert!(res.is_empty());
        assert!(
            stats.buffer_prunes > stats.tree_verifications,
            "expected the pool to do most of the work: {stats:?}"
        );
    }

    #[test]
    fn sharded_order_matches_full_run() {
        // Chunking the sorted order and merging must reproduce the
        // one-shot result — the contract the engine's parallel path
        // relies on.
        let mut pts = Vec::new();
        let mut state = 99u64;
        for _ in 0..400 {
            for _ in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(17);
                pts.push((state >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
            }
        }
        let tree = RTree::bulk_load(2, &pts);
        let weights: Vec<Weight> = (1..120)
            .map(|i| Weight::from_first_2d(i as f64 / 120.0))
            .collect();
        let q = [3.0, 3.5];
        for k in [1, 4, 9] {
            let full = bichromatic_reverse_topk_rta(&tree, &weights, &q, k);
            let order = rta_sorted_order(&weights);
            for shards in [2, 3, 7] {
                let chunk = order.len().div_ceil(shards);
                let mut merged = Vec::new();
                let mut stats = RtaStats::default();
                for piece in order.chunks(chunk) {
                    let mut scratch = RtaScratch::new();
                    let (part, s) = rta_over_order(&tree, &weights, piece, &q, k, &mut scratch);
                    merged.extend(part);
                    stats.merge(s);
                }
                merged.sort_unstable();
                assert_eq!(merged, full, "k={k} shards={shards}");
                assert_eq!(
                    stats.buffer_prunes + stats.tree_verifications,
                    weights.len(),
                    "every weight decided exactly once"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_preserves_results() {
        let tree = fig_tree();
        let weights = fig_customers();
        let order = rta_sorted_order(&weights);
        let mut scratch = RtaScratch::new();
        assert!(!scratch.is_warm());
        let (mut a, _) = rta_over_order(&tree, &weights, &order, &[4.0, 4.0], 3, &mut scratch);
        a.sort_unstable();
        assert!(scratch.is_warm());
        // Reuse the same scratch for a different query: must not leak
        // pool state into wrong answers.
        let (mut b, _) = rta_over_order(&tree, &weights, &order, &[1.0, 1.0], 3, &mut scratch);
        b.sort_unstable();
        let naive_b = bichromatic_reverse_topk_naive(&fig_products(), &weights, &[1.0, 1.0], 3);
        assert_eq!(b, naive_b);
        let (mut a2, _) = rta_over_order(&tree, &weights, &order, &[4.0, 4.0], 3, &mut scratch);
        a2.sort_unstable();
        assert_eq!(a, a2);
    }

    #[test]
    fn view_rta_on_plain_view_delegates_to_hot_path() {
        use std::sync::Arc;
        use wqrtq_geom::FlatPoints;
        let flat: Vec<f64> = fig_products()
            .iter()
            .flat_map(|p| p.coords().to_vec())
            .collect();
        let tree = RTree::bulk_load(2, &flat);
        let view = DeltaView::plain(Arc::new(FlatPoints::from_row_major(2, &flat)));
        let res = bichromatic_reverse_topk_rta_view(&tree, &view, &fig_customers(), &[4.0, 4.0], 3);
        assert_eq!(res, vec![1, 2]); // Tony, Anna
    }

    #[test]
    fn masked_rta_matches_unmasked_on_paper_example() {
        let tree = fig_tree();
        let dom = DominanceIndex::build(&tree);
        let weights = fig_customers();
        let order = rta_sorted_order(&weights);
        let mut scratch = RtaScratch::new();
        let (mut got, _) = rta_over_order_masked(
            &tree,
            &weights,
            &order,
            &[4.0, 4.0],
            3,
            Some(&dom),
            &mut scratch,
        );
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]); // Tony, Anna
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn masked_rta_matches_unmasked_with_ties_and_mutation(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 5..120),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..10),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..8,
            nw in 1usize..16,
            del_stride in 2usize..5,
            tie_copies in 0usize..4,
        ) {
            use std::sync::Arc;
            use wqrtq_geom::FlatPoints;
            // Duplicates of q tie at the boundary under every weight.
            let mut all = pts.clone();
            for _ in 0..tie_copies {
                all.push(q);
            }
            let flat: Vec<f64> = all.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let dom = DominanceIndex::build(&tree);
            let weights: Vec<Weight> = (0..nw)
                .map(|i| Weight::from_first_2d((i as f64 + 0.5) / nw as f64))
                .collect();
            let order = rta_sorted_order(&weights);
            let qv = [q.0, q.1];

            // Plain RTA: masked vs unmasked verdicts.
            let mut s1 = RtaScratch::new();
            let mut s2 = RtaScratch::new();
            let (mut plain, _) = rta_over_order(&tree, &weights, &order, &qv, k, &mut s1);
            let (mut masked, _) =
                rta_over_order_masked(&tree, &weights, &order, &qv, k, Some(&dom), &mut s2);
            plain.sort_unstable();
            masked.sort_unstable();
            prop_assert_eq!(&plain, &masked);

            // View RTA over a mutated overlay: masked vs unmasked.
            let dead_ids: Vec<u32> = (0..all.len() as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [all[i as usize].0, all[i as usize].1])
                .collect();
            let view = DeltaView::new(
                Arc::new(FlatPoints::from_row_major(2, &flat)),
                Arc::new(extra.iter().flat_map(|(a, b)| [*a, *b]).collect()),
                Arc::new((0..extra.len() as u32).map(|i| all.len() as u32 + i).collect()),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let mut s3 = RtaScratch::new();
            let mut s4 = RtaScratch::new();
            let (mut vplain, _) =
                rta_over_order_view(&tree, &view, &weights, &order, &qv, k, &mut s3);
            let (mut vmasked, _) = rta_over_order_view_masked(
                &tree, &view, &weights, &order, &qv, k, Some(&dom), &mut s4,
            );
            vplain.sort_unstable();
            vmasked.sort_unstable();
            prop_assert_eq!(&vplain, &vmasked);
        }

        #[test]
        fn view_rta_matches_rebuilt_naive(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 5..120),
            extra in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..10),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..8,
            nw in 1usize..16,
            del_stride in 2usize..5,
        ) {
            use std::sync::Arc;
            use wqrtq_geom::FlatPoints;
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let dead_ids: Vec<u32> = (0..pts.len() as u32).step_by(del_stride).collect();
            let dead_rows: Vec<f64> = dead_ids
                .iter()
                .flat_map(|&i| [pts[i as usize].0, pts[i as usize].1])
                .collect();
            let view = DeltaView::new(
                Arc::new(FlatPoints::from_row_major(2, &flat)),
                Arc::new(extra.iter().flat_map(|(a, b)| [*a, *b]).collect()),
                Arc::new((0..extra.len() as u32).map(|i| pts.len() as u32 + i).collect()),
                Arc::new(dead_rows),
                Arc::new(dead_ids),
            );
            let (live, _) = view.materialize_row_major();
            let live_points: Vec<Point> = live
                .chunks_exact(2)
                .map(|p| Point::from([p[0], p[1]]))
                .collect();
            let weights: Vec<Weight> = (0..nw)
                .map(|i| Weight::from_first_2d((i as f64 + 0.5) / nw as f64))
                .collect();
            let qv = [q.0, q.1];
            let naive = bichromatic_reverse_topk_naive(&live_points, &weights, &qv, k);
            let got = bichromatic_reverse_topk_rta_view(&tree, &view, &weights, &qv, k);
            prop_assert_eq!(&naive, &got);
            // Sharding the order must reproduce the same verdicts.
            let order = rta_sorted_order(&weights);
            let mut merged = Vec::new();
            for piece in order.chunks(order.len().div_ceil(3).max(1)) {
                let mut scratch = RtaScratch::new();
                let (part, _) =
                    rta_over_order_view(&tree, &view, &weights, piece, &qv, k, &mut scratch);
                merged.extend(part);
            }
            merged.sort_unstable();
            prop_assert_eq!(&naive, &merged);
        }

        #[test]
        fn rta_and_legacy_equal_naive(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 5..120),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..8,
            nw in 1usize..16,
        ) {
            let points: Vec<Point> = pts.iter().map(|(a, b)| Point::from([*a, *b])).collect();
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let weights: Vec<Weight> = (0..nw)
                .map(|i| Weight::from_first_2d((i as f64 + 0.5) / nw as f64))
                .collect();
            let qv = [q.0, q.1];
            let naive = bichromatic_reverse_topk_naive(&points, &weights, &qv, k);
            let rta = bichromatic_reverse_topk_rta(&tree, &weights, &qv, k);
            prop_assert_eq!(&naive, &rta);
            let legacy = bichromatic_reverse_topk_rta_legacy(&tree, &weights, &qv, k);
            prop_assert_eq!(&naive, &legacy);
        }

        #[test]
        fn rta_handles_boundary_ties(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 5..80),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..6,
            tie_copies in 1usize..4,
        ) {
            // Duplicates of q in the dataset tie it under every weight;
            // the strict-count semantics must keep q in regardless.
            let mut all = pts.clone();
            for _ in 0..tie_copies {
                all.push(q);
            }
            let points: Vec<Point> = all.iter().map(|(a, b)| Point::from([*a, *b])).collect();
            let flat: Vec<f64> = all.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let weights: Vec<Weight> = (0..12)
                .map(|i| Weight::from_first_2d((i as f64 + 0.5) / 12.0))
                .collect();
            let qv = [q.0, q.1];
            let naive = bichromatic_reverse_topk_naive(&points, &weights, &qv, k);
            let rta = bichromatic_reverse_topk_rta(&tree, &weights, &qv, k);
            prop_assert_eq!(naive, rta);
        }
    }
}
