//! Bichromatic reverse top-k queries (Definition 3 of the paper).
//!
//! Given products `P`, customer weighting vectors `W`, a query product `q`
//! and `k`, return every `w ∈ W` with `q ∈ TOPk(w)`.
//!
//! Two implementations:
//!
//! * [`bichromatic_reverse_topk_naive`] — an independent rank test per
//!   weight over the raw points (the correctness oracle);
//! * [`bichromatic_reverse_topk_rta`] — the RTA strategy of Vlachou et
//!   al. \[31\]: weights are processed in similarity order and the top-k
//!   *buffer* of the previous weight provides a threshold test that
//!   rejects most non-result weights without touching the index.

use crate::rank::is_in_topk;
use wqrtq_geom::{score, Point, Weight};
use wqrtq_rtree::RTree;

/// Work counters exposed by the RTA implementation for the ablation
/// benchmarks (`ablation_rta_vs_naive`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtaStats {
    /// Weights rejected purely by the reused top-k buffer.
    pub buffer_prunes: usize,
    /// Weights that needed an index probe.
    pub tree_verifications: usize,
}

/// Naive bichromatic reverse top-k: a full rank scan per weight.
/// Returns the indices (into `weights`) of the qualifying vectors, in
/// ascending order.
pub fn bichromatic_reverse_topk_naive(
    points: &[Point],
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, w) in weights.iter().enumerate() {
        let sq = w.score(q);
        let better = points.iter().filter(|p| w.score(p) < sq).count();
        if better < k {
            out.push(i);
        }
    }
    out
}

/// RTA-style bichromatic reverse top-k over an R-tree.
/// Returns qualifying indices in ascending order.
pub fn bichromatic_reverse_topk_rta(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> Vec<usize> {
    bichromatic_reverse_topk_rta_with_stats(tree, weights, q, k).0
}

/// [`bichromatic_reverse_topk_rta`] with pruning statistics.
pub fn bichromatic_reverse_topk_rta_with_stats(
    tree: &RTree,
    weights: &[Weight],
    q: &[f64],
    k: usize,
) -> (Vec<usize>, RtaStats) {
    let mut stats = RtaStats::default();
    if weights.is_empty() || k == 0 {
        return (Vec::new(), stats);
    }

    // Process weights in similarity order so adjacent buffers transfer
    // well; remember the original indices for the answer.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[a]
            .as_slice()
            .iter()
            .zip(weights[b].as_slice())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut result = Vec::new();
    // Buffer: coordinates of the previous weight's top-k points.
    let mut buffer: Vec<Vec<f64>> = Vec::new();

    for &idx in &order {
        let w = &weights[idx];
        let sq = w.score(q);

        // Threshold test: if k buffered points already beat q under this
        // weight, q cannot be in TOPk(w) — no index work needed.
        if buffer.len() >= k {
            let better = buffer.iter().filter(|p| score(w, p) < sq).count();
            if better >= k {
                stats.buffer_prunes += 1;
                continue;
            }
        }

        stats.tree_verifications += 1;
        if is_in_topk(tree, w, q, k) {
            result.push(idx);
        }
        // Refresh the buffer with this weight's exact top-k.
        buffer.clear();
        let mut bf = tree.best_first(w);
        for _ in 0..k {
            match bf.next_entry() {
                Some(r) => buffer.push(r.coords.to_vec()),
                None => break,
            }
        }
    }

    result.sort_unstable();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig_products() -> Vec<Point> {
        [
            [2.0, 1.0],
            [6.0, 3.0],
            [1.0, 9.0],
            [9.0, 3.0],
            [7.0, 5.0],
            [5.0, 8.0],
            [3.0, 7.0],
        ]
        .into_iter()
        .map(Point::from)
        .collect()
    }

    fn fig_customers() -> Vec<Weight> {
        vec![
            Weight::new(vec![0.1, 0.9]), // Kevin
            Weight::new(vec![0.5, 0.5]), // Tony
            Weight::new(vec![0.3, 0.7]), // Anna
            Weight::new(vec![0.9, 0.1]), // Julia
        ]
    }

    fn fig_tree() -> RTree {
        let flat: Vec<f64> = fig_products()
            .iter()
            .flat_map(|p| p.coords().to_vec())
            .collect();
        RTree::bulk_load(2, &flat)
    }

    #[test]
    fn paper_example_brtop3_is_tony_and_anna() {
        let res = bichromatic_reverse_topk_naive(&fig_products(), &fig_customers(), &[4.0, 4.0], 3);
        assert_eq!(res, vec![1, 2]); // Tony, Anna
    }

    #[test]
    fn rta_matches_naive_on_paper_example() {
        let (res, stats) =
            bichromatic_reverse_topk_rta_with_stats(&fig_tree(), &fig_customers(), &[4.0, 4.0], 3);
        assert_eq!(res, vec![1, 2]);
        assert_eq!(stats.buffer_prunes + stats.tree_verifications, 4);
    }

    #[test]
    fn k_larger_than_dataset_returns_everyone() {
        let res =
            bichromatic_reverse_topk_naive(&fig_products(), &fig_customers(), &[4.0, 4.0], 100);
        assert_eq!(res, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_weights_and_k_zero() {
        assert!(bichromatic_reverse_topk_naive(&fig_products(), &[], &[4.0, 4.0], 3).is_empty());
        let res = bichromatic_reverse_topk_rta(&fig_tree(), &fig_customers(), &[4.0, 4.0], 0);
        assert!(res.is_empty());
    }

    #[test]
    fn rta_prunes_with_many_similar_weights() {
        // A dense fan of weights on a dataset where q is far from the top:
        // most weights should be rejected by the buffer alone.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        for _ in 0..500 {
            for _ in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                pts.push((state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        let tree = RTree::bulk_load(2, &pts);
        let weights: Vec<Weight> = (1..100)
            .map(|i| Weight::from_first_2d(i as f64 / 100.0))
            .collect();
        let q = [0.9, 0.9]; // dominated by many points: never in top-k
        let (res, stats) = bichromatic_reverse_topk_rta_with_stats(&tree, &weights, &q, 5);
        assert!(res.is_empty());
        assert!(
            stats.buffer_prunes > stats.tree_verifications,
            "expected buffer to do most of the work: {stats:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn rta_equals_naive(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 5..120),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..8,
            nw in 1usize..12,
        ) {
            let points: Vec<Point> = pts.iter().map(|(a, b)| Point::from([*a, *b])).collect();
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let tree = RTree::bulk_load_with_fanout(2, &flat, 8);
            let weights: Vec<Weight> = (0..nw)
                .map(|i| Weight::from_first_2d((i as f64 + 0.5) / nw as f64))
                .collect();
            let qv = [q.0, q.1];
            let naive = bichromatic_reverse_topk_naive(&points, &weights, &qv, k);
            let rta = bichromatic_reverse_topk_rta(&tree, &weights, &qv, k);
            prop_assert_eq!(naive, rta);
        }
    }
}
