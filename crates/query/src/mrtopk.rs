//! Monochromatic reverse top-k queries in two dimensions (Definition 2).
//!
//! In 2-D every weighting vector is `w = (x, 1 − x)` for some `x ∈ [0, 1]`,
//! so `MRTOPk(q)` is a union of intervals of `x`. Each point `p` beats `q`
//! exactly where the linear function
//! `g_p(x) = f(w, p) − f(w, q) = (p₁ − q₁) + x·((p₀ − q₀) − (p₁ − q₁))`
//! is negative; a single left-to-right sweep over the roots of all `g_p`
//! maintains the count of beating points and reports the maximal regions
//! where fewer than `k` points beat `q`. This reproduces the paper's
//! Figure 2: `MRTOP3(q)` is the segment from `B(1/6, 5/6)` to
//! `C(3/4, 1/4)`.
//!
//! Ties are handled with the paper's `≤` semantics: at the exact root of a
//! `g_p`, `p` ties with `q` and does *not* push it out, so qualifying
//! intervals are closed (and isolated qualifying weights — where the count
//! dips only at a tie point — are reported as degenerate intervals).

/// A closed interval `[lo, hi]` of the first weight component `x`,
/// with `w = (x, 1 − x)`. Degenerate (`lo == hi`) intervals are single
/// qualifying weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightInterval {
    /// Smallest qualifying `x`.
    pub lo: f64,
    /// Largest qualifying `x`.
    pub hi: f64,
}

impl WeightInterval {
    /// Whether `x` lies in the closed interval (with tolerance `1e-12`).
    pub fn contains(&self, x: f64) -> bool {
        self.lo - 1e-12 <= x && x <= self.hi + 1e-12
    }

    /// The weighting vector at the interval's midpoint.
    pub fn midpoint_weight(&self) -> [f64; 2] {
        let x = 0.5 * (self.lo + self.hi);
        [x, 1.0 - x]
    }
}

/// Computes the exact `MRTOPk(q)` weight intervals over a flat 2-D point
/// buffer. Returns maximal disjoint closed intervals in ascending order.
///
/// # Panics
/// Panics if the buffer length is odd or `q` is not two-dimensional.
pub fn monochromatic_reverse_topk_2d(points: &[f64], q: &[f64], k: usize) -> Vec<WeightInterval> {
    assert_eq!(points.len() % 2, 0, "coordinate buffer length mismatch");
    assert_eq!(q.len(), 2, "q must be two-dimensional");
    if k == 0 {
        return Vec::new();
    }
    let n = points.len() / 2;

    // Count of points beating q just right of x = 0, plus crossing events.
    #[derive(Clone, Copy)]
    struct Event {
        x: f64,
        // +1: p starts beating q after x; −1: p stops beating q after x.
        delta: i64,
    }
    let mut base = 0i64; // beats on (0, first event)
    let mut base_at0 = 0i64; // beats exactly at x = 0
    let mut events: Vec<Event> = Vec::new();

    for i in 0..n {
        let a = points[i * 2] - q[0]; // g(1)
        let b = points[i * 2 + 1] - q[1]; // g(0)
        let slope = a - b;
        if b < 0.0 {
            base_at0 += 1;
        }
        if slope == 0.0 {
            // Constant g: beats everywhere or nowhere.
            if b < 0.0 {
                base += 1;
            }
            continue;
        }
        let root = -b / slope;
        // Sign just right of 0: b, or slope when b == 0.
        let beats_initially = b < 0.0 || (b == 0.0 && slope < 0.0);
        if beats_initially {
            base += 1;
        }
        if root > 0.0 && root < 1.0 {
            events.push(Event {
                x: root,
                delta: if beats_initially { -1 } else { 1 },
            });
        }
    }
    events.sort_by(|p, r| p.x.total_cmp(&r.x));

    let kk = k as i64;
    let mut regions: Vec<(f64, f64)> = Vec::new(); // qualifying closed runs
    let push = |lo: f64, hi: f64, regions: &mut Vec<(f64, f64)>| {
        if let Some(last) = regions.last_mut() {
            if lo <= last.1 + 1e-12 {
                last.1 = last.1.max(hi);
                return;
            }
        }
        regions.push((lo, hi));
    };

    // Point x = 0.
    if base_at0 < kk {
        push(0.0, 0.0, &mut regions);
    }
    let mut count = base;
    let mut prev_x = 0.0f64;
    let mut i = 0usize;
    while i <= events.len() {
        let seg_end = if i < events.len() { events[i].x } else { 1.0 };
        // Open interval (prev_x, seg_end).
        if count < kk && seg_end > prev_x {
            push(prev_x, seg_end, &mut regions);
        }
        if i == events.len() {
            break;
        }
        // Gather all events at this x.
        let x = events[i].x;
        let mut down = 0i64; // p's that stop beating (they tie AT x)
        let mut up = 0i64; // p's that start beating (they tie AT x too)
        while i < events.len() && events[i].x == x {
            if events[i].delta < 0 {
                down += 1;
            } else {
                up += 1;
            }
            i += 1;
        }
        // Exactly at x every crossing point ties with q → doesn't beat.
        let count_at = count - down;
        if count_at < kk {
            push(x, x, &mut regions);
        }
        count = count - down + up;
        prev_x = x;
    }
    // Point x = 1: count just left of 1 excludes points tying at 1.
    let beats_at1 = (0..n)
        .filter(|&i| {
            let g1 = points[i * 2] - q[0];
            g1 < 0.0
        })
        .count() as i64;
    if beats_at1 < kk {
        push(1.0, 1.0, &mut regions);
    }

    regions
        .into_iter()
        .map(|(lo, hi)| WeightInterval { lo, hi })
        .collect()
}

/// Whether the weighting vector `(x, 1 − x)` is in `MRTOPk(q)` given the
/// intervals from [`monochromatic_reverse_topk_2d`].
pub fn weight_in_result(intervals: &[WeightInterval], x: f64) -> bool {
    intervals.iter().any(|iv| iv.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig_points() -> Vec<f64> {
        vec![
            2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
        ]
    }

    #[test]
    fn figure_2_segment_bc() {
        // MRTOP3(q) for q=(4,4) is exactly [1/6, 3/4].
        let iv = monochromatic_reverse_topk_2d(&fig_points(), &[4.0, 4.0], 3);
        assert_eq!(iv.len(), 1, "{iv:?}");
        assert!((iv[0].lo - 1.0 / 6.0).abs() < 1e-9, "{iv:?}");
        assert!((iv[0].hi - 3.0 / 4.0).abs() < 1e-9, "{iv:?}");
        // The paper's example vectors w2=(1/6,5/6) and w3=(3/4,1/4) are in,
        // A=(1/10,9/10) and D=(4/5,1/5) are out.
        assert!(weight_in_result(&iv, 1.0 / 6.0));
        assert!(weight_in_result(&iv, 3.0 / 4.0));
        assert!(!weight_in_result(&iv, 0.1));
        assert!(!weight_in_result(&iv, 0.8));
    }

    #[test]
    fn k_one_top_choice_region() {
        // For k=1 with q=(4,4), p1=(2,1) beats q for every weight
        // (it dominates q), so MRTOP1(q) is empty.
        let iv = monochromatic_reverse_topk_2d(&fig_points(), &[4.0, 4.0], 1);
        assert!(iv.is_empty(), "{iv:?}");
    }

    #[test]
    fn k_zero_is_empty_and_large_k_is_everything() {
        assert!(monochromatic_reverse_topk_2d(&fig_points(), &[4.0, 4.0], 0).is_empty());
        let iv = monochromatic_reverse_topk_2d(&fig_points(), &[4.0, 4.0], 8);
        assert_eq!(iv.len(), 1);
        assert_eq!((iv[0].lo, iv[0].hi), (0.0, 1.0));
    }

    #[test]
    fn dominating_query_point_qualifies_everywhere() {
        let iv = monochromatic_reverse_topk_2d(&fig_points(), &[0.5, 0.5], 1);
        assert_eq!(iv.len(), 1);
        assert_eq!((iv[0].lo, iv[0].hi), (0.0, 1.0));
    }

    #[test]
    fn tie_only_weight_is_degenerate_interval() {
        // Two symmetric points both beat q except exactly at x = 0.5 where
        // both tie: the result for k=1 is the single weight (0.5, 0.5).
        let pts = vec![1.0, 3.0, 3.0, 1.0];
        let q = [2.0, 2.0];
        let iv = monochromatic_reverse_topk_2d(&pts, &q, 1);
        assert_eq!(iv.len(), 1, "{iv:?}");
        assert!((iv[0].lo - 0.5).abs() < 1e-12);
        assert!((iv[0].hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_everything_qualifies() {
        let iv = monochromatic_reverse_topk_2d(&[], &[1.0, 1.0], 1);
        assert_eq!(iv.len(), 1);
        assert_eq!((iv[0].lo, iv[0].hi), (0.0, 1.0));
    }

    #[test]
    fn midpoint_weight_is_on_simplex() {
        let iv = WeightInterval { lo: 0.2, hi: 0.6 };
        let w = iv.midpoint_weight();
        assert!((w[0] - 0.4).abs() < 1e-12);
        assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
    }

    /// Brute-force oracle: rank of q at a specific x.
    fn rank_at(points: &[f64], q: &[f64], x: f64) -> usize {
        let w = [x, 1.0 - x];
        let sq = w[0] * q[0] + w[1] * q[1];
        let n = points.len() / 2;
        (0..n)
            .filter(|&i| w[0] * points[i * 2] + w[1] * points[i * 2 + 1] < sq)
            .count()
            + 1
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn sweep_matches_brute_force_sampling(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..80),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..6,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let qv = [q.0, q.1];
            let iv = monochromatic_reverse_topk_2d(&flat, &qv, k);
            // Dense sampling (avoids exact event points w.h.p.).
            for s in 0..200 {
                let x = (s as f64 + 0.5) / 200.0;
                let qualifies = rank_at(&flat, &qv, x) <= k;
                prop_assert_eq!(
                    weight_in_result(&iv, x),
                    qualifies,
                    "x = {} intervals = {:?}",
                    x,
                    iv
                );
            }
        }

        #[test]
        fn intervals_are_sorted_and_disjoint(
            pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..80),
            q in (0.0f64..10.0, 0.0f64..10.0),
            k in 1usize..6,
        ) {
            let flat: Vec<f64> = pts.iter().flat_map(|(a, b)| [*a, *b]).collect();
            let iv = monochromatic_reverse_topk_2d(&flat, &[q.0, q.1], k);
            for w in iv.windows(2) {
                prop_assert!(w[0].hi < w[1].lo);
            }
            for i in &iv {
                prop_assert!(i.lo <= i.hi);
                prop_assert!((0.0..=1.0).contains(&i.lo));
                prop_assert!((0.0..=1.0).contains(&i.hi));
            }
        }
    }
}
