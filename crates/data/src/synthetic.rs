//! Synthetic dataset generators (paper §5.1).
//!
//! * **Independent** — every attribute uniform in `[0, 1]`, independently;
//! * **Anti-correlated** — points concentrated around the hyperplane
//!   `Σ x[i] ≈ d/2`: a point good in one dimension is bad in the others
//!   (the hard case for dominance-based pruning, as in the paper's
//!   figures);
//! * **Correlated** — a shared latent quality drives all attributes;
//! * **Clustered** — Gaussian blobs around random centres.
//!
//! All values lie in `[0, 1]` and smaller is better, matching the paper's
//! scoring convention.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: flat row-major coordinates plus its shape.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Row-major `n × dim` coordinate buffer.
    pub coords: Vec<f64>,
    /// Dimensionality.
    pub dim: usize,
}

impl Dataset {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }
}

/// Standard-normal sample via Box–Muller (rand 0.8 ships no normal
/// distribution without the `rand_distr` crate).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform independent attributes.
pub fn independent(n: usize, dim: usize, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let coords = (0..n * dim).map(|_| rng.gen::<f64>()).collect();
    Dataset { coords, dim }
}

/// Anti-correlated attributes: each point is a random composition of a
/// total budget `c ≈ d/2`, so excelling in one dimension costs the others.
pub fn anticorrelated(n: usize, dim: usize, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n * dim);
    let mut point = vec![0.0f64; dim];
    for _ in 0..n {
        'point: loop {
            let c = 0.5 * dim as f64 + 0.15 * dim as f64 * normal(&mut rng);
            if c <= 0.0 || c >= dim as f64 {
                continue;
            }
            // Retry the composition with the budget held fixed: redrawing
            // `c` on rejection would skew accepted budgets low (large
            // budgets are harder to fit inside the unit box), distorting
            // the Σx ≈ d/2 concentration the generator promises.
            for _ in 0..64 {
                // Random composition via exponential spacings.
                let mut total = 0.0;
                for x in point.iter_mut() {
                    let e = -rng.gen_range(f64::EPSILON..1.0f64).ln();
                    *x = e;
                    total += e;
                }
                let scale = c / total;
                if point.iter().all(|x| x * scale <= 1.0) {
                    for x in point.iter_mut() {
                        *x *= scale;
                    }
                    break 'point;
                }
            }
        }
        coords.extend_from_slice(&point);
    }
    Dataset { coords, dim }
}

/// Correlated attributes: a latent per-point quality `u` plus small
/// independent noise, clamped to `[0, 1]`.
pub fn correlated(n: usize, dim: usize, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let u: f64 = rng.gen();
        for _ in 0..dim {
            let v = u + 0.12 * normal(&mut rng);
            coords.push(v.clamp(0.0, 1.0));
        }
    }
    Dataset { coords, dim }
}

/// Clustered attributes: `clusters` Gaussian blobs with σ = 0.05.
///
/// # Panics
/// Panics if `clusters == 0`.
pub fn clustered(n: usize, dim: usize, clusters: usize, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be positive");
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.1..0.9)).collect())
        .collect();
    let mut coords = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..clusters)];
        for cj in c {
            coords.push((cj + 0.05 * normal(&mut rng)).clamp(0.0, 1.0));
        }
    }
    Dataset { coords, dim }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_pairwise_correlation(ds: &Dataset) -> f64 {
        // Average Pearson correlation over dimension pairs.
        let n = ds.len();
        let d = ds.dim;
        let mut means = vec![0.0; d];
        for i in 0..n {
            for (m, x) in means.iter_mut().zip(ds.point(i)) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut acc = 0.0;
        let mut pairs = 0;
        for a in 0..d {
            for b in (a + 1)..d {
                let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
                for i in 0..n {
                    let xa = ds.point(i)[a] - means[a];
                    let xb = ds.point(i)[b] - means[b];
                    cov += xa * xb;
                    va += xa * xa;
                    vb += xb * xb;
                }
                acc += cov / (va.sqrt() * vb.sqrt());
                pairs += 1;
            }
        }
        acc / pairs as f64
    }

    #[test]
    fn shapes_and_ranges() {
        for ds in [
            independent(500, 3, 1),
            anticorrelated(500, 3, 2),
            correlated(500, 3, 3),
            clustered(500, 3, 4, 4),
        ] {
            assert_eq!(ds.len(), 500);
            assert_eq!(ds.dim, 3);
            assert!(!ds.is_empty());
            assert!(ds.coords.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = independent(100, 4, 9);
        let b = independent(100, 4, 9);
        let c = independent(100, 4, 10);
        assert_eq!(a.coords, b.coords);
        assert_ne!(a.coords, c.coords);
    }

    #[test]
    fn anticorrelated_has_negative_correlation() {
        let ds = anticorrelated(3000, 2, 7);
        let r = mean_pairwise_correlation(&ds);
        assert!(r < -0.3, "expected strong anti-correlation, got {r}");
    }

    #[test]
    fn correlated_has_positive_correlation() {
        let ds = correlated(3000, 3, 8);
        let r = mean_pairwise_correlation(&ds);
        assert!(r > 0.5, "expected strong correlation, got {r}");
    }

    #[test]
    fn independent_has_near_zero_correlation() {
        let ds = independent(3000, 3, 11);
        let r = mean_pairwise_correlation(&ds);
        assert!(r.abs() < 0.1, "expected ~0 correlation, got {r}");
    }

    #[test]
    fn anticorrelated_budget_is_concentrated() {
        let ds = anticorrelated(2000, 4, 12);
        let mut sums: Vec<f64> = (0..ds.len())
            .map(|i| ds.point(i).iter().sum::<f64>())
            .collect();
        sums.sort_by(f64::total_cmp);
        let median = sums[sums.len() / 2];
        assert!((median - 2.0).abs() < 0.35, "median budget {median}");
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = independent(0, 3, 1);
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
    }
}
