#![warn(missing_docs)]

//! Datasets and workloads for the WQRTQ experiments.
//!
//! * [`figure1`] — the paper's running example (seven computers, four
//!   customers), used by tests, examples and documentation;
//! * [`synthetic`] — the Independent / Anti-correlated generators of the
//!   experimental study (§5.1), plus correlated and clustered variants;
//! * [`realistic`] — surrogate generators matching the cardinality,
//!   dimensionality and correlation structure of the paper's NBA (17K ×
//!   13) and Household (127K × 6) real datasets, which are not publicly
//!   redistributable (see DESIGN.md, substitution table);
//! * [`workload`] — builds why-not cases with a controlled *actual rank of
//!   q under Wm*, the workload knob of Figure 10.
//!
//! All generators are deterministic given a seed.

pub mod figure1;
pub mod realistic;
pub mod synthetic;
pub mod workload;

pub use figure1::Figure1;
pub use realistic::{household_like, nba_like};
pub use synthetic::{anticorrelated, clustered, correlated, independent, Dataset};
pub use workload::{WhyNotCase, WorkloadSpec};
