//! Surrogates for the paper's real datasets.
//!
//! The paper evaluates on two real datasets that we cannot redistribute:
//!
//! * **NBA** — 17K player-season tuples with 13 statistical categories;
//! * **Household** — 127K tuples of six expenditure shares of American
//!   families' annual income.
//!
//! The WQRTQ algorithms touch data only through linear scores, dominance
//! tests and MBR bounds, so the properties that drive performance are
//! cardinality, dimensionality, value range and the correlation structure
//! — which these generators match (see DESIGN.md, substitution table):
//! NBA statistics are positively correlated through latent player quality
//! with per-category skew; Household shares are clustered compositions
//! that sum to one.

use crate::synthetic::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cardinality of the NBA surrogate (the paper reports "17K").
pub const NBA_N: usize = 17_264;
/// Dimensionality of the NBA surrogate.
pub const NBA_DIM: usize = 13;
/// Cardinality of the Household surrogate (the paper reports "127K").
pub const HOUSEHOLD_N: usize = 127_000;
/// Dimensionality of the Household surrogate.
pub const HOUSEHOLD_DIM: usize = 6;

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// NBA-like data: 17,264 × 13, minimisation convention (0 = best possible
/// season for that category). A latent player-quality factor induces
/// positive cross-category correlation; per-category exponents skew the
/// marginals the way counting stats are skewed (many average seasons, few
/// stellar ones).
pub fn nba_like(seed: u64) -> Dataset {
    nba_like_scaled(NBA_N, seed)
}

/// [`nba_like`] with an explicit cardinality (for quick test profiles).
pub fn nba_like_scaled(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-category skew exponents and noise levels (points, rebounds,
    // assists, steals, blocks, …): higher exponent = more right-skew.
    let skew: [f64; NBA_DIM] = [
        2.2, 2.0, 2.4, 2.8, 3.0, 1.8, 2.0, 2.6, 2.2, 1.6, 2.4, 2.0, 1.9,
    ];
    let mut coords = Vec::with_capacity(n * NBA_DIM);
    for _ in 0..n {
        // Latent quality: most players mediocre, a thin elite tail.
        let quality: f64 = rng.gen::<f64>().powf(0.6);
        for s in skew {
            // Category performance in [0, 1], 1 = best.
            let cat = (quality * rng.gen::<f64>().powf(1.0 / s) + 0.08 * normal(&mut rng))
                .clamp(0.0, 1.0);
            // Minimisation convention: smaller = better.
            coords.push(1.0 - cat);
        }
    }
    Dataset {
        coords,
        dim: NBA_DIM,
    }
}

/// Household-like data: 127,000 × 6 expenditure shares that are
/// non-negative and sum to one, drawn from a handful of household-profile
/// clusters (renters, homeowners, commuters, …).
pub fn household_like(seed: u64) -> Dataset {
    household_like_scaled(HOUSEHOLD_N, seed)
}

/// [`household_like`] with an explicit cardinality.
pub fn household_like_scaled(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Six expenditure categories: gas, electricity, water, heating fuel,
    // rent/mortgage share, other utilities. Profiles are Dirichlet-like
    // concentration vectors.
    let profiles: [[f64; HOUSEHOLD_DIM]; 5] = [
        [4.0, 6.0, 2.0, 3.0, 14.0, 3.0],
        [7.0, 5.0, 2.5, 6.0, 8.0, 3.5],
        [3.0, 7.0, 3.0, 2.0, 18.0, 4.0],
        [9.0, 4.0, 2.0, 7.0, 6.0, 4.0],
        [5.0, 5.0, 2.5, 4.0, 11.0, 4.5],
    ];
    let mut coords = Vec::with_capacity(n * HOUSEHOLD_DIM);
    for _ in 0..n {
        let profile = &profiles[rng.gen_range(0..profiles.len())];
        // Gamma(α, 1) samples via Marsaglia–Tsang need α ≥ 1 here (all
        // concentrations above are ≥ 2), normalised to a composition.
        let mut shares = [0.0f64; HOUSEHOLD_DIM];
        let mut total = 0.0;
        for (x, &alpha) in shares.iter_mut().zip(profile) {
            *x = gamma_sample(&mut rng, alpha);
            total += *x;
        }
        for x in shares {
            coords.push(x / total);
        }
    }
    Dataset {
        coords,
        dim: HOUSEHOLD_DIM,
    }
}

/// Marsaglia–Tsang Gamma(α, 1) sampler for α ≥ 1.
fn gamma_sample(rng: &mut StdRng, alpha: f64) -> f64 {
    debug_assert!(alpha >= 1.0);
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nba_shape_and_range() {
        let ds = nba_like_scaled(2000, 5);
        assert_eq!(ds.dim, NBA_DIM);
        assert_eq!(ds.len(), 2000);
        assert!(ds.coords.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn nba_full_cardinality_constant() {
        assert_eq!(NBA_N, 17_264);
        assert_eq!(HOUSEHOLD_N, 127_000);
    }

    #[test]
    fn nba_categories_are_positively_correlated() {
        // Latent quality should induce positive correlation between any
        // two categories (as real per-player stats are).
        let ds = nba_like_scaled(4000, 6);
        let n = ds.len();
        let (a, b) = (0usize, 7usize);
        let ma: f64 = (0..n).map(|i| ds.point(i)[a]).sum::<f64>() / n as f64;
        let mb: f64 = (0..n).map(|i| ds.point(i)[b]).sum::<f64>() / n as f64;
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for i in 0..n {
            let xa = ds.point(i)[a] - ma;
            let xb = ds.point(i)[b] - mb;
            cov += xa * xb;
            va += xa * xa;
            vb += xb * xb;
        }
        let r = cov / (va.sqrt() * vb.sqrt());
        assert!(r > 0.3, "correlation {r}");
    }

    #[test]
    fn household_rows_are_compositions() {
        let ds = household_like_scaled(1000, 7);
        assert_eq!(ds.dim, HOUSEHOLD_DIM);
        for i in 0..ds.len() {
            let s: f64 = ds.point(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(ds.point(i).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            nba_like_scaled(100, 3).coords,
            nba_like_scaled(100, 3).coords
        );
        assert_eq!(
            household_like_scaled(100, 3).coords,
            household_like_scaled(100, 3).coords
        );
        assert_ne!(
            household_like_scaled(100, 3).coords,
            household_like_scaled(100, 4).coords
        );
    }

    #[test]
    fn gamma_sampler_mean_is_alpha() {
        let mut rng = StdRng::seed_from_u64(11);
        let alpha = 5.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, alpha)).sum::<f64>() / n as f64;
        assert!((mean - alpha).abs() < 0.15, "mean {mean}");
    }
}
