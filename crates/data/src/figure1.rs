//! The paper's Figure 1 running example.
//!
//! Seven competitor computers `p1…p7` (price, heat production), the query
//! computer `q = (4, 4)` (Apple), and four customers' weighting vectors.
//! Smaller values are better in both dimensions. The reverse top-3 query
//! of `q` returns Tony and Anna; Kevin and Julia are the natural why-not
//! weighting vectors of the paper's §1 narrative.

use wqrtq_geom::{Point, Weight};

/// The bundled example data of the paper's Figure 1.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Competitor computers `p1…p7` (price, heat).
    pub products: Vec<Point>,
    /// Competitor brand names aligned with `products`.
    pub product_names: Vec<&'static str>,
    /// Customer weighting vectors (price weight, heat weight).
    pub customers: Vec<Weight>,
    /// Customer names aligned with `customers`.
    pub customer_names: Vec<&'static str>,
    /// The query computer `q = (4, 4)` — Apple's new model.
    pub apple: Point,
}

/// Index of Kevin in [`Figure1::customers`].
pub const KEVIN: usize = 0;
/// Index of Tony in [`Figure1::customers`].
pub const TONY: usize = 1;
/// Index of Anna in [`Figure1::customers`].
pub const ANNA: usize = 2;
/// Index of Julia in [`Figure1::customers`].
pub const JULIA: usize = 3;

/// Builds the example dataset.
pub fn dataset() -> Figure1 {
    Figure1 {
        products: vec![
            Point::from([2.0, 1.0]), // p1
            Point::from([6.0, 3.0]), // p2
            Point::from([1.0, 9.0]), // p3
            Point::from([9.0, 3.0]), // p4
            Point::from([7.0, 5.0]), // p5
            Point::from([5.0, 8.0]), // p6
            Point::from([3.0, 7.0]), // p7
        ],
        product_names: vec!["Dell", "Sony", "HP", "Acer", "IBM", "ASUS", "NEC"],
        customers: vec![
            Weight::new(vec![0.1, 0.9]), // Kevin
            Weight::new(vec![0.5, 0.5]), // Tony
            Weight::new(vec![0.3, 0.7]), // Anna
            Weight::new(vec![0.9, 0.1]), // Julia
        ],
        customer_names: vec!["Kevin", "Tony", "Anna", "Julia"],
        apple: Point::from([4.0, 4.0]),
    }
}

impl Figure1 {
    /// The products as a flat row-major coordinate buffer (for R-tree
    /// construction).
    pub fn flat_products(&self) -> Vec<f64> {
        self.products
            .iter()
            .flat_map(|p| p.coords().to_vec())
            .collect()
    }

    /// The paper's why-not weighting vectors: Kevin and Julia.
    pub fn why_not_customers(&self) -> Vec<Weight> {
        vec![self.customers[KEVIN].clone(), self.customers[JULIA].clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_alignment() {
        let f = dataset();
        assert_eq!(f.products.len(), 7);
        assert_eq!(f.product_names.len(), 7);
        assert_eq!(f.customers.len(), 4);
        assert_eq!(f.customer_names.len(), 4);
        assert_eq!(f.apple.coords(), &[4.0, 4.0]);
        assert_eq!(f.customer_names[KEVIN], "Kevin");
        assert_eq!(f.customer_names[JULIA], "Julia");
    }

    #[test]
    fn figure_1c_scores_reproduced() {
        // Spot-check the printed score table of Figure 1(c).
        let f = dataset();
        let kevin = &f.customers[KEVIN];
        let expected = [1.1, 3.3, 8.2, 3.6, 5.2, 7.7, 6.6];
        for (p, e) in f.products.iter().zip(expected) {
            assert!((kevin.score(p) - e).abs() < 1e-12);
        }
        let julia = &f.customers[JULIA];
        let expected = [1.9, 5.7, 1.8, 8.4, 6.8, 5.3, 3.4];
        for (p, e) in f.products.iter().zip(expected) {
            assert!((julia.score(p) - e).abs() < 1e-12);
        }
        // q scores 4.0 for every customer.
        for c in &f.customers {
            assert!((c.score(&f.apple) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_products_round_trip() {
        let f = dataset();
        let flat = f.flat_products();
        assert_eq!(flat.len(), 14);
        assert_eq!(&flat[0..2], &[2.0, 1.0]);
        assert_eq!(&flat[12..14], &[3.0, 7.0]);
    }

    #[test]
    fn why_not_customers_are_kevin_and_julia() {
        let f = dataset();
        let wn = f.why_not_customers();
        assert_eq!(wn[0].as_slice(), &[0.1, 0.9]);
        assert_eq!(wn[1].as_slice(), &[0.9, 0.1]);
    }
}
