//! Why-not workload construction.
//!
//! The experiments of §5 control the *actual ranking of q under Wm*
//! (Table 1: 11 / 101 / 501 / 1001). This module builds such cases
//! deterministically, matching the paper's narrative: the query product
//! is *competitive* — it ranks near the top under some preference — but
//! the why-not customers rank it around the target (so refinement is
//! meaningful rather than hopeless):
//!
//! 1. pick a pivot preference `w_good` and take its top-5th point as the
//!    query `q` (scaled by `1 + 1e-6` so `q ∉ P`);
//! 2. for each why-not vector, walk the weight simplex away from
//!    `w_good` by bisection until the rank of `q` lands in the target
//!    window — these are preferences that genuinely exclude `q`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wqrtq_geom::Weight;
use wqrtq_query::rank::rank_of_point;
use wqrtq_rtree::RTree;

/// Parameters of a why-not case to generate.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// The reverse top-k parameter of the original query.
    pub k: usize,
    /// Number of why-not weighting vectors `|Wm|`.
    pub num_why_not: usize,
    /// Target actual rank of `q` under each why-not vector (must exceed
    /// `k`, otherwise the vectors would not be why-not).
    pub target_rank: usize,
    /// Acceptable relative deviation of achieved ranks from the target
    /// (e.g. `0.5` accepts ranks in `[target/2, 3·target/2]`).
    pub rank_tolerance: f64,
}

impl WorkloadSpec {
    /// The paper's default setting: k = 10, |Wm| = 1, rank = 101.
    pub fn paper_default() -> Self {
        Self {
            k: 10,
            num_why_not: 1,
            target_rank: 101,
            rank_tolerance: 0.5,
        }
    }
}

/// A generated why-not case.
#[derive(Clone, Debug)]
pub struct WhyNotCase {
    /// The query point (not a member of the indexed dataset).
    pub q: Vec<f64>,
    /// The why-not weighting vectors, none of which admit `q` at rank ≤ k.
    pub why_not: Vec<Weight>,
    /// The achieved actual rank of `q` under each why-not vector.
    pub actual_ranks: Vec<usize>,
    /// The original query's `k`.
    pub k: usize,
}

/// Uniform sample from the standard simplex via exponential spacings.
fn sample_simplex(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    let mut w: Vec<f64> = (0..dim)
        .map(|_| -rng.gen_range(f64::EPSILON..1.0f64).ln())
        .collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Convex interpolation on the simplex (renormalised for safety).
fn lerp_simplex(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    let mut w: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| ((1.0 - t) * x + t * y).max(1e-6))
        .collect();
    let s: f64 = w.iter().sum();
    for x in &mut w {
        *x /= s;
    }
    w
}

/// Builds a why-not case on an indexed dataset.
///
/// # Panics
/// Panics if the spec is inconsistent (`target_rank ≤ k`,
/// `num_why_not == 0`), the dataset is smaller than the target rank, or
/// (pathologically) no pivot yields ranks in the window after many
/// attempts.
pub fn build_case(tree: &RTree, spec: &WorkloadSpec, seed: u64) -> WhyNotCase {
    assert!(spec.target_rank > spec.k, "target rank must exceed k");
    assert!(spec.num_why_not > 0, "need at least one why-not vector");
    assert!(
        tree.len() > spec.target_rank,
        "dataset smaller than target rank"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = tree.dim();

    let lo = ((spec.target_rank as f64) * (1.0 - spec.rank_tolerance)).ceil() as usize;
    let lo = lo.max(spec.k + 1);
    let hi = ((spec.target_rank as f64) * (1.0 + spec.rank_tolerance)).ceil() as usize;

    for pivot_attempt in 0..32 {
        // A competitive query point: the top-5th product of a random
        // pivot preference (rank ≤ 5 under it), nudged off the dataset.
        // On strongly correlated data a top-5 point can be near the top
        // under *every* weight, making the target rank unreachable — the
        // landmark is progressively deepened in that case.
        let landmark_rank = match pivot_attempt {
            0..=7 => 5,
            8..=15 => (spec.target_rank / 4).max(6),
            16..=23 => (spec.target_rank / 2).max(10),
            _ => (3 * spec.target_rank / 4).max(20),
        }
        .min(tree.len());
        let w_good = sample_simplex(&mut rng, dim);
        let mut bf = tree.best_first(&w_good);
        let mut landmark = None;
        for _ in 0..landmark_rank {
            landmark = bf.next_entry();
        }
        let Some(landmark) = landmark else { continue };
        let q: Vec<f64> = landmark.coords.iter().map(|c| c * (1.0 + 1e-6)).collect();

        let mut why_not: Vec<Weight> = Vec::new();
        let mut ranks: Vec<usize> = Vec::new();
        let mut tries = 0;
        while why_not.len() < spec.num_why_not && tries < 600 {
            tries += 1;
            let w_far = sample_simplex(&mut rng, dim);
            let far_rank = rank_of_point(tree, &w_far, &q);
            if far_rank < lo {
                continue; // cannot bracket the window along this ray
            }
            if (lo..=hi).contains(&far_rank) {
                why_not.push(Weight::new(w_far));
                ranks.push(far_rank);
                continue;
            }
            // Bisect t ∈ [0, 1]: rank(w(0)) ≤ 5 < lo ≤ … ≤ rank(w(1)).
            let (mut t_lo, mut t_hi) = (0.0f64, 1.0f64);
            let mut found = None;
            for _ in 0..40 {
                let t = 0.5 * (t_lo + t_hi);
                let w = lerp_simplex(&w_good, &w_far, t);
                let r = rank_of_point(tree, &w, &q);
                if (lo..=hi).contains(&r) {
                    found = Some((w, r));
                    break;
                }
                if r < lo {
                    t_lo = t;
                } else {
                    t_hi = t;
                }
            }
            if let Some((w, r)) = found {
                why_not.push(Weight::new(w));
                ranks.push(r);
            }
        }
        if why_not.len() == spec.num_why_not {
            return WhyNotCase {
                q,
                why_not,
                actual_ranks: ranks,
                k: spec.k,
            };
        }
    }
    panic!("failed to generate a why-not case in the rank window after 32 pivots");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{anticorrelated, independent};

    fn tree_20k() -> RTree {
        let ds = independent(20_000, 3, 77);
        RTree::bulk_load(3, &ds.coords)
    }

    #[test]
    fn case_ranks_are_in_window_and_exceed_k() {
        let tree = tree_20k();
        let spec = WorkloadSpec {
            k: 10,
            num_why_not: 3,
            target_rank: 101,
            rank_tolerance: 0.5,
        };
        let case = build_case(&tree, &spec, 1);
        assert_eq!(case.why_not.len(), 3);
        assert_eq!(case.k, 10);
        for (w, &r) in case.why_not.iter().zip(&case.actual_ranks) {
            let actual = rank_of_point(&tree, w, &case.q);
            assert_eq!(actual, r);
            assert!(r > spec.k, "rank {r} must exceed k");
            assert!((51..=152).contains(&r), "rank {r} outside window");
        }
    }

    #[test]
    fn query_point_is_competitive_under_some_weight() {
        // The construction guarantees a preference exists that ranks q
        // in the top handful — the paper's "good product" narrative.
        let tree = tree_20k();
        let case = build_case(&tree, &WorkloadSpec::paper_default(), 3);
        // Probe a grid of weights for the best rank of q.
        let mut best = usize::MAX;
        for i in 1..10 {
            for j in 1..(10 - i) {
                let w = [i as f64 / 10.0, j as f64 / 10.0, (10 - i - j) as f64 / 10.0];
                best = best.min(rank_of_point(&tree, &w, &case.q));
            }
        }
        assert!(best <= 60, "q should be competitive somewhere, best {best}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let tree = tree_20k();
        let spec = WorkloadSpec::paper_default();
        let a = build_case(&tree, &spec, 42);
        let b = build_case(&tree, &spec, 42);
        assert_eq!(a.q, b.q);
        assert_eq!(a.actual_ranks, b.actual_ranks);
    }

    #[test]
    fn high_rank_targets_work() {
        let tree = tree_20k();
        let spec = WorkloadSpec {
            k: 10,
            num_why_not: 1,
            target_rank: 1001,
            rank_tolerance: 0.5,
        };
        let case = build_case(&tree, &spec, 5);
        assert!(case.actual_ranks[0] > 500);
    }

    #[test]
    fn anticorrelated_datasets_supported() {
        let ds = anticorrelated(10_000, 3, 9);
        let tree = RTree::bulk_load(3, &ds.coords);
        let case = build_case(&tree, &WorkloadSpec::paper_default(), 7);
        assert_eq!(case.why_not.len(), 1);
        assert!(case.actual_ranks[0] > 10);
    }

    #[test]
    #[should_panic(expected = "target rank must exceed k")]
    fn rejects_rank_below_k() {
        let tree = tree_20k();
        let spec = WorkloadSpec {
            k: 50,
            num_why_not: 1,
            target_rank: 20,
            rank_tolerance: 0.5,
        };
        let _ = build_case(&tree, &spec, 1);
    }

    #[test]
    fn paper_default_spec() {
        let s = WorkloadSpec::paper_default();
        assert_eq!((s.k, s.num_why_not, s.target_rank), (10, 1, 101));
    }
}
