//! The [`Engine`]: catalog + worker pool + result cache + metrics under
//! one roof.
//!
//! ```
//! use wqrtq_engine::{Engine, Request, Response};
//!
//! let engine = Engine::builder().workers(4).build();
//! engine
//!     .register_dataset("products", 2, vec![2.0, 1.0, 6.0, 3.0, 1.0, 9.0])
//!     .unwrap();
//! let responses = engine.submit_batch(vec![Request::TopK {
//!     dataset: "products".into(),
//!     weight: vec![0.5, 0.5],
//!     k: 2,
//! }]);
//! assert!(matches!(responses[0], Response::TopK(_)));
//! ```

use crate::cache::ResultCache;
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::request::{Request, Response};
use crate::storage::{DiskBackend, Durability, FsyncPolicy};
use crate::worker::{Completion, Job, Pool, ServeManyTask, ServeUnit, TraceContext, WorkerContext};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::Instant;
use wqrtq_geom::Weight;
use wqrtq_obs::{SlowRequest, TraceSnapshot, Tracer};

/// Spans each worker's trace ring retains (oldest overwritten).
const TRACE_RING_CAPACITY: usize = 256;
/// Slowest requests the trace slow-log retains.
const SLOW_LOG_CAPACITY: usize = 8;

/// Configures an [`Engine`] before it spawns its workers.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    workers: usize,
    cache_capacity: usize,
    shard_limit: usize,
    overlay_limit: Option<usize>,
    tracing: bool,
    prefilter: bool,
    quantized: bool,
    data_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 256,
            shard_limit: std::thread::available_parallelism().map_or(1, |n| n.get()),
            overlay_limit: None,
            tracing: true,
            prefilter: true,
            quantized: true,
            data_dir: None,
            fsync: FsyncPolicy::Always,
        }
    }
}

impl EngineBuilder {
    /// Number of worker threads (default: available parallelism).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Result-cache capacity in entries (default 256).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        self.cache_capacity = capacity;
        self
    }

    /// Maximum shards a single bichromatic request fans into (default:
    /// the machine's available parallelism). Oversubscribing a CPU-bound
    /// scan beyond the physical cores only adds synchronisation
    /// overhead, so the default never does; raise it explicitly to force
    /// the parallel path (tests, oversubscription experiments).
    ///
    /// # Panics
    /// Panics if `limit` is zero.
    pub fn shard_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "shard limit must be positive");
        self.shard_limit = limit;
        self
    }

    /// Overlay rows (appended + tombstoned) a dataset may accumulate
    /// before the engine schedules a compaction on the worker pool. The
    /// default is adaptive — `max(1024, base_len / 4)`: large datasets
    /// merge once the overlay reaches a quarter of the base, while
    /// small ones tolerate proportionally bigger overlays (their `O(Δ)`
    /// correction sweeps are cheap and a merge would churn the index
    /// for little gain). Use `usize::MAX` to disable automatic
    /// compaction (mutation tests and deterministic id bookkeeping call
    /// [`Engine::compact`] manually).
    pub fn overlay_limit(mut self, limit: usize) -> Self {
        self.overlay_limit = Some(limit);
        self
    }

    /// Whether request tracing (stage spans, slow-request log) is
    /// active (default true). Stage *histograms* always record — only
    /// span collection is gated here. Disabling it is the overhead
    /// baseline the benches compare against.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Whether the k-dominance pre-filter is built and consulted
    /// (default true). Turning it off removes the exclusion mask from
    /// every serving path — the opt-out the differential oracles use to
    /// obtain the unmasked reference plane. Verdicts are bit-identical
    /// either way.
    pub fn prefilter(mut self, enabled: bool) -> Self {
        self.prefilter = enabled;
        self
    }

    /// Whether the flat stores carry the quantized `f32` block tier
    /// (default true). Off means every block scan runs exact `f64`
    /// arithmetic directly — the other half of the differential-oracle
    /// opt-out. Counts are bit-identical either way.
    pub fn quantized(mut self, enabled: bool) -> Self {
        self.quantized = enabled;
        self
    }

    /// Persist the catalog in `dir`: every mutation appends to a WAL
    /// there before it is acknowledged, compaction installs snapshots,
    /// and [`EngineBuilder::try_build`] recovers whatever state the
    /// directory holds. Without a data directory (the default) the
    /// engine is purely in-memory and pays zero durability cost.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// When WAL appends are forced to stable storage (default
    /// [`FsyncPolicy::Always`]: no acknowledged mutation is ever lost).
    /// Only meaningful together with [`EngineBuilder::data_dir`].
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Spawns the workers and returns the engine.
    ///
    /// # Panics
    /// Panics if a configured data directory cannot be opened or
    /// recovered — use [`EngineBuilder::try_build`] to handle that as a
    /// typed error instead.
    pub fn build(self) -> Engine {
        // lint: allow(no-panic) — the documented `# Panics` contract of
        // this convenience constructor; `try_build` is the typed path.
        self.try_build().expect("engine build")
    }

    /// Spawns the workers and returns the engine. With a data directory
    /// configured, first recovers: the latest snapshot is restored, the
    /// WAL's valid records beyond it are replayed in log order (a torn
    /// tail after a crash is truncated silently), and the WAL resumes
    /// appending exactly where the last valid record ended.
    ///
    /// # Errors
    /// [`EngineError::Durability`] when the data directory cannot be
    /// opened, its images are structurally corrupt, or the recovered
    /// state violates a catalog invariant.
    pub fn try_build(self) -> Result<Engine, EngineError> {
        let catalog = Arc::new(Catalog::with_config(self.prefilter, self.quantized));
        if let Some(dir) = &self.data_dir {
            let durability_err = |e: crate::storage::StorageError| EngineError::Durability {
                reason: e.to_string(),
            };
            let backend = DiskBackend::open(dir).map_err(|e| EngineError::Durability {
                reason: format!("cannot open data dir {}: {e}", dir.display()),
            })?;
            let recovered =
                Durability::open(Box::new(backend), self.fsync).map_err(durability_err)?;
            if let Some(state) = recovered.state {
                catalog.restore_state(state)?;
            }
            for rec in recovered.records {
                catalog.apply_replay(rec)?;
            }
            // Attach only now: the replay above must not log again.
            catalog.attach_durability(Arc::new(recovered.durability));
        }
        Ok(self.spawn(catalog))
    }

    fn spawn(self, catalog: Arc<Catalog>) -> Engine {
        let cache = Arc::new(ResultCache::new(self.cache_capacity));
        let metrics = Arc::new(Metrics::new());
        // One ring shard per worker (workers hint with their own index)
        // plus one for boundary threads (server read/write loops hint
        // with the connection id, which lands anywhere).
        let tracer = Arc::new(Tracer::new(
            self.workers + 1,
            TRACE_RING_CAPACITY,
            SLOW_LOG_CAPACITY,
            self.tracing,
        ));
        let (queue_tx, queue_rx) = mpsc::channel();
        let pool = Pool::spawn(
            self.workers,
            queue_rx,
            Arc::new(WorkerContext {
                catalog: catalog.clone(),
                cache: cache.clone(),
                metrics: metrics.clone(),
                tracer: tracer.clone(),
                // Workers re-enter the queue to fan one large bichromatic
                // request across the pool as claimable shards.
                queue: queue_tx.clone(),
                pool_size: self.workers,
                shard_limit: self.shard_limit,
                overlay_limit: self.overlay_limit,
            }),
        );
        Engine {
            catalog,
            cache,
            metrics,
            tracer,
            trace_ids: AtomicU64::new(1),
            overlay_limit: self.overlay_limit,
            queue: Some(queue_tx),
            pool: Some(pool),
        }
    }
}

/// A concurrent, batched query-serving engine over the WQRTQ query and
/// why-not algorithms.
///
/// Owns a [`Catalog`] of named datasets (lazily indexed, `Arc`-shared), a
/// fixed worker pool fed through mpsc channels, an LRU [`ResultCache`]
/// keyed on `(dataset epoch, request fingerprint)`, and per-request
/// [`Metrics`]. Dropping the engine shuts the pool down cleanly.
#[derive(Debug)]
pub struct Engine {
    catalog: Arc<Catalog>,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    tracer: Arc<Tracer>,
    /// Trace ids for in-process submissions (wire callers bring their
    /// own, composed from connection and frame ids).
    trace_ids: AtomicU64,
    overlay_limit: Option<usize>,
    queue: Option<Sender<Job>>,
    pool: Option<Pool>,
}

/// One request of an [`Engine::submit_batch_with`] run: the request,
/// the boundary-assigned trace id, and the completion its response is
/// routed into (invoked on the worker thread that finished it).
pub struct BatchSubmission {
    request: Request,
    trace_id: u64,
    complete: Box<dyn FnOnce(Response) + Send + 'static>,
}

impl BatchSubmission {
    /// Packages one request for batched submission.
    pub fn new(
        request: Request,
        trace_id: u64,
        complete: impl FnOnce(Response) + Send + 'static,
    ) -> Self {
        Self {
            request,
            trace_id,
            complete: Box::new(complete),
        }
    }
}

impl std::fmt::Debug for BatchSubmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSubmission")
            .field("trace_id", &self.trace_id)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The live job queue. Lifecycle invariant: `queue` is `Some` from
    /// construction until `Drop` takes it to stop the pool, so every
    /// `&self` caller observes it alive.
    fn live_queue(&self) -> &Sender<Job> {
        // lint: allow(no-panic) — lifecycle invariant above: `Drop` is
        // the only taker, and it owns the last `&mut self`.
        self.queue.as_ref().expect("pool alive while engine alive")
    }

    /// Enqueues one job on the worker pool.
    fn enqueue(&self, job: Job) {
        self.live_queue()
            .send(job)
            // lint: allow(no-panic) — a send fails only once every
            // worker (receiver) exited, and workers only exit after
            // `Drop` takes the sender; unreachable through `&self`.
            .expect("worker pool alive while engine alive");
    }

    /// An engine with `workers` threads and default cache capacity.
    pub fn new(workers: usize) -> Self {
        Self::builder().workers(workers).build()
    }

    /// Read access to the catalog (names, epochs, handles).
    ///
    /// Mutations should go through [`Engine::register_dataset`] /
    /// [`Engine::append_points`] / [`Engine::delete_points`], which also
    /// evict the mutated dataset's cache entries and schedule
    /// compactions. (Mutating the catalog directly is still *safe* —
    /// epoch-keyed cache entries can never serve stale data — it merely
    /// leaves dead entries for LRU eviction to reclaim and skips the
    /// compaction trigger.)
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers (or replaces) a dataset and evicts its cached results.
    ///
    /// # Errors
    /// See [`Catalog::register`].
    pub fn register_dataset(
        &self,
        name: &str,
        dim: usize,
        coords: Vec<f64>,
    ) -> Result<(), EngineError> {
        self.catalog.register(name, dim, coords)?;
        self.cache.evict_dataset(name);
        Ok(())
    }

    /// Appends points into a dataset's delta overlay — `O(Δ)`, the built
    /// index is untouched — evicting its cached results and scheduling a
    /// compaction if the overlay outgrew its threshold. Returns the live
    /// point count. Equivalent to submitting [`Request::Append`].
    ///
    /// # Errors
    /// See [`Catalog::append`].
    pub fn append_points(&self, name: &str, points: &[f64]) -> Result<usize, EngineError> {
        crate::worker::mutate(
            &self.catalog,
            &self.cache,
            self.live_queue(),
            self.overlay_limit,
            name,
            |catalog| catalog.append(name, points),
        )
    }

    /// Deletes points by stable id (base rows are tombstoned, appended
    /// rows drop out of the overlay) — `O(Δ)`, index untouched — with
    /// the same eviction + compaction scheduling as appends. Returns the
    /// live point count. Equivalent to submitting [`Request::Delete`].
    ///
    /// # Errors
    /// See [`Catalog::delete`].
    pub fn delete_points(&self, name: &str, ids: &[u32]) -> Result<usize, EngineError> {
        crate::worker::mutate(
            &self.catalog,
            &self.cache,
            self.live_queue(),
            self.overlay_limit,
            name,
            |catalog| catalog.delete(name, ids),
        )
    }

    /// Synchronously merges a dataset's overlay into a fresh bulk-loaded
    /// base (no-op when the overlay is empty). Returns whether a merge
    /// ran. Automatic compaction does the same off the request path; this
    /// entry point exists for deterministic id bookkeeping and tests.
    ///
    /// # Errors
    /// [`EngineError::UnknownDataset`].
    pub fn compact(&self, name: &str) -> Result<bool, EngineError> {
        let epoch = self.catalog.epoch(name)?;
        self.catalog.compact_if(name, epoch)
    }

    /// Registers an immutable customer weight population.
    ///
    /// # Errors
    /// See [`Catalog::register_weights`].
    pub fn register_weights(&self, name: &str, weights: Vec<Weight>) -> Result<(), EngineError> {
        self.catalog.register_weights(name, weights)
    }

    /// Writes a full snapshot of the catalog now and resets the WAL
    /// (recovery then starts from this image instead of replaying the
    /// whole log). Returns `false` — doing nothing — for an engine
    /// without a data directory. Compaction checkpoints automatically;
    /// this entry point exists for shutdown hooks and tests.
    ///
    /// # Errors
    /// [`EngineError::Durability`] when the snapshot cannot be
    /// installed; the previous snapshot and full WAL stay intact.
    pub fn checkpoint(&self) -> Result<bool, EngineError> {
        self.catalog.checkpoint()
    }

    /// Serves one request on the pool.
    pub fn submit(&self, request: Request) -> Response {
        self.submit_batch(vec![request])
            .pop()
            // lint: allow(no-panic) — `submit_batch` returns exactly
            // one response per submitted request by contract (and its
            // own tests).
            .expect("one response per request")
    }

    /// Enqueues one request and returns immediately; `complete` runs on
    /// the worker thread that finished it. This is the serving layer's
    /// entry point: a connection session can keep `N` requests in flight
    /// without parking `N` threads, and responses are routed wherever
    /// the caller's completion puts them (tagged by whatever id the
    /// caller captured), so they may finish out of submission order.
    ///
    /// The completion must be quick and non-blocking — it runs on a pool
    /// worker, and blocking there stalls every queued request behind it.
    pub fn submit_with(&self, request: Request, complete: impl FnOnce(Response) + Send + 'static) {
        self.submit_with_trace(request, self.next_trace_id(), complete);
    }

    /// [`Engine::submit_with`] under a caller-assigned trace id — the
    /// wire boundary's entry point (the server composes
    /// `connection id << 32 | frame id`, so a slow-log entry names the
    /// exact frame on the exact connection).
    pub fn submit_with_trace(
        &self,
        request: Request,
        trace_id: u64,
        complete: impl FnOnce(Response) + Send + 'static,
    ) {
        // Stats requests leave every counter untouched end to end, so
        // the snapshot they return equals `Engine::metrics()` at the
        // same quiesced point.
        if !matches!(request, Request::Stats) {
            self.metrics.record_async_submit();
        }
        self.enqueue(Job::Serve {
            request,
            reply: Completion::Callback(Box::new(complete)),
            progress: None,
            trace: TraceContext {
                trace_id,
                submitted: Instant::now(),
            },
        });
    }

    /// [`Engine::submit_with`], additionally observing **partial
    /// results**: for a [`Request::WhyNot`], `progress` runs on the
    /// worker thread as each advisor step completes (explanations first,
    /// then one call per refinement strategy, in execution order),
    /// strictly before `complete` delivers the final ranked plan. Other
    /// request kinds never invoke `progress`, and neither does a result
    /// served from the cache — the plan arrives whole in that case.
    ///
    /// Like completions, the observer must be quick and non-blocking: it
    /// runs inline on a pool worker.
    pub fn submit_with_progress(
        &self,
        request: Request,
        progress: impl FnMut(crate::request::PlanDelta) + Send + 'static,
        complete: impl FnOnce(Response) + Send + 'static,
    ) {
        self.submit_with_progress_trace(request, self.next_trace_id(), progress, complete);
    }

    /// [`Engine::submit_with_progress`] under a caller-assigned trace
    /// id (see [`Engine::submit_with_trace`]).
    pub fn submit_with_progress_trace(
        &self,
        request: Request,
        trace_id: u64,
        progress: impl FnMut(crate::request::PlanDelta) + Send + 'static,
        complete: impl FnOnce(Response) + Send + 'static,
    ) {
        if !matches!(request, Request::Stats) {
            self.metrics.record_async_submit();
        }
        self.enqueue(Job::Serve {
            request,
            reply: Completion::Callback(Box::new(complete)),
            progress: Some(Box::new(progress)),
            trace: TraceContext {
                trace_id,
                submitted: Instant::now(),
            },
        });
    }

    /// Submits a run of pipelined requests in one queue operation, each
    /// with its own caller-assigned trace id and completion (the same
    /// contract as [`Engine::submit_with_trace`], amortised): the run is
    /// wrapped in a single claimable task and `min(workers, len)` job
    /// sentinels are enqueued, so a serving layer that decoded a burst
    /// of frames pays one mpsc send per *worker that could help*, not
    /// one per request — while idle workers still steal individual
    /// items, so a fast request behind a slow one overtakes it exactly
    /// as it would have under per-request submission.
    ///
    /// Completions run on worker threads and must be quick and
    /// non-blocking, like every completion-routed path. Requests that
    /// need progressive partial results ([`Request::WhyNot`] over wire
    /// v2) should keep using [`Engine::submit_with_progress_trace`].
    pub fn submit_batch_with(&self, items: Vec<BatchSubmission>) {
        if items.is_empty() {
            return;
        }
        for item in &items {
            if !matches!(item.request, Request::Stats) {
                self.metrics.record_async_submit();
            }
        }
        let sends = self.worker_count().max(1).min(items.len());
        let task = Arc::new(ServeManyTask::new(
            items
                .into_iter()
                .map(|item| ServeUnit {
                    request: item.request,
                    trace_id: item.trace_id,
                    complete: item.complete,
                })
                .collect(),
        ));
        for _ in 0..sends {
            self.enqueue(Job::ServeMany(task.clone()));
        }
    }

    /// Records one boundary-owned pipeline-stage observation into the
    /// engine's stage histograms. Workers record the stages they own
    /// (queue wait, cache lookup, execute); the layers in front of the
    /// pool — the wire server's serialize path, an admission gate —
    /// own stages the workers never see and report them here.
    pub fn record_stage(&self, stage: wqrtq_obs::Stage, latency: std::time::Duration) {
        self.metrics.record_stage(stage, latency);
    }

    /// Fans a batch across the worker pool and reassembles responses in
    /// submission order. Responses are deterministic and independent of
    /// the worker count; failed requests yield [`Response::Error`] in
    /// their slot without affecting their neighbours.
    pub fn submit_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        if requests.is_empty() {
            return Vec::new();
        }
        // A batch of nothing but Stats requests is not workload — it
        // must observe the counters, not move them.
        if requests.iter().any(|r| !matches!(r, Request::Stats)) {
            self.metrics.record_batch();
        }
        let n = requests.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        for (slot, request) in requests.into_iter().enumerate() {
            self.enqueue(Job::Serve {
                request,
                reply: Completion::Batch {
                    slot,
                    reply: reply_tx.clone(),
                },
                progress: None,
                trace: TraceContext {
                    trace_id: self.next_trace_id(),
                    submitted: Instant::now(),
                },
            });
        }
        drop(reply_tx);
        let mut responses: Vec<Option<Response>> = vec![None; n];
        for _ in 0..n {
            match reply_rx.recv() {
                Ok((slot, response)) => responses[slot] = Some(response),
                // Unreachable in practice: workers catch panics and the
                // pool outlives every in-flight batch. Degrade to typed
                // errors rather than poisoning the whole batch.
                Err(_) => break,
            }
        }
        responses
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Response::Error(EngineError::PoolShutdown.to_string())))
            .collect()
    }

    /// Point-in-time metrics (per-kind latency, index-node accesses,
    /// cache hit rate).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.cache.stats(), self.catalog.stats())
    }

    /// The engine's tracer — boundary threads (the server's read and
    /// write loops) record their admission and serialize spans here.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains the per-worker trace rings into one snapshot.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.drain()
    }

    /// The slowest requests seen so far (full span breakdown each),
    /// slowest first.
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.tracer.slow_requests()
    }

    fn next_trace_id(&self) -> u64 {
        // ordering: Relaxed — unique-id ticket; fetch_add is atomic at
        // any ordering, and nothing is published through the counter.
        self.trace_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.pool.as_ref().map_or(0, Pool::len)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Workers hold their own queue sender (for shard fan-out), so
        // dropping ours never disconnects the channel; orderly shutdown
        // is one sentinel per worker. The queue is FIFO, so all
        // previously submitted work drains first.
        if let (Some(queue), Some(pool)) = (self.queue.take(), self.pool.take()) {
            for _ in 0..pool.len() {
                let _ = queue.send(Job::Shutdown);
            }
            drop(queue);
            pool.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RefineStrategy, WeightSet};

    fn figure1_engine(workers: usize) -> Engine {
        let engine = Engine::builder()
            .workers(workers)
            .cache_capacity(32)
            .build();
        engine
            .register_dataset(
                "products",
                2,
                vec![
                    2.0, 1.0, 6.0, 3.0, 1.0, 9.0, 9.0, 3.0, 7.0, 5.0, 5.0, 8.0, 3.0, 7.0,
                ],
            )
            .unwrap();
        engine
            .register_weights(
                "customers",
                vec![
                    Weight::new(vec![0.1, 0.9]), // Kevin
                    Weight::new(vec![0.5, 0.5]), // Tony
                    Weight::new(vec![0.3, 0.7]), // Anna
                    Weight::new(vec![0.9, 0.1]), // Julia
                ],
            )
            .unwrap();
        engine
    }

    #[test]
    fn serves_every_request_kind_on_the_paper_example() {
        let engine = figure1_engine(3);
        let batch = vec![
            Request::TopK {
                dataset: "products".into(),
                weight: vec![0.5, 0.5],
                k: 3,
            },
            Request::ReverseTopKBi {
                dataset: "products".into(),
                weights: WeightSet::Named("customers".into()),
                q: vec![4.0, 4.0],
                k: 3,
            },
            Request::ReverseTopKMono {
                dataset: "products".into(),
                q: vec![4.0, 4.0],
                k: 3,
                samples: 0,
                seed: 0,
            },
            Request::WhyNotExplain {
                dataset: "products".into(),
                weight: vec![0.1, 0.9],
                q: vec![4.0, 4.0],
                limit: 10,
            },
            Request::WhyNotRefine {
                dataset: "products".into(),
                q: vec![4.0, 4.0],
                k: 3,
                why_not: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
                strategy: RefineStrategy::Mqp,
            },
        ];
        let responses = engine.submit_batch(batch);
        assert_eq!(responses.len(), 5);
        // Paper §1: Tony and Anna (indices 1, 2) have q in their top-3.
        assert_eq!(responses[1], Response::ReverseTopKBi(vec![1, 2]));
        // Kevin ranks q 4th, behind three culprits.
        match &responses[3] {
            Response::Explanation { rank, culprits, .. } => {
                assert_eq!(*rank, 4);
                assert_eq!(culprits.len(), 3);
            }
            other => panic!("expected explanation, got {other:?}"),
        }
        match &responses[4] {
            Response::Refinement(r) => {
                let q_prime = r.q_prime.as_ref().expect("MQP moves q");
                assert!((q_prime[0] - 3.375).abs() < 1e-5);
                assert!((q_prime[1] - 3.625).abs() < 1e-5);
            }
            other => panic!("expected refinement, got {other:?}"),
        }
        assert!(responses.iter().all(|r| !r.is_error()));
        let m = engine.metrics();
        assert_eq!(m.total_requests(), 5);
        assert_eq!(m.batches, 1);
        assert!(m.total_index_nodes() > 0, "TopK/Explain report index work");
    }

    #[test]
    fn two_tier_plane_is_bit_identical_to_the_exact_oracle() {
        let scatter = |n: usize, seed: u64| -> Vec<f64> {
            let mut v = Vec::with_capacity(n * 3);
            let mut s = seed | 1;
            for _ in 0..n * 3 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.push((s >> 11) as f64 / (1u64 << 53) as f64 * 100.0);
            }
            v
        };
        // Above the flat-scan cutoff so the masked RTA path runs too.
        let coords = scatter(3000, 9);
        let weights: Vec<Vec<f64>> = (0..96)
            .map(|i| {
                let a = (i as f64 + 1.0) / 97.0;
                vec![a, (1.0 - a) * 0.7, (1.0 - a) * 0.3]
            })
            .collect();
        let tiered = Engine::builder().workers(2).build();
        let oracle = Engine::builder()
            .workers(2)
            .prefilter(false)
            .quantized(false)
            .build();
        for e in [&tiered, &oracle] {
            e.register_dataset("d", 3, coords.clone()).unwrap();
        }
        let q = vec![50.0, 50.0, 50.0];
        let reqs = |k: usize| {
            vec![
                Request::ReverseTopKBi {
                    dataset: "d".into(),
                    weights: WeightSet::Inline(weights.clone()),
                    q: q.clone(),
                    k,
                },
                Request::TopK {
                    dataset: "d".into(),
                    weight: vec![0.2, 0.5, 0.3],
                    k,
                },
                Request::WhyNotExplain {
                    dataset: "d".into(),
                    weight: vec![0.6, 0.2, 0.2],
                    q: q.clone(),
                    limit: 8,
                },
            ]
        };
        for k in [1usize, 5, 20] {
            assert_eq!(
                tiered.submit_batch(reqs(k)),
                oracle.submit_batch(reqs(k)),
                "pre-mutation, k={k}"
            );
        }
        // Identical mutation streams: the mask built at the old base
        // must keep correcting through the epoch triple.
        for e in [&tiered, &oracle] {
            e.append_points("d", &scatter(40, 11)).unwrap();
            e.delete_points("d", &[3, 77, 2040]).unwrap();
        }
        for k in [1usize, 5, 20] {
            assert_eq!(
                tiered.submit_batch(reqs(k)),
                oracle.submit_batch(reqs(k)),
                "post-mutation, k={k}"
            );
        }
        let mt = tiered.metrics();
        assert_eq!(mt.catalog.mask_builds, 1, "one mask per base generation");
        assert!(
            mt.catalog.prefilter_skips > 0,
            "the pre-filter must actually skip points"
        );
        let mo = oracle.metrics();
        assert_eq!(mo.catalog.mask_builds, 0);
        assert_eq!(mo.catalog.prefilter_skips, 0);
        assert_eq!(mo.catalog.quantized_fallbacks, 0);
    }

    #[test]
    fn unknown_dataset_and_bad_dimensions_fail_without_poisoning_the_batch() {
        let engine = figure1_engine(2);
        let responses = engine.submit_batch(vec![
            Request::TopK {
                dataset: "nope".into(),
                weight: vec![0.5, 0.5],
                k: 1,
            },
            Request::TopK {
                dataset: "products".into(),
                weight: vec![0.5, 0.5, 0.5],
                k: 1,
            },
            Request::TopK {
                dataset: "products".into(),
                weight: vec![0.5, 0.5],
                k: 1,
            },
        ]);
        assert!(responses[0].is_error());
        assert!(responses[1].is_error());
        assert_eq!(responses[2], Response::TopK(vec![(0, 1.5)]));
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let engine = figure1_engine(2);
        let req = Request::TopK {
            dataset: "products".into(),
            weight: vec![0.5, 0.5],
            k: 3,
        };
        let first = engine.submit(req.clone());
        let second = engine.submit(req);
        assert_eq!(first, second);
        let stats = engine.metrics().cache;
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn submit_with_routes_completions_without_blocking() {
        // The engine must be shareable across session threads: the
        // serving layer submits from many connections concurrently.
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<Engine>();

        let engine = figure1_engine(2);
        let (tx, rx) = mpsc::channel();
        for (id, k) in [(7u64, 1usize), (8, 2), (9, 3)] {
            let tx = tx.clone();
            engine.submit_with(
                Request::TopK {
                    dataset: "products".into(),
                    weight: vec![0.5, 0.5],
                    k,
                },
                move |response| tx.send((id, response)).unwrap(),
            );
        }
        drop(tx);
        let mut got: Vec<(u64, Response)> = rx.iter().collect();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got.len(), 3);
        for ((id, response), k) in got.into_iter().zip([1usize, 2, 3]) {
            assert_eq!(
                response,
                engine.submit(Request::TopK {
                    dataset: "products".into(),
                    weight: vec![0.5, 0.5],
                    k,
                }),
                "completion for id {id} must match the blocking path"
            );
        }
        assert_eq!(engine.metrics().async_submits, 3);
    }

    #[test]
    fn why_not_plan_streams_partials_then_recommends_the_minimum() {
        use crate::request::PlanDelta;
        use wqrtq_core::advisor::WhyNotOptions;
        let engine = figure1_engine(2);
        let request = Request::WhyNot {
            dataset: "products".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
            options: WhyNotOptions::default(),
        };
        let (tx, rx) = mpsc::channel();
        let partial_tx = tx.clone();
        engine.submit_with_progress(
            request.clone(),
            move |delta| partial_tx.send(Err(delta)).unwrap(),
            move |response| tx.send(Ok(response)).unwrap(),
        );
        let events: Vec<_> = rx.iter().collect();
        // 2 explanations + 3 strategies stream before the final plan.
        assert_eq!(events.len(), 6);
        let mut explained = 0;
        let mut steps = 0;
        for (i, event) in events.iter().enumerate() {
            match event {
                Err(PlanDelta::Explained { .. }) => {
                    assert_eq!(i, explained, "explanations stream first");
                    explained += 1;
                }
                Err(PlanDelta::Step(_)) => steps += 1,
                Ok(response) => {
                    assert_eq!(i, 5, "the final plan arrives last");
                    match response {
                        Response::Plan(plan) => {
                            assert_eq!(plan.explanations.len(), 2);
                            assert_eq!(plan.k_max, 4);
                            assert_eq!(plan.steps.len(), 3);
                            assert!(plan
                                .steps
                                .windows(2)
                                .all(|p| { p[0].refinement.penalty <= p[1].refinement.penalty }));
                            assert!(plan.steps.iter().all(|s| s.verified));
                            // Every streamed step reappears in the plan.
                            assert_eq!(steps, plan.steps.len());
                        }
                        other => panic!("expected a plan, got {other:?}"),
                    }
                }
            }
        }
        assert_eq!(explained, 2);

        // The identical request is a cache hit: the plan arrives whole,
        // bit-identical, with no partials.
        let cached = engine.submit(request);
        match (&events[5], &cached) {
            (Ok(live), cached) => assert_eq!(live, cached),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(engine.metrics().cache.hits, 1);
    }

    #[test]
    fn submit_batch_empty_is_a_noop() {
        let engine = figure1_engine(1);
        assert!(engine.submit_batch(Vec::new()).is_empty());
        assert_eq!(engine.metrics().batches, 0);
    }

    #[test]
    fn builder_defaults_and_accessors() {
        let engine = Engine::new(2);
        assert_eq!(engine.worker_count(), 2);
        assert!(engine.catalog().dataset_names().is_empty());
    }

    fn scatter(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut v = Vec::with_capacity(n * dim);
        let mut state = seed | 1;
        for _ in 0..n * dim {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            v.push((state >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
        }
        v
    }

    fn big_population(m: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|i| {
                let x = 0.05 + 0.9 * (i as f64 / m as f64);
                vec![x, 1.0 - x]
            })
            .collect()
    }

    #[test]
    fn large_bichromatic_request_is_sharded_across_the_pool() {
        let coords = scatter(4000, 2, 42);
        let population = big_population(400);
        let request = Request::ReverseTopKBi {
            dataset: "d".into(),
            weights: WeightSet::Inline(population),
            q: vec![3.0, 3.5],
            k: 10,
        };

        // Reference: single worker (sequential path, no sharding).
        let solo = Engine::builder().workers(1).build();
        solo.register_dataset("d", 2, coords.clone()).unwrap();
        let expected = solo.submit(request.clone());
        assert!(matches!(expected, Response::ReverseTopKBi(_)));
        assert_eq!(solo.metrics().sharded_requests, 0);

        // Multi-worker engine must fan the same request into shards and
        // produce the identical response. The explicit shard limit
        // forces the parallel path even on single-core CI machines
        // (where the adaptive default would stay sequential).
        let pooled = Engine::builder().workers(4).shard_limit(4).build();
        pooled.register_dataset("d", 2, coords).unwrap();
        let got = pooled.submit(request);
        assert_eq!(got, expected);
        let m = pooled.metrics();
        assert_eq!(m.sharded_requests, 1);
        assert!(
            m.parallel_shards >= 2,
            "400 weights on 4 workers must split: {m:?}"
        );
    }

    #[test]
    fn scratch_reuse_is_tracked() {
        // Needs a dataset big enough for the RTA path (small ones are
        // answered by the flat scan, which uses no worker scratch).
        let engine = Engine::builder().workers(1).build();
        engine
            .register_dataset("d", 2, scatter(3000, 2, 5))
            .unwrap();
        // Distinct bichromatic requests keep the worker busy on its own
        // scratch; from the second one on, the buffers are warm.
        for i in 0..5 {
            let q = 3.0 + i as f64 * 0.1;
            let r = engine.submit(Request::ReverseTopKBi {
                dataset: "d".into(),
                weights: WeightSet::Inline(big_population(8)),
                q: vec![q, q],
                k: 3,
            });
            assert!(!r.is_error());
        }
        let m = engine.metrics();
        assert!(
            m.scratch_reuses >= 3,
            "warm scratch must be reused across requests: {m:?}"
        );
    }

    #[test]
    fn mutation_requests_serve_through_the_pool() {
        let engine = figure1_engine(2);
        // Append a dominating product via a request; query in a later
        // batch (mutations and queries in one batch race by design).
        let r = engine.submit(Request::Append {
            dataset: "products".into(),
            points: vec![1.0, 0.5],
        });
        assert_eq!(r, Response::Mutated { live_len: 8 });
        let top = engine.submit(Request::TopK {
            dataset: "products".into(),
            weight: vec![0.5, 0.5],
            k: 1,
        });
        match &top {
            Response::TopK(points) => assert_eq!(points[0].0, 7, "appended point ranks first"),
            other => panic!("expected TopK, got {other:?}"),
        }
        // Delete it again: the original paper answer returns.
        let r = engine.submit(Request::Delete {
            dataset: "products".into(),
            ids: vec![7],
        });
        assert_eq!(r, Response::Mutated { live_len: 7 });
        let r = engine.submit(Request::ReverseTopKBi {
            dataset: "products".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![4.0, 4.0],
            k: 3,
        });
        assert_eq!(r, Response::ReverseTopKBi(vec![1, 2])); // Tony, Anna
        let m = engine.metrics();
        assert_eq!(m.catalog.index_builds, 1, "mutations never rebuild");
        // The append landed before the lazy index existed (nothing to
        // avoid); the delete hit a built index and was absorbed.
        assert_eq!(m.catalog.rebuilds_avoided, 1);
        // Bad mutations are typed errors that don't poison the batch.
        let rs = engine.submit_batch(vec![
            Request::Delete {
                dataset: "products".into(),
                ids: vec![7], // already deleted
            },
            Request::Append {
                dataset: "products".into(),
                points: vec![f64::NAN, 1.0],
            },
            Request::Append {
                dataset: "nope".into(),
                points: vec![1.0, 1.0],
            },
        ]);
        assert!(rs.iter().all(Response::is_error));
    }

    #[test]
    fn non_finite_inputs_are_rejected_with_typed_errors() {
        let engine = figure1_engine(1);
        let cases = vec![
            Request::TopK {
                dataset: "products".into(),
                weight: vec![f64::NAN, 0.5],
                k: 1,
            },
            Request::TopK {
                dataset: "products".into(),
                weight: vec![-0.5, 1.5],
                k: 1,
            },
            Request::TopK {
                dataset: "products".into(),
                weight: vec![0.0, 0.0],
                k: 1,
            },
            Request::ReverseTopKMono {
                dataset: "products".into(),
                q: vec![f64::INFINITY, 4.0],
                k: 3,
                samples: 0,
                seed: 0,
            },
            Request::ReverseTopKBi {
                dataset: "products".into(),
                weights: WeightSet::Inline(vec![vec![0.5, f64::NEG_INFINITY]]),
                q: vec![4.0, 4.0],
                k: 3,
            },
            Request::WhyNotExplain {
                dataset: "products".into(),
                weight: vec![0.1, 0.9],
                q: vec![f64::NAN, 4.0],
                limit: 3,
            },
            Request::WhyNotRefine {
                dataset: "products".into(),
                q: vec![4.0, 4.0],
                k: 3,
                why_not: vec![vec![f64::NAN, 0.9]],
                strategy: RefineStrategy::Mqp,
            },
        ];
        for request in cases {
            let label = format!("{request:?}");
            let response = engine.submit(request);
            match response {
                Response::Error(msg) => assert!(
                    msg.contains("non-finite") || msg.contains("invalid weighting"),
                    "{label}: unexpected error text {msg}"
                ),
                other => panic!("{label}: expected typed error, got {other:?}"),
            }
        }
        // Nothing was executed or cached for any of them.
        assert_eq!(engine.metrics().cache.len, 0);
    }

    #[test]
    fn overlay_growth_triggers_background_compaction() {
        let engine = Engine::builder().workers(2).overlay_limit(4).build();
        engine.register_dataset("d", 2, scatter(64, 2, 3)).unwrap();
        engine.catalog().handle("d").unwrap(); // build the base index
        for i in 0..6 {
            engine.append_points("d", &[i as f64, i as f64]).unwrap();
        }
        // The 5th mutation crossed the limit and scheduled a merge on
        // the pool; wait for a worker to pick it up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while engine.metrics().catalog.compactions == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "compaction never ran: {:?}",
                engine.metrics().catalog
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let epoch = engine.catalog().epoch("d").unwrap();
        assert!(epoch.base >= 2, "compaction bumps the base epoch");
        // The merged dataset still answers correctly (66 live points).
        match engine.submit(Request::TopK {
            dataset: "d".into(),
            weight: vec![0.5, 0.5],
            k: 1,
        }) {
            Response::TopK(points) => assert_eq!(points.len(), 1),
            other => panic!("expected TopK, got {other:?}"),
        }
    }

    #[test]
    fn stats_request_returns_the_metrics_without_perturbing_them() {
        let engine = figure1_engine(2);
        engine.submit(Request::TopK {
            dataset: "products".into(),
            weight: vec![0.5, 0.5],
            k: 3,
        });
        let before = engine.metrics();
        let response = engine.submit(Request::Stats);
        match &response {
            Response::Stats(stats) => {
                assert_eq!(stats.metrics, before, "snapshot equals Engine::metrics()");
                assert!(
                    stats.server.is_none(),
                    "in-process callers get no server counters"
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Serving the stats request recorded nothing anywhere: a second
        // observation — by either path — still matches.
        assert_eq!(engine.metrics(), before);
        match engine.submit(Request::Stats) {
            Response::Stats(stats) => assert_eq!(stats.metrics, before),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stage_histograms_cover_the_request_pipeline() {
        use wqrtq_obs::Stage;
        let engine = figure1_engine(2);
        engine.submit(Request::TopK {
            dataset: "products".into(),
            weight: vec![0.5, 0.5],
            k: 3,
        });
        engine.submit(Request::WhyNot {
            dataset: "products".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![0.1, 0.9]],
            options: wqrtq_core::advisor::WhyNotOptions::default(),
        });
        let m = engine.metrics();
        for stage in [
            Stage::QueueWait,
            Stage::Admission,
            Stage::CacheLookup,
            Stage::Execute,
        ] {
            assert_eq!(
                m.stage_latency(stage).count,
                2,
                "both requests pass through {stage:?}"
            );
        }
        assert_eq!(
            m.stage_latency(Stage::IndexProbe).count,
            1,
            "only the top-k walks the index"
        );
        // validate + one explanation + three strategies.
        assert_eq!(m.stage_latency(Stage::AdvisorStep).count, 5);
    }

    #[test]
    fn tracing_yields_spans_and_a_slow_log_unless_disabled() {
        let request = Request::TopK {
            dataset: "products".into(),
            weight: vec![0.5, 0.5],
            k: 3,
        };
        let engine = figure1_engine(2);
        engine.submit(request.clone());
        let snap = engine.trace_snapshot();
        assert!(!snap.spans.is_empty(), "traced engines retain spans");
        let trace_id = snap.spans[0].trace_id;
        assert!(snap.spans.iter().all(|s| s.trace_id == trace_id));
        let slow = engine.slow_requests();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, trace_id);
        // The index probe nests inside the execute span.
        let by_stage = |stage| {
            slow[0]
                .spans
                .iter()
                .find(|s| s.stage == stage)
                .unwrap_or_else(|| panic!("missing {stage:?} span"))
        };
        let probe = by_stage(wqrtq_obs::Stage::IndexProbe);
        let exec = by_stage(wqrtq_obs::Stage::Execute);
        assert!(probe.duration_nanos <= exec.duration_nanos);
        assert!(
            probe.start_nanos + probe.duration_nanos <= exec.start_nanos + exec.duration_nanos,
            "the probe ends within the execute span"
        );

        let untraced = Engine::builder().workers(2).tracing(false).build();
        untraced
            .register_dataset("products", 2, vec![2.0, 1.0, 6.0, 3.0])
            .unwrap();
        untraced.submit(request);
        assert!(untraced.trace_snapshot().spans.is_empty());
        assert!(untraced.slow_requests().is_empty());
        // Stage histograms record regardless of tracing.
        assert!(
            untraced
                .metrics()
                .stage_latency(wqrtq_obs::Stage::Execute)
                .count
                > 0
        );
    }

    #[test]
    fn small_datasets_answer_bichromatic_via_flat_scan() {
        // The paper example (7 points) takes the fused flat-scan path;
        // it must agree with the RTA answer bit for bit.
        let engine = figure1_engine(2);
        let r = engine.submit(Request::ReverseTopKBi {
            dataset: "products".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![4.0, 4.0],
            k: 3,
        });
        assert_eq!(r, Response::ReverseTopKBi(vec![1, 2])); // Tony, Anna
        assert_eq!(engine.metrics().scratch_reuses, 0);
    }
}
