#![warn(missing_docs)]

//! # WQRTQ engine — a concurrent, batched query-serving subsystem
//!
//! The library crates answer one query per call; this crate turns them
//! into a **serving system** for reverse top-k and why-not workloads,
//! the shape production traffic actually has (many queries against few,
//! slowly changing datasets — cf. *Indexing Reverse Top-k Queries* and
//! the PUG provenance engine's cached-state design):
//!
//! * [`Catalog`] — named datasets with lazily built, `Arc`-shared R-tree
//!   indexes and mutation **epochs**; immutable customer weight
//!   populations;
//! * [`Request`] / [`Response`] — a typed vocabulary covering top-k,
//!   mono- and bichromatic reverse top-k, why-not explanation, and all
//!   three refinement solutions (MQP / MWK / MQWK);
//! * [`Engine::submit_batch`] — fans a batch across a fixed worker pool
//!   over mpsc channels and reassembles **ordered** responses; results
//!   are deterministic and independent of the worker count;
//! * [`ResultCache`] — an engine-level LRU keyed on `(dataset epoch,
//!   request fingerprint)`, generalising the query crate's top-k view
//!   cache to whole responses; epochs make stale hits impossible;
//! * [`MetricsSnapshot`] — per-kind request counts, latency, index-node
//!   accesses (via `rtree` traversal counters) and cache hit rate.
//!
//! ```
//! use wqrtq_engine::{Engine, Request, Response};
//!
//! let engine = Engine::builder().workers(2).build();
//! engine.register_dataset("p", 2, vec![0.2, 0.8, 0.5, 0.5, 0.9, 0.1]).unwrap();
//! let r = engine.submit(Request::TopK {
//!     dataset: "p".into(),
//!     weight: vec![0.5, 0.5],
//!     k: 1,
//! });
//! assert_eq!(r, Response::TopK(vec![(0, 0.5)]));
//! println!("{}", engine.metrics());
//! ```

mod cache;
mod catalog;
mod engine;
mod error;
mod metrics;
mod request;
pub mod storage;
mod worker;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use catalog::{Catalog, CatalogStats, DatasetEpoch, DatasetHandle};
pub use engine::{BatchSubmission, Engine, EngineBuilder};
pub use error::EngineError;
pub use metrics::{
    KindSnapshot, Metrics, MetricsSnapshot, ServerCounters, StageSnapshot, StatsSnapshot,
};
pub use storage::{FsyncPolicy, StorageError};
// Observability vocabulary (histograms, stages, spans) re-exported for
// the same reason: one dependency gives serving layers the full surface.
pub use request::{
    Plan, PlanDelta, PlanExplanation, PlanStep, RefineStrategy, Refinement, Request, RequestKind,
    Response, WeightSet, REQUEST_KIND_TABLE,
};
pub use wqrtq_obs::{
    Histogram, HistogramSnapshot, SlowRequest, SpanRecord, Stage, TraceSnapshot, Tracer,
    RELATIVE_ERROR_BOUND,
};
// Advisor vocabulary re-exported so serving layers (and the wire codec)
// need only this crate for the full request surface.
pub use wqrtq_core::advisor::{PenaltyBreakdown, StrategyKind, WhyNotOptions};
pub use wqrtq_core::penalty::Tolerances;
