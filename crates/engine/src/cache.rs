//! The engine-level LRU result cache.
//!
//! Generalises the per-query `TopkViewCache` of `wqrtq-query` (which
//! caches top-k *views* to short-circuit one membership predicate) to
//! whole responses for every request kind: entries are keyed on
//! `(dataset epoch, request fingerprint)`, so a repeat of an identical
//! request against an unchanged dataset is answered without touching any
//! index.
//!
//! **Correctness does not depend on eviction.** A mutation bumps the
//! dataset epoch, so stale entries can never match a new key; explicit
//! [`ResultCache::evict_dataset`] (called by the engine on mutation) just
//! reclaims their capacity early.

use crate::request::Response;
use std::collections::HashMap;
use std::sync::Mutex;

/// Cache key: dataset epoch + request content fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Epoch of the request's dataset at execution time.
    pub epoch: u64,
    /// [`crate::Request::fingerprint`] of the request.
    pub fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    dataset: String,
    response: Response,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A bounded, thread-safe LRU map from request keys to responses.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` responses.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a response, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Response> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let r = entry.response.clone();
                inner.hits += 1;
                Some(r)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a response, evicting the least recently used entry when
    /// full. Error responses are the caller's to filter (the engine does
    /// not cache them).
    pub fn insert(&self, key: CacheKey, dataset: &str, response: Response) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                dataset: dataset.to_string(),
                response,
                last_used: tick,
            },
        );
    }

    /// Drops every entry belonging to a dataset (any epoch). Returns how
    /// many were dropped.
    pub fn evict_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.map.len();
        inner.map.retain(|_, e| e.dataset != dataset);
        before - inner.map.len()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, fp: u64) -> CacheKey {
        CacheKey {
            epoch,
            fingerprint: fp,
        }
    }

    fn resp(n: usize) -> Response {
        Response::ReverseTopKBi(vec![n])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ResultCache::new(4);
        assert_eq!(c.get(&key(1, 7)), None);
        c.insert(key(1, 7), "d", resp(1));
        assert_eq!(c.get(&key(1, 7)), Some(resp(1)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = ResultCache::new(4);
        c.insert(key(1, 7), "d", resp(1));
        assert_eq!(c.get(&key(2, 7)), None, "new epoch must not see old entry");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = ResultCache::new(2);
        c.insert(key(1, 1), "d", resp(1));
        c.insert(key(1, 2), "d", resp(2));
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&key(1, 1)).is_some());
        c.insert(key(1, 3), "d", resp(3));
        assert_eq!(c.stats().len, 2);
        assert!(c.get(&key(1, 1)).is_some());
        assert!(c.get(&key(1, 2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1, 3)).is_some());
    }

    #[test]
    fn evict_dataset_drops_only_that_dataset() {
        let c = ResultCache::new(8);
        c.insert(key(1, 1), "a", resp(1));
        c.insert(key(1, 2), "a", resp(2));
        c.insert(key(1, 3), "b", resp(3));
        assert_eq!(c.evict_dataset("a"), 2);
        assert_eq!(c.stats().len, 1);
        assert!(c.get(&key(1, 3)).is_some());
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let c = ResultCache::new(1);
        c.insert(key(1, 1), "d", resp(1));
        c.insert(key(1, 1), "d", resp(2));
        assert_eq!(c.get(&key(1, 1)), Some(resp(2)));
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ResultCache::new(0);
    }
}
