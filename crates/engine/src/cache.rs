//! The engine-level LRU result cache.
//!
//! Generalises the per-query `TopkViewCache` of `wqrtq-query` (which
//! caches top-k *views* to short-circuit one membership predicate) to
//! whole responses for every request kind: entries are keyed on
//! `(dataset epoch triple, request fingerprint)`, so a repeat of an
//! identical request against an unchanged dataset is answered without
//! touching any index.
//!
//! **Correctness does not depend on eviction.** Any mutation advances the
//! dataset's epoch triple, so stale entries can never match a new key;
//! explicit [`ResultCache::evict_dataset`] (called by the engine on
//! mutation) just reclaims their capacity early.
//!
//! Eviction is true LRU in `O(log capacity)`: a tick-ordered
//! `BTreeMap<tick, key>` mirrors the entry map's recency, so a full
//! cache evicts its least-recently-used entry by popping the first tick
//! — not by scanning every entry, which made inserts `O(capacity)` under
//! sustained load.

use crate::catalog::DatasetEpoch;
use crate::request::Response;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Cache key: dataset epoch triple + request content fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Epoch triple of the request's dataset at execution time.
    pub epoch: DatasetEpoch,
    /// [`crate::Request::fingerprint`] of the request.
    pub fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    dataset: String,
    response: Response,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency index: `last_used` tick → key. Ticks are unique (every
    /// touch consumes one), so this is a faithful LRU order.
    recency: BTreeMap<u64, CacheKey>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Inner {
    /// Looks the key up once, refreshing its recency on a hit.
    fn get_and_touch(&mut self, key: &CacheKey) -> Option<&mut Entry> {
        self.tick += 1;
        let tick = self.tick;
        // Split borrows: the map entry and the recency index are
        // disjoint fields.
        let recency = &mut self.recency;
        match self.map.get_mut(key) {
            Some(entry) => {
                recency.remove(&entry.last_used);
                entry.last_used = tick;
                recency.insert(tick, *key);
                Some(entry)
            }
            None => None,
        }
    }
}

/// A bounded, thread-safe LRU map from request keys to responses.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` responses.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a response, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Response> {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.get_and_touch(key) {
            Some(entry) => {
                let response = entry.response.clone();
                inner.hits += 1;
                Some(response)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a response, evicting the least recently used entry when
    /// full. Error responses are the caller's to filter (the engine does
    /// not cache them).
    pub fn insert(&self, key: CacheKey, dataset: &str, response: Response) {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(entry) = inner.get_and_touch(&key) {
            entry.response = response;
            return;
        }
        if inner.map.len() >= self.capacity {
            // O(log n): the least-recently-used entry is the first tick.
            if let Some((_, oldest)) = inner.recency.pop_first() {
                inner.map.remove(&oldest);
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                dataset: dataset.to_string(),
                response,
                last_used: tick,
            },
        );
        inner.recency.insert(tick, key);
    }

    /// Drops every entry belonging to a dataset (any epoch). Returns how
    /// many were dropped.
    pub fn evict_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        let before = inner.map.len();
        let mut dropped_ticks = Vec::new();
        inner.map.retain(|_, e| {
            if e.dataset == dataset {
                dropped_ticks.push(e.last_used);
                false
            } else {
                true
            }
        });
        for t in dropped_ticks {
            inner.recency.remove(&t);
        }
        before - inner.map.len()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, fp: u64) -> CacheKey {
        CacheKey {
            epoch: DatasetEpoch {
                base: epoch,
                delta: 0,
                tombstones: 0,
            },
            fingerprint: fp,
        }
    }

    fn resp(n: usize) -> Response {
        Response::ReverseTopKBi(vec![n])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ResultCache::new(4);
        assert_eq!(c.get(&key(1, 7)), None);
        c.insert(key(1, 7), "d", resp(1));
        assert_eq!(c.get(&key(1, 7)), Some(resp(1)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_triple_is_part_of_the_key() {
        let c = ResultCache::new(4);
        c.insert(key(1, 7), "d", resp(1));
        assert_eq!(c.get(&key(2, 7)), None, "new epoch must not see old entry");
        let deltaed = CacheKey {
            epoch: DatasetEpoch {
                base: 1,
                delta: 1,
                tombstones: 0,
            },
            fingerprint: 7,
        };
        assert_eq!(c.get(&deltaed), None, "appended overlay must miss");
        let tombstoned = CacheKey {
            epoch: DatasetEpoch {
                base: 1,
                delta: 0,
                tombstones: 1,
            },
            fingerprint: 7,
        };
        assert_eq!(c.get(&tombstoned), None, "deleted overlay must miss");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = ResultCache::new(2);
        c.insert(key(1, 1), "d", resp(1));
        c.insert(key(1, 2), "d", resp(2));
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&key(1, 1)).is_some());
        c.insert(key(1, 3), "d", resp(3));
        assert_eq!(c.stats().len, 2);
        assert!(c.get(&key(1, 1)).is_some());
        assert!(c.get(&key(1, 2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1, 3)).is_some());
    }

    /// Regression for the O(capacity) eviction scan: the BTreeMap-backed
    /// eviction must pick exactly the entry the old full-scan
    /// `min_by_key(last_used)` would have picked, under an interleaved
    /// get/insert workload.
    #[test]
    fn eviction_order_matches_reference_lru() {
        let cap = 8;
        let c = ResultCache::new(cap);
        // Reference model: Vec of keys, most recent last.
        let mut model: Vec<u64> = Vec::new();
        let mut lcg = 12345u64;
        for step in 0..2000u64 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fp = lcg % 24; // small key space: plenty of hits
            if lcg & 1 == 0 {
                // get
                let hit = c.get(&key(1, fp)).is_some();
                let model_hit = model.contains(&fp);
                assert_eq!(hit, model_hit, "step {step}: get({fp})");
                if model_hit {
                    model.retain(|&k| k != fp);
                    model.push(fp);
                }
            } else {
                c.insert(key(1, fp), "d", resp(fp as usize));
                if model.contains(&fp) {
                    model.retain(|&k| k != fp);
                } else if model.len() == cap {
                    model.remove(0); // evict LRU
                }
                model.push(fp);
            }
            assert_eq!(c.stats().len, model.len(), "step {step}");
        }
        // Final state: exactly the model's keys are present. Probing the
        // model keys in LRU order must all hit.
        for fp in model.clone() {
            assert!(c.get(&key(1, fp)).is_some(), "model key {fp} missing");
        }
    }

    #[test]
    fn evict_dataset_drops_only_that_dataset() {
        let c = ResultCache::new(8);
        c.insert(key(1, 1), "a", resp(1));
        c.insert(key(1, 2), "a", resp(2));
        c.insert(key(1, 3), "b", resp(3));
        assert_eq!(c.evict_dataset("a"), 2);
        assert_eq!(c.stats().len, 1);
        assert!(c.get(&key(1, 3)).is_some());
        // Eviction after a dataset drop still works (recency index must
        // have been cleaned up alongside the map).
        let c2 = ResultCache::new(2);
        c2.insert(key(1, 1), "a", resp(1));
        c2.insert(key(1, 2), "b", resp(2));
        c2.evict_dataset("a");
        c2.insert(key(1, 3), "b", resp(3));
        c2.insert(key(1, 4), "b", resp(4));
        assert_eq!(c2.stats().len, 2);
        assert!(c2.get(&key(1, 2)).is_none(), "LRU of survivors evicted");
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let c = ResultCache::new(1);
        c.insert(key(1, 1), "d", resp(1));
        c.insert(key(1, 1), "d", resp(2));
        assert_eq!(c.get(&key(1, 1)), Some(resp(2)));
        assert_eq!(c.stats().len, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ResultCache::new(0);
    }
}
