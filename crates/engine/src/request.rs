//! The typed request/response vocabulary of the engine.
//!
//! A [`Request`] names a catalog dataset and one of the query classes the
//! library implements; a [`Response`] carries plain-data results
//! (`PartialEq`, so batch determinism is directly assertable). Every
//! request has a stable [`Request::fingerprint`] — combined with the
//! dataset's catalog epoch triple it keys the engine's result cache.
//!
//! [`Request::validate`] is the engine's input firewall: every float a
//! request carries must be finite (a single NaN or infinity would
//! silently corrupt the strict `<` comparisons and `total_cmp` sorts in
//! the kernels), and every weighting vector must be non-negative with at
//! least one positive component. Workers reject invalid requests with a
//! typed error before touching any index.

use crate::error::EngineError;
use crate::metrics::StatsSnapshot;
use wqrtq_core::advisor::{PenaltyBreakdown, StrategyKind, WhyNotOptions};

/// Upper bound on any sampling budget a request may carry
/// (`sample_size`, `query_samples` — 2²⁰ samples is far beyond any
/// useful quality/latency trade-off). The samplers allocate and loop
/// proportionally to these values, so an unbounded budget from the
/// wire would let one hostile frame pin a pool worker for hours or
/// abort the process on an impossible allocation.
pub const MAX_SAMPLE_BUDGET: usize = 1 << 20;

/// The weight population a bichromatic reverse top-k request runs
/// against.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightSet {
    /// A population registered in the catalog under this name.
    Named(String),
    /// An inline population (each inner vector is one weighting vector).
    Inline(Vec<Vec<f64>>),
}

/// Which refinement solution a [`Request::WhyNotRefine`] asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RefineStrategy {
    /// Solution 1 — modify the query point (safe region + QP).
    Mqp,
    /// Solution 2 — modify the why-not vectors and `k` (sampling).
    Mwk {
        /// Number of weight samples `|S|`.
        sample_size: usize,
        /// Sampling seed (determinism is seed-driven).
        seed: u64,
    },
    /// Solution 3 — modify `q`, the vectors and `k` together.
    Mqwk {
        /// Number of weight samples `|S|`.
        sample_size: usize,
        /// Number of query-point samples `|Q|`.
        query_samples: usize,
        /// Sampling seed.
        seed: u64,
    },
}

/// One unit of work for the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `TOPk(w)` over a catalog dataset.
    TopK {
        /// Catalog dataset name.
        dataset: String,
        /// The weighting vector.
        weight: Vec<f64>,
        /// How many points.
        k: usize,
    },
    /// Monochromatic reverse top-k (Definition 2): which regions of the
    /// weight space rank `q` in their top-k. Exact intervals in 2-D,
    /// seeded simplex sampling otherwise.
    ReverseTopKMono {
        /// Catalog dataset name.
        dataset: String,
        /// The query point.
        q: Vec<f64>,
        /// The reverse top-k parameter.
        k: usize,
        /// Sample count for the `d > 2` sampled estimate.
        samples: usize,
        /// Sampling seed for the `d > 2` estimate.
        seed: u64,
    },
    /// Bichromatic reverse top-k (Definition 3): which customers of a
    /// weight population rank `q` in their top-k (RTA algorithm).
    ReverseTopKBi {
        /// Catalog dataset name.
        dataset: String,
        /// The customer population.
        weights: WeightSet,
        /// The query point.
        q: Vec<f64>,
        /// The reverse top-k parameter.
        k: usize,
    },
    /// Aspect 1 of a why-not answer: the culprit points that outrank `q`
    /// under a why-not weighting vector. **Deprecated**: prefer
    /// [`Request::WhyNot`], whose plan carries the same explanation for
    /// every why-not vector (this variant remains a thin shim over the
    /// identical core path).
    WhyNotExplain {
        /// Catalog dataset name.
        dataset: String,
        /// The why-not weighting vector.
        weight: Vec<f64>,
        /// The query point.
        q: Vec<f64>,
        /// Maximum culprits returned (the rank stays exact).
        limit: usize,
    },
    /// The unified why-not question (the paper's full deliverable):
    /// explanation plus every requested refinement strategy, verified
    /// and ranked cheapest-first under the configured penalty model.
    /// Served by the core advisor layer; answered with
    /// [`Response::Plan`].
    WhyNot {
        /// Catalog dataset name.
        dataset: String,
        /// The query point.
        q: Vec<f64>,
        /// The original `k`.
        k: usize,
        /// The why-not weighting vectors.
        why_not: Vec<Vec<f64>>,
        /// Penalty coefficients, strategy subset, culprit limit, sample
        /// budgets and seed (validated at [`Request::validate`]).
        options: WhyNotOptions,
    },
    /// Aspect 2, one strategy at a time. **Deprecated**: prefer
    /// [`Request::WhyNot`], which runs every strategy and recommends the
    /// minimum-penalty one. Served as a thin shim over the same advisor
    /// path (bit-identical to the historical behaviour).
    WhyNotRefine {
        /// Catalog dataset name.
        dataset: String,
        /// The query point.
        q: Vec<f64>,
        /// The original `k`.
        k: usize,
        /// The why-not weighting vectors.
        why_not: Vec<Vec<f64>>,
        /// Which solution to run.
        strategy: RefineStrategy,
    },
    /// Appends rows to a dataset's delta overlay (`O(Δ)`, no rebuild).
    Append {
        /// Catalog dataset name.
        dataset: String,
        /// Flat row-major coordinates of the rows to append.
        points: Vec<f64>,
    },
    /// Deletes points (by stable id) from a dataset: base rows are
    /// tombstoned, appended rows drop out of the delta overlay.
    Delete {
        /// Catalog dataset name.
        dataset: String,
        /// Stable point ids to delete.
        ids: Vec<u32>,
    },
    /// Fetches the engine's observability snapshot (per-kind and
    /// per-stage latency histograms, cache/catalog/overlay counters) as
    /// [`Response::Stats`]. Dataset-less and side-effect free: workers
    /// serve it without touching the catalog, the cache, or the metrics
    /// themselves, so the returned snapshot equals what
    /// [`crate::Engine::metrics`] reports at the same quiesced point.
    Stats,
}

/// Validates one weighting vector: finite, non-negative, some positive.
pub(crate) fn check_weight(w: &[f64], field: &'static str) -> Result<(), EngineError> {
    if !w.iter().all(|x| x.is_finite()) {
        return Err(EngineError::NonFiniteInput { field });
    }
    if w.iter().any(|&x| x < 0.0) || !w.iter().any(|&x| x > 0.0) {
        return Err(EngineError::InvalidWeight { field });
    }
    Ok(())
}

/// Validates one coordinate vector: finite throughout.
pub(crate) fn check_finite(v: &[f64], field: &'static str) -> Result<(), EngineError> {
    if v.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(EngineError::NonFiniteInput { field })
    }
}

/// Validates one sampling budget against [`MAX_SAMPLE_BUDGET`].
pub(crate) fn check_budget(value: usize, field: &'static str) -> Result<(), EngineError> {
    if value > MAX_SAMPLE_BUDGET {
        return Err(EngineError::SampleBudgetTooLarge {
            field,
            max: MAX_SAMPLE_BUDGET,
        });
    }
    Ok(())
}

/// Validates advisor options at the request boundary: the penalty-model
/// coefficients must be finite, non-negative and satisfy the convexity
/// constraints of Eqs. (4)/(5), the strategy set must be non-empty, and
/// the sampling budgets must stay under [`MAX_SAMPLE_BUDGET`]. (The
/// `WhyNotOptions` struct itself is deliberately plain data so it can
/// travel through wire codecs unvalidated; this is where hostile or
/// malformed values are stopped.)
pub(crate) fn check_options(options: &WhyNotOptions) -> Result<(), EngineError> {
    let t = &options.tol;
    let coefficients = [t.alpha, t.beta, t.gamma, t.lambda];
    if !coefficients.iter().all(|c| c.is_finite()) {
        return Err(EngineError::NonFiniteInput {
            field: "penalty tolerances",
        });
    }
    if coefficients.iter().any(|&c| c < 0.0) {
        return Err(EngineError::InvalidTolerances {
            reason: "coefficients must be non-negative",
        });
    }
    if (t.alpha + t.beta - 1.0).abs() > 1e-6 {
        return Err(EngineError::InvalidTolerances {
            reason: "alpha + beta must equal 1",
        });
    }
    if (t.gamma + t.lambda - 1.0).abs() > 1e-6 {
        return Err(EngineError::InvalidTolerances {
            reason: "gamma + lambda must equal 1",
        });
    }
    if options.strategies.is_empty() {
        return Err(EngineError::EmptyStrategySet);
    }
    check_budget(options.sample_size, "sample size")?;
    check_budget(options.query_samples, "query samples")?;
    Ok(())
}

/// Request kinds, for metrics bucketing and the wire vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// [`Request::TopK`].
    TopK,
    /// [`Request::ReverseTopKMono`].
    ReverseTopKMono,
    /// [`Request::ReverseTopKBi`].
    ReverseTopKBi,
    /// [`Request::WhyNotExplain`].
    WhyNotExplain,
    /// [`Request::WhyNotRefine`].
    WhyNotRefine,
    /// [`Request::WhyNot`].
    WhyNot,
    /// [`Request::Append`].
    Append,
    /// [`Request::Delete`].
    Delete,
    /// [`Request::Stats`].
    Stats,
}

/// The **source-of-truth vocabulary table**: every request kind with its
/// display name and its stable wire-protocol body tag. The metrics
/// ordering ([`RequestKind::ALL`] and the metrics index), the display
/// names ([`RequestKind::name`]) and the server frame codec
/// ([`RequestKind::wire_tag`] / [`RequestKind::from_wire_tag`]) all
/// derive from this single table, so the engine and wire vocabularies
/// cannot drift — a conformance test in `wqrtq-server` fails if a tag
/// is reused, renumbered, or a kind is missing from the codec.
///
/// Wire tags are **append-only**: tags 1–7 predate protocol v2 and must
/// never be renumbered (v1 clients depend on them); new kinds take the
/// next free tag regardless of their position in this table.
pub const REQUEST_KIND_TABLE: [(RequestKind, &str, u8); 9] = [
    (RequestKind::TopK, "topk", 1),
    (RequestKind::ReverseTopKMono, "rtopk-mono", 2),
    (RequestKind::ReverseTopKBi, "rtopk-bi", 3),
    (RequestKind::WhyNotExplain, "whynot-explain", 4),
    (RequestKind::WhyNotRefine, "whynot-refine", 5),
    (RequestKind::WhyNot, "whynot-plan", 8),
    (RequestKind::Append, "append", 6),
    (RequestKind::Delete, "delete", 7),
    (RequestKind::Stats, "stats", 9),
];

impl RequestKind {
    /// All kinds, in [`REQUEST_KIND_TABLE`] order (metrics table order).
    pub const ALL: [RequestKind; REQUEST_KIND_TABLE.len()] = {
        let mut all = [RequestKind::TopK; REQUEST_KIND_TABLE.len()];
        let mut i = 0;
        while i < REQUEST_KIND_TABLE.len() {
            all[i] = REQUEST_KIND_TABLE[i].0;
            i += 1;
        }
        all
    };

    /// Whether this kind mutates its dataset (served outside the result
    /// cache and without resolving an index snapshot).
    pub fn is_mutation(self) -> bool {
        matches!(self, RequestKind::Append | RequestKind::Delete)
    }

    fn row(self) -> &'static (RequestKind, &'static str, u8) {
        REQUEST_KIND_TABLE
            .iter()
            .find(|(kind, _, _)| *kind == self)
            // lint: allow(no-panic) — table completeness is asserted by
            // `kind_table_is_the_single_source_of_truth` and the
            // drift lint.
            .expect("every kind has a table row")
    }

    /// Display name (from [`REQUEST_KIND_TABLE`]).
    pub fn name(self) -> &'static str {
        self.row().1
    }

    /// The stable wire-protocol body tag of this kind (from
    /// [`REQUEST_KIND_TABLE`]); the server's request codec writes and
    /// dispatches on exactly this byte.
    pub fn wire_tag(self) -> u8 {
        self.row().2
    }

    /// Resolves a wire body tag back to its kind (`None` for unknown
    /// tags — a protocol error at the codec layer).
    pub fn from_wire_tag(tag: u8) -> Option<RequestKind> {
        REQUEST_KIND_TABLE
            .iter()
            .find(|(_, _, t)| *t == tag)
            .map(|(kind, _, _)| *kind)
    }

    pub(crate) fn index(self) -> usize {
        REQUEST_KIND_TABLE
            .iter()
            .position(|(kind, _, _)| *kind == self)
            // lint: allow(no-panic) — table completeness is asserted by
            // `kind_table_is_the_single_source_of_truth` and the
            // drift lint.
            .expect("every kind has a table row")
    }
}

impl Request {
    /// The kind bucket of this request.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::TopK { .. } => RequestKind::TopK,
            Request::ReverseTopKMono { .. } => RequestKind::ReverseTopKMono,
            Request::ReverseTopKBi { .. } => RequestKind::ReverseTopKBi,
            Request::WhyNotExplain { .. } => RequestKind::WhyNotExplain,
            Request::WhyNotRefine { .. } => RequestKind::WhyNotRefine,
            Request::WhyNot { .. } => RequestKind::WhyNot,
            Request::Append { .. } => RequestKind::Append,
            Request::Delete { .. } => RequestKind::Delete,
            Request::Stats => RequestKind::Stats,
        }
    }

    /// The catalog dataset this request runs against (empty for the
    /// dataset-less [`Request::Stats`]).
    pub fn dataset(&self) -> &str {
        match self {
            Request::TopK { dataset, .. }
            | Request::ReverseTopKMono { dataset, .. }
            | Request::ReverseTopKBi { dataset, .. }
            | Request::WhyNotExplain { dataset, .. }
            | Request::WhyNotRefine { dataset, .. }
            | Request::WhyNot { dataset, .. }
            | Request::Append { dataset, .. }
            | Request::Delete { dataset, .. } => dataset,
            Request::Stats => "",
        }
    }

    /// Validates the request's numeric payload before execution: every
    /// coordinate finite, every weighting vector non-negative with a
    /// positive component.
    ///
    /// # Errors
    /// [`EngineError::NonFiniteInput`] / [`EngineError::InvalidWeight`].
    pub fn validate(&self) -> Result<(), EngineError> {
        match self {
            Request::TopK { weight, .. } => check_weight(weight, "weight"),
            Request::ReverseTopKMono { q, samples, .. } => {
                check_finite(q, "query point")?;
                check_budget(*samples, "samples")
            }
            Request::ReverseTopKBi { weights, q, .. } => {
                check_finite(q, "query point")?;
                if let WeightSet::Inline(ws) = weights {
                    for w in ws {
                        check_weight(w, "inline weight set")?;
                    }
                }
                Ok(())
            }
            Request::WhyNotExplain { weight, q, .. } => {
                check_weight(weight, "weight")?;
                check_finite(q, "query point")
            }
            Request::WhyNotRefine {
                q,
                why_not,
                strategy,
                ..
            } => {
                check_finite(q, "query point")?;
                for w in why_not {
                    check_weight(w, "why-not vector")?;
                }
                match strategy {
                    RefineStrategy::Mqp => Ok(()),
                    RefineStrategy::Mwk { sample_size, .. } => {
                        check_budget(*sample_size, "sample size")
                    }
                    RefineStrategy::Mqwk {
                        sample_size,
                        query_samples,
                        ..
                    } => {
                        check_budget(*sample_size, "sample size")?;
                        check_budget(*query_samples, "query samples")
                    }
                }
            }
            Request::WhyNot {
                q,
                why_not,
                options,
                ..
            } => {
                check_finite(q, "query point")?;
                for w in why_not {
                    check_weight(w, "why-not vector")?;
                }
                check_options(options)
            }
            Request::Append { points, .. } => check_finite(points, "appended points"),
            Request::Delete { .. } => Ok(()),
            Request::Stats => Ok(()),
        }
    }

    /// A stable 64-bit content fingerprint (FNV-1a over every field,
    /// floats by bit pattern). Identical requests always fingerprint
    /// identically across runs; combined with the dataset epoch this keys
    /// the result cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        match self {
            Request::TopK { dataset, weight, k } => {
                h.write_u64(1);
                h.write_str(dataset);
                h.write_floats(weight);
                h.write_u64(*k as u64);
            }
            Request::ReverseTopKMono {
                dataset,
                q,
                k,
                samples,
                seed,
            } => {
                h.write_u64(2);
                h.write_str(dataset);
                h.write_floats(q);
                h.write_u64(*k as u64);
                h.write_u64(*samples as u64);
                h.write_u64(*seed);
            }
            Request::ReverseTopKBi {
                dataset,
                weights,
                q,
                k,
            } => {
                h.write_u64(3);
                h.write_str(dataset);
                match weights {
                    WeightSet::Named(name) => {
                        h.write_u64(1);
                        h.write_str(name);
                    }
                    WeightSet::Inline(ws) => {
                        h.write_u64(2);
                        h.write_u64(ws.len() as u64);
                        for w in ws {
                            h.write_floats(w);
                        }
                    }
                }
                h.write_floats(q);
                h.write_u64(*k as u64);
            }
            Request::WhyNotExplain {
                dataset,
                weight,
                q,
                limit,
            } => {
                h.write_u64(4);
                h.write_str(dataset);
                h.write_floats(weight);
                h.write_floats(q);
                h.write_u64(*limit as u64);
            }
            Request::WhyNotRefine {
                dataset,
                q,
                k,
                why_not,
                strategy,
            } => {
                h.write_u64(5);
                h.write_str(dataset);
                h.write_floats(q);
                h.write_u64(*k as u64);
                h.write_u64(why_not.len() as u64);
                for w in why_not {
                    h.write_floats(w);
                }
                match strategy {
                    RefineStrategy::Mqp => h.write_u64(1),
                    RefineStrategy::Mwk { sample_size, seed } => {
                        h.write_u64(2);
                        h.write_u64(*sample_size as u64);
                        h.write_u64(*seed);
                    }
                    RefineStrategy::Mqwk {
                        sample_size,
                        query_samples,
                        seed,
                    } => {
                        h.write_u64(3);
                        h.write_u64(*sample_size as u64);
                        h.write_u64(*query_samples as u64);
                        h.write_u64(*seed);
                    }
                }
            }
            Request::WhyNot {
                dataset,
                q,
                k,
                why_not,
                options,
            } => {
                h.write_u64(8);
                h.write_str(dataset);
                h.write_floats(q);
                h.write_u64(*k as u64);
                h.write_u64(why_not.len() as u64);
                for w in why_not {
                    h.write_floats(w);
                }
                // Every option influences the plan, so every option is
                // part of the cache identity.
                h.write_u64(options.tol.alpha.to_bits());
                h.write_u64(options.tol.beta.to_bits());
                h.write_u64(options.tol.gamma.to_bits());
                h.write_u64(options.tol.lambda.to_bits());
                h.write_u64(options.strategies.len() as u64);
                for s in &options.strategies {
                    h.write_u64(u64::from(s.tag()));
                }
                h.write_u64(options.culprit_limit as u64);
                h.write_u64(options.sample_size as u64);
                h.write_u64(options.query_samples as u64);
                h.write_u64(options.seed);
                h.write_u64(u64::from(options.exact_2d));
            }
            Request::Append { dataset, points } => {
                h.write_u64(6);
                h.write_str(dataset);
                h.write_floats(points);
            }
            Request::Delete { dataset, ids } => {
                h.write_u64(7);
                h.write_str(dataset);
                h.write_u64(ids.len() as u64);
                for id in ids {
                    h.write_u64(*id as u64);
                }
            }
            Request::Stats => {
                h.write_u64(9);
            }
        }
        h.finish()
    }
}

/// A refinement result in plain data (mirrors the core framework's
/// `RefinedQuery`/`WqrtqAnswer`, with `PartialEq` for determinism tests).
#[derive(Clone, Debug, PartialEq)]
pub struct Refinement {
    /// The refined query point, when the strategy moved it.
    pub q_prime: Option<Vec<f64>>,
    /// The refined why-not vectors, when the strategy moved them.
    pub why_not: Option<Vec<Vec<f64>>>,
    /// The refined `k`, when the strategy changed it.
    pub k: Option<usize>,
    /// The penalty of the refinement (Eq. 1, 4 or 5).
    pub penalty: f64,
}

/// One why-not explanation in plain data (mirrors the core
/// `Explanation`, with `PartialEq` for determinism tests).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanExplanation {
    /// Actual rank of `q` under the why-not vector.
    pub rank: usize,
    /// Points outranking `q`, ascending by score, as `(id, score)`.
    pub culprits: Vec<(u32, f64)>,
    /// Whether the culprit list hit the configured limit.
    pub truncated: bool,
}

/// One executed strategy of a [`Plan`] (mirrors the core advisor's
/// `RankedStep` in plain data).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStep {
    /// Which strategy produced this refinement.
    pub strategy: StrategyKind,
    /// The refinement and its penalty.
    pub refinement: Refinement,
    /// The penalty split into its Eq. (1)/(4)/(5) terms.
    pub breakdown: PenaltyBreakdown,
    /// Whether the core `verify` confirmed the refinement fixes the
    /// why-not question.
    pub verified: bool,
    /// Whether the exact 2-D path answered this step (no sampling).
    pub exact: bool,
    /// Weight samples actually drawn (zero for MQP and exact paths).
    pub sample_size: usize,
    /// Query-point samples actually drawn (zero outside MQWK).
    pub query_samples: usize,
}

/// The ranked answer to a [`Request::WhyNot`]: explanations plus every
/// executed strategy, cheapest-first. `steps[0]` is the recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// One explanation per why-not vector, in input order.
    pub explanations: Vec<PlanExplanation>,
    /// `k′max` (Lemma 4) — the `Δk` normaliser of the penalty model.
    pub k_max: usize,
    /// Executed strategies, ascending by penalty.
    pub steps: Vec<PlanStep>,
}

impl Plan {
    /// The minimum-penalty refinement — the advisor's recommendation.
    pub fn recommended(&self) -> &PlanStep {
        &self.steps[0]
    }
}

/// A progressive partial result of an in-flight [`Request::WhyNot`],
/// emitted as each advisor step completes (explanations first, then
/// strategies in execution order — *before* the final plan ranks them).
/// Serving layers forward these so pipelined clients can act on early
/// results; the final [`Response::Plan`] remains the authoritative
/// answer (cache hits skip the partials entirely).
#[derive(Clone, Debug, PartialEq)]
pub enum PlanDelta {
    /// The explanation for why-not vector `index` is ready.
    Explained {
        /// Index into the request's why-not set.
        index: usize,
        /// The explanation (culprit-limited).
        explanation: PlanExplanation,
    },
    /// One refinement strategy finished.
    Step(PlanStep),
}

/// The result of one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `TOPk(w)` as `(point id, score)` in ascending score order.
    TopK(Vec<(u32, f64)>),
    /// Exact 2-D monochromatic result: qualifying `(lo, hi)` intervals of
    /// the first weight component.
    MonoExact(Vec<(f64, f64)>),
    /// Sampled monochromatic estimate for `d > 2`.
    MonoSampled {
        /// Estimated fraction of the weight simplex in `MRTOPk(q)`.
        volume_fraction: f64,
        /// Samples drawn.
        samples: usize,
    },
    /// Qualifying customer indices (into the request's population).
    ReverseTopKBi(Vec<usize>),
    /// Why-not explanation: actual rank plus culprit `(id, score)` pairs.
    Explanation {
        /// Actual rank of `q` under the vector.
        rank: usize,
        /// Points outranking `q`, ascending by score.
        culprits: Vec<(u32, f64)>,
        /// Whether the culprit list hit the request limit.
        truncated: bool,
    },
    /// A minimum-penalty refinement.
    Refinement(Refinement),
    /// The ranked why-not plan of a [`Request::WhyNot`].
    Plan(Plan),
    /// A mutation was applied; the dataset now holds this many live
    /// points.
    Mutated {
        /// Live points after the mutation.
        live_len: usize,
    },
    /// The observability snapshot answering a [`Request::Stats`]
    /// (boxed: the histogram-bearing snapshot dwarfs every other
    /// variant).
    Stats(Box<StatsSnapshot>),
    /// The request failed; the batch continues.
    Error(String),
}

impl Response {
    /// Whether this response is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write_byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_byte(b);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.write_byte(b);
        }
    }

    fn write_floats(&mut self, xs: &[f64]) {
        self.write_u64(xs.len() as u64);
        for x in xs {
            self.write_u64(x.to_bits());
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk(dataset: &str, w: &[f64], k: usize) -> Request {
        Request::TopK {
            dataset: dataset.into(),
            weight: w.to_vec(),
            k,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let a = topk("products", &[0.3, 0.7], 5);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(
            a.fingerprint(),
            topk("products", &[0.3, 0.7], 6).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            topk("products", &[0.7, 0.3], 5).fingerprint()
        );
        assert_ne!(a.fingerprint(), topk("other", &[0.3, 0.7], 5).fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_kinds_with_same_payload() {
        let explain = Request::WhyNotExplain {
            dataset: "d".into(),
            weight: vec![0.5, 0.5],
            q: vec![1.0, 2.0],
            limit: 3,
        };
        let mono = Request::ReverseTopKMono {
            dataset: "d".into(),
            q: vec![1.0, 2.0],
            k: 3,
            samples: 0,
            seed: 0,
        };
        assert_ne!(explain.fingerprint(), mono.fingerprint());
    }

    #[test]
    fn named_and_inline_weight_sets_fingerprint_differently() {
        let named = Request::ReverseTopKBi {
            dataset: "d".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![1.0],
            k: 2,
        };
        let inline = Request::ReverseTopKBi {
            dataset: "d".into(),
            weights: WeightSet::Inline(vec![vec![1.0]]),
            q: vec![1.0],
            k: 2,
        };
        assert_ne!(named.fingerprint(), inline.fingerprint());
    }

    #[test]
    fn kind_and_dataset_accessors() {
        let r = topk("p", &[1.0], 1);
        assert_eq!(r.kind(), RequestKind::TopK);
        assert_eq!(r.dataset(), "p");
        assert_eq!(r.kind().name(), "topk");
        assert_eq!(RequestKind::ALL.len(), 9);
        assert_eq!(Request::Stats.kind(), RequestKind::Stats);
        assert_eq!(Request::Stats.dataset(), "");
        assert!(Request::Stats.validate().is_ok());
        assert!(!RequestKind::Stats.is_mutation());
        assert_eq!(Request::Stats.fingerprint(), Request::Stats.fingerprint());
        for (i, k) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    fn why_not_request(options: WhyNotOptions) -> Request {
        Request::WhyNot {
            dataset: "p".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![0.1, 0.9], vec![0.9, 0.1]],
            options,
        }
    }

    #[test]
    fn kind_table_is_the_single_source_of_truth() {
        // Wire tags are unique and round-trip through the lookup.
        for (kind, name, tag) in REQUEST_KIND_TABLE {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.wire_tag(), tag);
            assert_eq!(RequestKind::from_wire_tag(tag), Some(kind));
        }
        let mut tags: Vec<u8> = REQUEST_KIND_TABLE.iter().map(|(_, _, t)| *t).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), REQUEST_KIND_TABLE.len(), "wire tags collide");
        assert_eq!(RequestKind::from_wire_tag(0), None);
        assert_eq!(RequestKind::from_wire_tag(0xff), None);
    }

    #[test]
    fn why_not_options_are_validated_at_the_boundary() {
        use wqrtq_core::penalty::Tolerances;
        let ok = why_not_request(WhyNotOptions::default());
        assert!(ok.validate().is_ok());

        let nan = why_not_request(WhyNotOptions {
            tol: Tolerances {
                alpha: f64::NAN,
                beta: 0.5,
                gamma: 0.5,
                lambda: 0.5,
            },
            ..WhyNotOptions::default()
        });
        assert_eq!(
            nan.validate(),
            Err(EngineError::NonFiniteInput {
                field: "penalty tolerances"
            })
        );

        let negative = why_not_request(WhyNotOptions {
            tol: Tolerances {
                alpha: -0.5,
                beta: 1.5,
                gamma: 0.5,
                lambda: 0.5,
            },
            ..WhyNotOptions::default()
        });
        assert!(matches!(
            negative.validate(),
            Err(EngineError::InvalidTolerances { .. })
        ));

        let lopsided = why_not_request(WhyNotOptions {
            tol: Tolerances {
                alpha: 0.5,
                beta: 0.6,
                gamma: 0.5,
                lambda: 0.5,
            },
            ..WhyNotOptions::default()
        });
        assert_eq!(
            lopsided.validate(),
            Err(EngineError::InvalidTolerances {
                reason: "alpha + beta must equal 1"
            })
        );

        let no_strategies = why_not_request(WhyNotOptions {
            strategies: Vec::new(),
            ..WhyNotOptions::default()
        });
        assert_eq!(no_strategies.validate(), Err(EngineError::EmptyStrategySet));

        let bad_vector = Request::WhyNot {
            dataset: "p".into(),
            q: vec![4.0, 4.0],
            k: 3,
            why_not: vec![vec![f64::NAN, 0.9]],
            options: WhyNotOptions::default(),
        };
        assert!(bad_vector.validate().is_err());
    }

    #[test]
    fn why_not_options_are_part_of_the_cache_identity() {
        let base = why_not_request(WhyNotOptions::default());
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let seeded = why_not_request(WhyNotOptions {
            seed: 1,
            ..WhyNotOptions::default()
        });
        assert_ne!(base.fingerprint(), seeded.fingerprint());
        let subset = why_not_request(WhyNotOptions {
            strategies: vec![StrategyKind::Mqp],
            ..WhyNotOptions::default()
        });
        assert_ne!(base.fingerprint(), subset.fingerprint());
        let sampled = why_not_request(WhyNotOptions {
            exact_2d: false,
            ..WhyNotOptions::default()
        });
        assert_ne!(base.fingerprint(), sampled.fingerprint());
    }

    #[test]
    fn error_predicate() {
        assert!(Response::Error("x".into()).is_error());
        assert!(!Response::TopK(vec![]).is_error());
    }
}
