//! The typed request/response vocabulary of the engine.
//!
//! A [`Request`] names a catalog dataset and one of the query classes the
//! library implements; a [`Response`] carries plain-data results
//! (`PartialEq`, so batch determinism is directly assertable). Every
//! request has a stable [`Request::fingerprint`] — combined with the
//! dataset's catalog epoch triple it keys the engine's result cache.
//!
//! [`Request::validate`] is the engine's input firewall: every float a
//! request carries must be finite (a single NaN or infinity would
//! silently corrupt the strict `<` comparisons and `total_cmp` sorts in
//! the kernels), and every weighting vector must be non-negative with at
//! least one positive component. Workers reject invalid requests with a
//! typed error before touching any index.

use crate::error::EngineError;

/// The weight population a bichromatic reverse top-k request runs
/// against.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightSet {
    /// A population registered in the catalog under this name.
    Named(String),
    /// An inline population (each inner vector is one weighting vector).
    Inline(Vec<Vec<f64>>),
}

/// Which refinement solution a [`Request::WhyNotRefine`] asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RefineStrategy {
    /// Solution 1 — modify the query point (safe region + QP).
    Mqp,
    /// Solution 2 — modify the why-not vectors and `k` (sampling).
    Mwk {
        /// Number of weight samples `|S|`.
        sample_size: usize,
        /// Sampling seed (determinism is seed-driven).
        seed: u64,
    },
    /// Solution 3 — modify `q`, the vectors and `k` together.
    Mqwk {
        /// Number of weight samples `|S|`.
        sample_size: usize,
        /// Number of query-point samples `|Q|`.
        query_samples: usize,
        /// Sampling seed.
        seed: u64,
    },
}

/// One unit of work for the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `TOPk(w)` over a catalog dataset.
    TopK {
        /// Catalog dataset name.
        dataset: String,
        /// The weighting vector.
        weight: Vec<f64>,
        /// How many points.
        k: usize,
    },
    /// Monochromatic reverse top-k (Definition 2): which regions of the
    /// weight space rank `q` in their top-k. Exact intervals in 2-D,
    /// seeded simplex sampling otherwise.
    ReverseTopKMono {
        /// Catalog dataset name.
        dataset: String,
        /// The query point.
        q: Vec<f64>,
        /// The reverse top-k parameter.
        k: usize,
        /// Sample count for the `d > 2` sampled estimate.
        samples: usize,
        /// Sampling seed for the `d > 2` estimate.
        seed: u64,
    },
    /// Bichromatic reverse top-k (Definition 3): which customers of a
    /// weight population rank `q` in their top-k (RTA algorithm).
    ReverseTopKBi {
        /// Catalog dataset name.
        dataset: String,
        /// The customer population.
        weights: WeightSet,
        /// The query point.
        q: Vec<f64>,
        /// The reverse top-k parameter.
        k: usize,
    },
    /// Aspect 1 of a why-not answer: the culprit points that outrank `q`
    /// under a why-not weighting vector.
    WhyNotExplain {
        /// Catalog dataset name.
        dataset: String,
        /// The why-not weighting vector.
        weight: Vec<f64>,
        /// The query point.
        q: Vec<f64>,
        /// Maximum culprits returned (the rank stays exact).
        limit: usize,
    },
    /// Aspect 2: refine the query with minimum penalty so the why-not
    /// vectors appear in the result.
    WhyNotRefine {
        /// Catalog dataset name.
        dataset: String,
        /// The query point.
        q: Vec<f64>,
        /// The original `k`.
        k: usize,
        /// The why-not weighting vectors.
        why_not: Vec<Vec<f64>>,
        /// Which solution to run.
        strategy: RefineStrategy,
    },
    /// Appends rows to a dataset's delta overlay (`O(Δ)`, no rebuild).
    Append {
        /// Catalog dataset name.
        dataset: String,
        /// Flat row-major coordinates of the rows to append.
        points: Vec<f64>,
    },
    /// Deletes points (by stable id) from a dataset: base rows are
    /// tombstoned, appended rows drop out of the delta overlay.
    Delete {
        /// Catalog dataset name.
        dataset: String,
        /// Stable point ids to delete.
        ids: Vec<u32>,
    },
}

/// Validates one weighting vector: finite, non-negative, some positive.
pub(crate) fn check_weight(w: &[f64], field: &'static str) -> Result<(), EngineError> {
    if !w.iter().all(|x| x.is_finite()) {
        return Err(EngineError::NonFiniteInput { field });
    }
    if w.iter().any(|&x| x < 0.0) || !w.iter().any(|&x| x > 0.0) {
        return Err(EngineError::InvalidWeight { field });
    }
    Ok(())
}

/// Validates one coordinate vector: finite throughout.
pub(crate) fn check_finite(v: &[f64], field: &'static str) -> Result<(), EngineError> {
    if v.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(EngineError::NonFiniteInput { field })
    }
}

/// Request kinds, for metrics bucketing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// [`Request::TopK`].
    TopK,
    /// [`Request::ReverseTopKMono`].
    ReverseTopKMono,
    /// [`Request::ReverseTopKBi`].
    ReverseTopKBi,
    /// [`Request::WhyNotExplain`].
    WhyNotExplain,
    /// [`Request::WhyNotRefine`].
    WhyNotRefine,
    /// [`Request::Append`].
    Append,
    /// [`Request::Delete`].
    Delete,
}

impl RequestKind {
    /// All kinds, in declaration order (metrics table order).
    pub const ALL: [RequestKind; 7] = [
        RequestKind::TopK,
        RequestKind::ReverseTopKMono,
        RequestKind::ReverseTopKBi,
        RequestKind::WhyNotExplain,
        RequestKind::WhyNotRefine,
        RequestKind::Append,
        RequestKind::Delete,
    ];

    /// Whether this kind mutates its dataset (served outside the result
    /// cache and without resolving an index snapshot).
    pub fn is_mutation(self) -> bool {
        matches!(self, RequestKind::Append | RequestKind::Delete)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::TopK => "topk",
            RequestKind::ReverseTopKMono => "rtopk-mono",
            RequestKind::ReverseTopKBi => "rtopk-bi",
            RequestKind::WhyNotExplain => "whynot-explain",
            RequestKind::WhyNotRefine => "whynot-refine",
            RequestKind::Append => "append",
            RequestKind::Delete => "delete",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            RequestKind::TopK => 0,
            RequestKind::ReverseTopKMono => 1,
            RequestKind::ReverseTopKBi => 2,
            RequestKind::WhyNotExplain => 3,
            RequestKind::WhyNotRefine => 4,
            RequestKind::Append => 5,
            RequestKind::Delete => 6,
        }
    }
}

impl Request {
    /// The kind bucket of this request.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::TopK { .. } => RequestKind::TopK,
            Request::ReverseTopKMono { .. } => RequestKind::ReverseTopKMono,
            Request::ReverseTopKBi { .. } => RequestKind::ReverseTopKBi,
            Request::WhyNotExplain { .. } => RequestKind::WhyNotExplain,
            Request::WhyNotRefine { .. } => RequestKind::WhyNotRefine,
            Request::Append { .. } => RequestKind::Append,
            Request::Delete { .. } => RequestKind::Delete,
        }
    }

    /// The catalog dataset this request runs against.
    pub fn dataset(&self) -> &str {
        match self {
            Request::TopK { dataset, .. }
            | Request::ReverseTopKMono { dataset, .. }
            | Request::ReverseTopKBi { dataset, .. }
            | Request::WhyNotExplain { dataset, .. }
            | Request::WhyNotRefine { dataset, .. }
            | Request::Append { dataset, .. }
            | Request::Delete { dataset, .. } => dataset,
        }
    }

    /// Validates the request's numeric payload before execution: every
    /// coordinate finite, every weighting vector non-negative with a
    /// positive component.
    ///
    /// # Errors
    /// [`EngineError::NonFiniteInput`] / [`EngineError::InvalidWeight`].
    pub fn validate(&self) -> Result<(), EngineError> {
        match self {
            Request::TopK { weight, .. } => check_weight(weight, "weight"),
            Request::ReverseTopKMono { q, .. } => check_finite(q, "query point"),
            Request::ReverseTopKBi { weights, q, .. } => {
                check_finite(q, "query point")?;
                if let WeightSet::Inline(ws) = weights {
                    for w in ws {
                        check_weight(w, "inline weight set")?;
                    }
                }
                Ok(())
            }
            Request::WhyNotExplain { weight, q, .. } => {
                check_weight(weight, "weight")?;
                check_finite(q, "query point")
            }
            Request::WhyNotRefine { q, why_not, .. } => {
                check_finite(q, "query point")?;
                for w in why_not {
                    check_weight(w, "why-not vector")?;
                }
                Ok(())
            }
            Request::Append { points, .. } => check_finite(points, "appended points"),
            Request::Delete { .. } => Ok(()),
        }
    }

    /// A stable 64-bit content fingerprint (FNV-1a over every field,
    /// floats by bit pattern). Identical requests always fingerprint
    /// identically across runs; combined with the dataset epoch this keys
    /// the result cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        match self {
            Request::TopK { dataset, weight, k } => {
                h.write_u64(1);
                h.write_str(dataset);
                h.write_floats(weight);
                h.write_u64(*k as u64);
            }
            Request::ReverseTopKMono {
                dataset,
                q,
                k,
                samples,
                seed,
            } => {
                h.write_u64(2);
                h.write_str(dataset);
                h.write_floats(q);
                h.write_u64(*k as u64);
                h.write_u64(*samples as u64);
                h.write_u64(*seed);
            }
            Request::ReverseTopKBi {
                dataset,
                weights,
                q,
                k,
            } => {
                h.write_u64(3);
                h.write_str(dataset);
                match weights {
                    WeightSet::Named(name) => {
                        h.write_u64(1);
                        h.write_str(name);
                    }
                    WeightSet::Inline(ws) => {
                        h.write_u64(2);
                        h.write_u64(ws.len() as u64);
                        for w in ws {
                            h.write_floats(w);
                        }
                    }
                }
                h.write_floats(q);
                h.write_u64(*k as u64);
            }
            Request::WhyNotExplain {
                dataset,
                weight,
                q,
                limit,
            } => {
                h.write_u64(4);
                h.write_str(dataset);
                h.write_floats(weight);
                h.write_floats(q);
                h.write_u64(*limit as u64);
            }
            Request::WhyNotRefine {
                dataset,
                q,
                k,
                why_not,
                strategy,
            } => {
                h.write_u64(5);
                h.write_str(dataset);
                h.write_floats(q);
                h.write_u64(*k as u64);
                h.write_u64(why_not.len() as u64);
                for w in why_not {
                    h.write_floats(w);
                }
                match strategy {
                    RefineStrategy::Mqp => h.write_u64(1),
                    RefineStrategy::Mwk { sample_size, seed } => {
                        h.write_u64(2);
                        h.write_u64(*sample_size as u64);
                        h.write_u64(*seed);
                    }
                    RefineStrategy::Mqwk {
                        sample_size,
                        query_samples,
                        seed,
                    } => {
                        h.write_u64(3);
                        h.write_u64(*sample_size as u64);
                        h.write_u64(*query_samples as u64);
                        h.write_u64(*seed);
                    }
                }
            }
            Request::Append { dataset, points } => {
                h.write_u64(6);
                h.write_str(dataset);
                h.write_floats(points);
            }
            Request::Delete { dataset, ids } => {
                h.write_u64(7);
                h.write_str(dataset);
                h.write_u64(ids.len() as u64);
                for id in ids {
                    h.write_u64(*id as u64);
                }
            }
        }
        h.finish()
    }
}

/// A refinement result in plain data (mirrors the core framework's
/// `RefinedQuery`/`WqrtqAnswer`, with `PartialEq` for determinism tests).
#[derive(Clone, Debug, PartialEq)]
pub struct Refinement {
    /// The refined query point, when the strategy moved it.
    pub q_prime: Option<Vec<f64>>,
    /// The refined why-not vectors, when the strategy moved them.
    pub why_not: Option<Vec<Vec<f64>>>,
    /// The refined `k`, when the strategy changed it.
    pub k: Option<usize>,
    /// The penalty of the refinement (Eq. 1, 4 or 5).
    pub penalty: f64,
}

/// The result of one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `TOPk(w)` as `(point id, score)` in ascending score order.
    TopK(Vec<(u32, f64)>),
    /// Exact 2-D monochromatic result: qualifying `(lo, hi)` intervals of
    /// the first weight component.
    MonoExact(Vec<(f64, f64)>),
    /// Sampled monochromatic estimate for `d > 2`.
    MonoSampled {
        /// Estimated fraction of the weight simplex in `MRTOPk(q)`.
        volume_fraction: f64,
        /// Samples drawn.
        samples: usize,
    },
    /// Qualifying customer indices (into the request's population).
    ReverseTopKBi(Vec<usize>),
    /// Why-not explanation: actual rank plus culprit `(id, score)` pairs.
    Explanation {
        /// Actual rank of `q` under the vector.
        rank: usize,
        /// Points outranking `q`, ascending by score.
        culprits: Vec<(u32, f64)>,
        /// Whether the culprit list hit the request limit.
        truncated: bool,
    },
    /// A minimum-penalty refinement.
    Refinement(Refinement),
    /// A mutation was applied; the dataset now holds this many live
    /// points.
    Mutated {
        /// Live points after the mutation.
        live_len: usize,
    },
    /// The request failed; the batch continues.
    Error(String),
}

impl Response {
    /// Whether this response is an error.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error(_))
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write_byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_byte(b);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.write_byte(b);
        }
    }

    fn write_floats(&mut self, xs: &[f64]) {
        self.write_u64(xs.len() as u64);
        for x in xs {
            self.write_u64(x.to_bits());
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk(dataset: &str, w: &[f64], k: usize) -> Request {
        Request::TopK {
            dataset: dataset.into(),
            weight: w.to_vec(),
            k,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let a = topk("products", &[0.3, 0.7], 5);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(
            a.fingerprint(),
            topk("products", &[0.3, 0.7], 6).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            topk("products", &[0.7, 0.3], 5).fingerprint()
        );
        assert_ne!(a.fingerprint(), topk("other", &[0.3, 0.7], 5).fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_kinds_with_same_payload() {
        let explain = Request::WhyNotExplain {
            dataset: "d".into(),
            weight: vec![0.5, 0.5],
            q: vec![1.0, 2.0],
            limit: 3,
        };
        let mono = Request::ReverseTopKMono {
            dataset: "d".into(),
            q: vec![1.0, 2.0],
            k: 3,
            samples: 0,
            seed: 0,
        };
        assert_ne!(explain.fingerprint(), mono.fingerprint());
    }

    #[test]
    fn named_and_inline_weight_sets_fingerprint_differently() {
        let named = Request::ReverseTopKBi {
            dataset: "d".into(),
            weights: WeightSet::Named("customers".into()),
            q: vec![1.0],
            k: 2,
        };
        let inline = Request::ReverseTopKBi {
            dataset: "d".into(),
            weights: WeightSet::Inline(vec![vec![1.0]]),
            q: vec![1.0],
            k: 2,
        };
        assert_ne!(named.fingerprint(), inline.fingerprint());
    }

    #[test]
    fn kind_and_dataset_accessors() {
        let r = topk("p", &[1.0], 1);
        assert_eq!(r.kind(), RequestKind::TopK);
        assert_eq!(r.dataset(), "p");
        assert_eq!(r.kind().name(), "topk");
        assert_eq!(RequestKind::ALL.len(), 7);
        for (i, k) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn error_predicate() {
        assert!(Response::Error("x".into()).is_error());
        assert!(!Response::TopK(vec![]).is_error());
    }
}
