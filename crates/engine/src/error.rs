//! Engine-level errors.
//!
//! Request execution never panics the serving loop: failures surface as
//! [`crate::Response::Error`] carrying one of these (or a library error's
//! message), so a malformed request in a batch cannot take down its
//! neighbours.

use std::fmt;

/// Errors raised by the catalog and the serving loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The request names a dataset the catalog does not hold.
    UnknownDataset(String),
    /// The request names a weight population the catalog does not hold.
    UnknownWeightSet(String),
    /// A vector in the request does not match the dataset dimensionality.
    DimensionMismatch {
        /// Dataset dimensionality.
        expected: usize,
        /// Offending vector length.
        got: usize,
    },
    /// A dataset was registered with dimensionality zero.
    ZeroDimension,
    /// A coordinate buffer is not a multiple of the dataset dimensionality.
    RaggedCoordinates {
        /// Dataset dimensionality.
        dim: usize,
        /// Buffer length.
        len: usize,
    },
    /// A weight population name is already taken (populations are
    /// immutable once registered; see [`crate::Catalog`]).
    WeightSetExists(String),
    /// An input contains a NaN or infinite value. Non-finite floats
    /// silently corrupt every strict `<` comparison and `total_cmp` sort
    /// in the kernels, so they are rejected at the request boundary.
    NonFiniteInput {
        /// Which input was malformed.
        field: &'static str,
    },
    /// A weighting vector has a negative component or no positive one.
    InvalidWeight {
        /// Which input held the vector.
        field: &'static str,
    },
    /// The penalty-model coefficients of a why-not plan request violate
    /// the model's constraints (α, β, γ, λ ≥ 0, α + β = 1, γ + λ = 1).
    InvalidTolerances {
        /// Which constraint was violated.
        reason: &'static str,
    },
    /// A why-not plan request named no refinement strategies — there is
    /// nothing to run, so there can be no recommendation.
    EmptyStrategySet,
    /// A sampling budget exceeds the serving cap
    /// (`MAX_SAMPLE_BUDGET` in the request module): the samplers allocate
    /// and loop proportionally to it, so an unbounded wire value could
    /// pin a pool worker or abort the process on allocation.
    SampleBudgetTooLarge {
        /// Which budget was oversized.
        field: &'static str,
        /// The cap.
        max: usize,
    },
    /// A delete names a point id that does not exist (or was already
    /// deleted) in the dataset's current generation.
    UnknownPointId {
        /// The offending id.
        id: u32,
    },
    /// The dataset has exhausted the `u32` point-id space.
    DatasetFull,
    /// The worker pool has shut down and can no longer serve requests.
    PoolShutdown,
    /// The durability layer failed: a mutation could not be made durable
    /// (the in-memory change was rolled back — unlogged means undone), or
    /// recovery found durable state violating a catalog invariant.
    Durability {
        /// The underlying storage failure, rendered.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            EngineError::UnknownWeightSet(name) => write!(f, "unknown weight set `{name}`"),
            EngineError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            EngineError::ZeroDimension => write!(f, "dataset dimensionality must be positive"),
            EngineError::RaggedCoordinates { dim, len } => {
                write!(
                    f,
                    "coordinate buffer length {len} is not a multiple of dim {dim}"
                )
            }
            EngineError::WeightSetExists(name) => {
                write!(
                    f,
                    "weight set `{name}` already registered (populations are immutable)"
                )
            }
            EngineError::NonFiniteInput { field } => {
                write!(f, "non-finite value (NaN or infinity) in {field}")
            }
            EngineError::InvalidWeight { field } => {
                write!(
                    f,
                    "invalid weighting vector in {field}: components must be \
                     non-negative with at least one positive"
                )
            }
            EngineError::InvalidTolerances { reason } => {
                write!(f, "invalid penalty tolerances: {reason}")
            }
            EngineError::EmptyStrategySet => {
                write!(f, "the refinement strategy set is empty — nothing to run")
            }
            EngineError::SampleBudgetTooLarge { field, max } => {
                write!(f, "sampling budget in {field} exceeds the cap of {max}")
            }
            EngineError::UnknownPointId { id } => {
                write!(f, "unknown (or already deleted) point id {id}")
            }
            EngineError::DatasetFull => {
                write!(f, "dataset exhausted the u32 point-id space")
            }
            EngineError::PoolShutdown => write!(f, "worker pool has shut down"),
            EngineError::Durability { reason } => write!(f, "durability failure: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}
