//! The dataset catalog: named product datasets served as **delta
//! overlays** — a bulk-loaded base (R-tree + column-major mirror) plus a
//! small mutable tail — and named (immutable) customer weight
//! populations.
//!
//! ## Mutation lifecycle
//!
//! * **Register** installs a fresh base. The index is built lazily on
//!   first use, exactly once: a per-entry [`OnceLock`] makes concurrent
//!   cold callers block on the single builder instead of racing
//!   duplicate `bulk_load`s (the build still runs outside the catalog
//!   lock, so other datasets never stall behind it).
//! * **Append** pushes rows into a copy-on-write delta memtable — `O(Δ)`
//!   work, the built index is untouched.
//! * **Delete** tombstones a base row (id + coordinates recorded) or
//!   drops a delta row — `O(Δ)`, index untouched.
//! * **Compaction** merges base + delta − tombstones into a fresh
//!   bulk-loaded base in *canonical order* (see
//!   [`wqrtq_geom::DeltaView::materialize_row_major`]), bumping the base
//!   epoch. It is triggered by the engine off the request path and
//!   abandoned harmlessly if the dataset mutated while merging.
//!
//! Every snapshot carries a [`DatasetEpoch`] triple
//! `(base, delta, tombstones)` whose components only ever grow within a
//! base generation (and `base` grows across generations), so a result
//! cache keyed on it can never serve a stale response — whether or not
//! the stale entry was evicted yet.

use crate::error::EngineError;
use crate::storage::{
    CatalogState, DatasetState, Durability, StorageError, WalRecord, WalRecordRef, WeightSetState,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use wqrtq_geom::{DeltaView, FlatPoints, Weight};
use wqrtq_rtree::{DominanceIndex, RTree};

/// A storage failure surfaced through the engine's error vocabulary.
fn durability_err(e: StorageError) -> EngineError {
    EngineError::Durability {
        reason: e.to_string(),
    }
}

/// Rebuilds a [`Weight`] from persisted components without panicking:
/// [`Weight::new`] asserts its invariants, so a damaged image must be
/// rejected as a typed error first.
fn weight_from_state(w: Vec<f64>) -> Result<Weight, EngineError> {
    let valid = !w.is_empty()
        && w.iter().all(|x| x.is_finite() && *x >= -1e-9)
        && (w.iter().sum::<f64>() - 1.0).abs() < 1e-6;
    if !valid {
        return Err(EngineError::Durability {
            reason: "recovered weight vector violates its invariants".to_string(),
        });
    }
    Ok(Weight::new(w))
}

/// The versions of one dataset snapshot. Any mutation strictly increases
/// one component (appends bump `delta`, deletes bump `tombstones`,
/// re-registration and compaction bump `base` and reset the others), so
/// two distinct catalog states never share an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DatasetEpoch {
    /// Base generation (bulk-load count: registrations + compactions).
    pub base: u64,
    /// Rows appended since this base was built (monotone — deleting an
    /// appended row does not decrease it).
    pub delta: u64,
    /// Rows deleted since this base was built (monotone — covers both
    /// tombstoned base rows and dropped delta rows).
    pub tombstones: u64,
}

impl DatasetEpoch {
    /// The epoch of a freshly built base (no overlay yet).
    pub fn fresh(base: u64) -> Self {
        Self {
            base,
            delta: 0,
            tombstones: 0,
        }
    }
}

impl std::fmt::Display for DatasetEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.base, self.delta, self.tombstones)
    }
}

/// A consistent snapshot of one dataset, handed to workers.
#[derive(Clone, Debug)]
pub struct DatasetHandle {
    /// Flat row-major coordinates of the *base* (what the index was
    /// built from; tombstoned rows included — the view discounts them).
    pub coords: Arc<Vec<f64>>,
    /// Dimensionality.
    pub dim: usize,
    /// Epoch triple at snapshot time.
    pub epoch: DatasetEpoch,
    /// The shared pre-built base index.
    pub index: Arc<RTree>,
    /// Column-major mirror of the base coordinates for the fused
    /// flat-scan kernels, built together with the index.
    pub flat: Arc<FlatPoints>,
    /// The delta overlay this request must answer against (plain when
    /// the dataset has not mutated since its base was built).
    pub view: DeltaView,
    /// The k-dominance exclusion mask over the base tree, built lazily
    /// per base generation next to the index. `None` when the catalog
    /// was configured with the pre-filter off (the differential-oracle
    /// opt-out) — serving paths then take the unmasked kernels.
    pub dom: Option<Arc<DominanceIndex>>,
}

impl DatasetHandle {
    /// Number of live points in this snapshot.
    pub fn live_len(&self) -> usize {
        self.view.live_len()
    }
}

type BuiltIndex = (Arc<RTree>, Arc<FlatPoints>);

#[derive(Debug)]
struct DatasetEntry {
    dim: usize,
    base_coords: Arc<Vec<f64>>,
    base_epoch: u64,
    /// Appends since the base was built (monotone; also the delta id
    /// allocator — the next appended row gets id `base_n + appends`).
    appends: u64,
    /// Rows deleted since the base was built (monotone).
    deletes: u64,
    /// Live appended rows (copy-on-write: snapshots hold the old Arcs).
    delta_rows: Arc<Vec<f64>>,
    delta_ids: Arc<Vec<u32>>,
    /// Tombstoned base rows, id-sorted.
    dead_rows: Arc<Vec<f64>>,
    dead_ids: Arc<Vec<u32>>,
    /// Built exactly once per base generation; replaced wholesale on
    /// re-registration / compaction.
    index: Arc<OnceLock<BuiltIndex>>,
    /// The dominance mask of this base generation, built lazily after
    /// the index (its own `OnceLock`, so mask construction never blocks
    /// callers that only need the tree). Replaced wholesale together
    /// with the index — the mask describes exactly one base epoch.
    dom: Arc<OnceLock<Arc<DominanceIndex>>>,
}

impl DatasetEntry {
    fn fresh(dim: usize, coords: Vec<f64>, base_epoch: u64) -> Self {
        Self {
            dim,
            base_coords: Arc::new(coords),
            base_epoch,
            appends: 0,
            deletes: 0,
            delta_rows: Arc::new(Vec::new()),
            delta_ids: Arc::new(Vec::new()),
            dead_rows: Arc::new(Vec::new()),
            dead_ids: Arc::new(Vec::new()),
            index: Arc::new(OnceLock::new()),
            dom: Arc::new(OnceLock::new()),
        }
    }

    fn epoch(&self) -> DatasetEpoch {
        DatasetEpoch {
            base: self.base_epoch,
            delta: self.appends,
            tombstones: self.deletes,
        }
    }

    fn base_len(&self) -> usize {
        self.base_coords.len() / self.dim
    }

    fn live_len(&self) -> usize {
        self.base_len() - self.dead_ids.len() + self.delta_ids.len()
    }

    /// Delta rows plus tombstones — the overlay size compaction bounds.
    fn overlay_len(&self) -> usize {
        self.delta_ids.len() + self.dead_ids.len()
    }
}

#[derive(Debug, Default)]
struct CatalogInner {
    datasets: HashMap<String, DatasetEntry>,
    weight_sets: HashMap<String, Arc<Vec<Weight>>>,
}

/// Point-in-time mutation/build counters of a [`Catalog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// `bulk_load`s actually executed (lazy first-use builds and
    /// compaction merges). The acceptance gate for overlay serving:
    /// appending to an indexed dataset must not move this.
    pub index_builds: u64,
    /// Mutations absorbed by the overlay while a built base index
    /// existed — each one is a `bulk_load` the pre-overlay design would
    /// have paid.
    pub rebuilds_avoided: u64,
    /// Overlay merges completed.
    pub compactions: u64,
    /// Compaction attempts abandoned because the dataset mutated while
    /// the merge was running (the next mutation re-triggers).
    pub compactions_abandoned: u64,
    /// Dominance masks actually built (lazy first-use per base
    /// generation). Deliberately separate from `index_builds`, whose
    /// exact values the overlay-serving gates assert.
    pub mask_builds: u64,
    /// Points skipped by the k-dominance pre-filter across all masked
    /// traversals (cumulative across base generations).
    pub prefilter_skips: u64,
    /// Quantized blocks the two-tier scan had to rescore in exact `f64`
    /// because the `f32` bounds straddled the threshold (cumulative
    /// across base generations).
    pub quantized_fallbacks: u64,
    /// WAL records appended by the attached durability layer (0 when
    /// the engine runs without a `data_dir`).
    pub wal_appends: u64,
    /// Snapshots installed (at compaction and explicit checkpoints).
    pub snapshot_writes: u64,
    /// Recoveries performed: 1 after resuming pre-existing durable
    /// state, 0 for a fresh data directory or an in-memory engine.
    pub recoveries: u64,
    /// WAL records replayed by the last recovery.
    pub wal_replayed: u64,
}

/// Thread-safe catalog of datasets and weight populations.
#[derive(Debug)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
    /// Build the k-dominance exclusion mask per base generation and hand
    /// it to serving snapshots.
    prefilter: bool,
    /// Build the quantized `f32` mirror tier of every flat store.
    quantized: bool,
    index_builds: AtomicU64,
    rebuilds_avoided: AtomicU64,
    compactions: AtomicU64,
    compactions_abandoned: AtomicU64,
    mask_builds: AtomicU64,
    /// Skip/fallback tallies of retired base generations (folded in when
    /// compaction or re-registration replaces an entry, so the stats
    /// stay monotone across rebuilds).
    retired_prefilter_skips: AtomicU64,
    retired_quantized_fallbacks: AtomicU64,
    /// The durability layer, attached once (after recovery replay, so
    /// replayed mutations are not logged twice). `None` for in-memory
    /// engines — every hook below is then a single branch, leaving the
    /// default path untouched.
    durability: OnceLock<Arc<Durability>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::with_config(true, true)
    }
}

/// Validates that every coordinate is finite (the request boundary's
/// helper, reused so catalog-level and request-level rejection agree).
fn check_finite(points: &[f64]) -> Result<(), EngineError> {
    crate::request::check_finite(points, "coordinates")
}

impl Catalog {
    /// An empty catalog with both data-plane tiers enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty catalog with the two data-plane tiers individually
    /// switched: `prefilter` gates the k-dominance exclusion mask,
    /// `quantized` gates the `f32` block-scan tier. Turning both off
    /// yields the exact-`f64`, unmasked reference plane the differential
    /// oracles compare against.
    pub fn with_config(prefilter: bool, quantized: bool) -> Self {
        Self {
            inner: RwLock::default(),
            prefilter,
            quantized,
            index_builds: AtomicU64::new(0),
            rebuilds_avoided: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compactions_abandoned: AtomicU64::new(0),
            mask_builds: AtomicU64::new(0),
            retired_prefilter_skips: AtomicU64::new(0),
            retired_quantized_fallbacks: AtomicU64::new(0),
            durability: OnceLock::new(),
        }
    }

    /// Attaches the durability layer. Must happen strictly after any
    /// recovery replay — mutations made before the attach are never
    /// logged (that is what makes replay idempotent).
    ///
    /// # Panics
    /// Panics if a layer is already attached.
    pub(crate) fn attach_durability(&self, d: Arc<Durability>) {
        self.durability
            .set(d)
            // lint: allow(no-panic) — the documented `# Panics`
            // contract: attaching twice is an engine-construction bug.
            .expect("durability layer attached exactly once");
    }

    /// Folds a replaced entry's tier counters into the retired tallies
    /// (call before dropping the entry's built index / mask).
    fn retire_entry_counters(&self, entry: &DatasetEntry) {
        // ordering: Relaxed — monotonic stats tallies read only by
        // `stats()`; no data is published through them.
        if let Some((_, flat)) = entry.index.get() {
            self.retired_quantized_fallbacks
                .fetch_add(flat.tier_totals().quantized_fallbacks, Ordering::Relaxed);
        }
        if let Some(dom) = entry.dom.get() {
            self.retired_prefilter_skips
                .fetch_add(dom.skips(), Ordering::Relaxed);
        }
    }

    /// Registers (or replaces) a dataset from a flat `n × dim` buffer.
    /// Replacement bumps the base epoch and drops any built index.
    ///
    /// # Errors
    /// [`EngineError::ZeroDimension`] when `dim` is zero,
    /// [`EngineError::RaggedCoordinates`] when the buffer length is not a
    /// multiple of `dim`, [`EngineError::NonFiniteInput`] on NaN/infinite
    /// coordinates.
    pub fn register(&self, name: &str, dim: usize, coords: Vec<f64>) -> Result<(), EngineError> {
        if dim == 0 {
            return Err(EngineError::ZeroDimension);
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(EngineError::RaggedCoordinates {
                dim,
                len: coords.len(),
            });
        }
        check_finite(&coords)?;
        let mut inner = self.inner.write().expect("catalog lock");
        let base_epoch = match inner.datasets.get(name) {
            Some(old) => old.base_epoch + 1,
            None => 1,
        };
        let prev = inner.datasets.insert(
            name.to_string(),
            DatasetEntry::fresh(dim, coords, base_epoch),
        );
        if let Some(d) = self.durability.get() {
            // lint: allow(no-panic) — the insert is two lines up and the
            // write lock is still held.
            let entry = inner.datasets.get(name).expect("just inserted");
            let logged = d.log(WalRecordRef::Register {
                name,
                dim: dim as u64,
                coords: &entry.base_coords,
            });
            if let Err(e) = logged {
                // Unlogged means undone: restore the previous entry so
                // the in-memory and durable states cannot diverge.
                match prev {
                    Some(p) => {
                        inner.datasets.insert(name.to_string(), p);
                    }
                    None => {
                        inner.datasets.remove(name);
                    }
                }
                return Err(durability_err(e));
            }
        }
        // Retire the replaced generation's tier counters only once the
        // replacement is committed (logged or log-free).
        if let Some(p) = &prev {
            self.retire_entry_counters(p);
        }
        Ok(())
    }

    /// Appends points to a dataset's delta memtable: `O(Δ)` copy-on-write
    /// work, no index is dropped or rebuilt. Returns the live point count
    /// after the append.
    ///
    /// # Errors
    /// [`EngineError::UnknownDataset`] / [`EngineError::RaggedCoordinates`]
    /// / [`EngineError::NonFiniteInput`] / [`EngineError::DatasetFull`].
    pub fn append(&self, name: &str, points: &[f64]) -> Result<usize, EngineError> {
        check_finite(points)?;
        let mut inner = self.inner.write().expect("catalog lock");
        let entry = inner
            .datasets
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        if !points.len().is_multiple_of(entry.dim) {
            return Err(EngineError::RaggedCoordinates {
                dim: entry.dim,
                len: points.len(),
            });
        }
        let rows = (points.len() / entry.dim) as u64;
        let next_id = entry.base_len() as u64 + entry.appends;
        if next_id + rows > u32::MAX as u64 {
            return Err(EngineError::DatasetFull);
        }
        let saved = (entry.delta_rows.clone(), entry.delta_ids.clone());
        let mut delta_rows = (*entry.delta_rows).clone();
        let mut delta_ids = (*entry.delta_ids).clone();
        delta_rows.extend_from_slice(points);
        delta_ids.extend((0..rows).map(|i| (next_id + i) as u32));
        entry.delta_rows = Arc::new(delta_rows);
        entry.delta_ids = Arc::new(delta_ids);
        entry.appends += rows;
        if let Some(d) = self.durability.get() {
            if let Err(e) = d.log(WalRecordRef::Append { name, points }) {
                (entry.delta_rows, entry.delta_ids) = saved;
                entry.appends -= rows;
                return Err(durability_err(e));
            }
        }
        let live = entry.live_len();
        if entry.index.get().is_some() {
            // ordering: Relaxed — monotonic stats counter, read only by
            // `stats()`.
            self.rebuilds_avoided.fetch_add(1, Ordering::Relaxed);
        }
        Ok(live)
    }

    /// Deletes points by id: base rows are tombstoned, appended rows are
    /// dropped from the memtable — `O(Δ + |ids|)`, no index touched.
    /// All-or-nothing: an unknown or already-deleted id fails the whole
    /// call without mutating anything. Returns the live count after.
    ///
    /// # Errors
    /// [`EngineError::UnknownDataset`] / [`EngineError::UnknownPointId`].
    pub fn delete(&self, name: &str, ids: &[u32]) -> Result<usize, EngineError> {
        let mut inner = self.inner.write().expect("catalog lock");
        let entry = inner
            .datasets
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        let dim = entry.dim;
        let base_n = entry.base_len() as u32;
        // Validate first (all-or-nothing), splitting the victims into
        // sorted base tombstones and a delta-row removal set; then merge
        // each buffer in one pass — O(Δ + |ids| log |ids|) total, not
        // O(|ids| × Δ) of per-id splicing.
        let mut base_victims: Vec<u32> = Vec::new();
        let mut delta_victims: Vec<u32> = Vec::new();
        for &id in ids {
            if id < base_n {
                if entry.dead_ids.binary_search(&id).is_ok() {
                    return Err(EngineError::UnknownPointId { id }); // tombstoned twice
                }
                base_victims.push(id);
            } else {
                entry
                    .delta_ids
                    .binary_search(&id)
                    .map_err(|_| EngineError::UnknownPointId { id })?;
                delta_victims.push(id);
            }
        }
        base_victims.sort_unstable();
        delta_victims.sort_unstable();
        let dup_in = |v: &[u32]| v.windows(2).find(|w| w[0] == w[1]).map(|w| w[0]);
        if let Some(id) = dup_in(&base_victims).or_else(|| dup_in(&delta_victims)) {
            // The same id twice in one call is the same error as deleting
            // an already-deleted point.
            return Err(EngineError::UnknownPointId { id });
        }

        let saved = (
            entry.delta_rows.clone(),
            entry.delta_ids.clone(),
            entry.dead_rows.clone(),
            entry.dead_ids.clone(),
        );
        if !delta_victims.is_empty() {
            let keep = entry.delta_ids.len() - delta_victims.len();
            let mut delta_rows = Vec::with_capacity(keep * dim);
            let mut delta_ids = Vec::with_capacity(keep);
            for (pos, &id) in entry.delta_ids.iter().enumerate() {
                if delta_victims.binary_search(&id).is_err() {
                    delta_ids.push(id);
                    delta_rows.extend_from_slice(&entry.delta_rows[pos * dim..(pos + 1) * dim]);
                }
            }
            entry.delta_rows = Arc::new(delta_rows);
            entry.delta_ids = Arc::new(delta_ids);
        }
        if !base_victims.is_empty() {
            let total = entry.dead_ids.len() + base_victims.len();
            let mut dead_ids = Vec::with_capacity(total);
            let mut dead_rows = Vec::with_capacity(total * dim);
            let mut push = |id: u32, from_base: bool, old_pos: usize| {
                dead_ids.push(id);
                if from_base {
                    let at = id as usize * dim;
                    dead_rows.extend_from_slice(&entry.base_coords[at..at + dim]);
                } else {
                    dead_rows
                        .extend_from_slice(&entry.dead_rows[old_pos * dim..(old_pos + 1) * dim]);
                }
            };
            // Merge the two sorted id runs.
            let (mut i, mut j) = (0, 0);
            while i < entry.dead_ids.len() || j < base_victims.len() {
                let take_old = j >= base_victims.len()
                    || (i < entry.dead_ids.len() && entry.dead_ids[i] < base_victims[j]);
                if take_old {
                    push(entry.dead_ids[i], false, i);
                    i += 1;
                } else {
                    push(base_victims[j], true, 0);
                    j += 1;
                }
            }
            entry.dead_rows = Arc::new(dead_rows);
            entry.dead_ids = Arc::new(dead_ids);
        }
        entry.deletes += ids.len() as u64;
        if let Some(d) = self.durability.get() {
            if let Err(e) = d.log(WalRecordRef::Delete { name, ids }) {
                (
                    entry.delta_rows,
                    entry.delta_ids,
                    entry.dead_rows,
                    entry.dead_ids,
                ) = saved;
                entry.deletes -= ids.len() as u64;
                return Err(durability_err(e));
            }
        }
        let live = entry.live_len();
        if entry.index.get().is_some() {
            // ordering: Relaxed — monotonic stats counter, read only by
            // `stats()`.
            self.rebuilds_avoided.fetch_add(1, Ordering::Relaxed);
        }
        Ok(live)
    }

    /// Registers an immutable weight population. Every vector must be
    /// finite, non-negative, and not identically zero.
    ///
    /// # Errors
    /// [`EngineError::WeightSetExists`] when the name is taken —
    /// populations are immutable so cached bichromatic results keyed on
    /// the name can never go stale; register a new name instead.
    /// [`EngineError::NonFiniteInput`] / [`EngineError::InvalidWeight`]
    /// on malformed vectors.
    pub fn register_weights(&self, name: &str, weights: Vec<Weight>) -> Result<(), EngineError> {
        for w in &weights {
            crate::request::check_weight(w.as_slice(), "weight set")?;
        }
        let mut inner = self.inner.write().expect("catalog lock");
        if inner.weight_sets.contains_key(name) {
            return Err(EngineError::WeightSetExists(name.to_string()));
        }
        inner
            .weight_sets
            .insert(name.to_string(), Arc::new(weights));
        if let Some(d) = self.durability.get() {
            // lint: allow(no-panic) — the insert is two lines up and the
            // write lock is still held.
            let ws = inner.weight_sets.get(name).expect("just inserted");
            let logged = d.log(WalRecordRef::RegisterWeights {
                name,
                weights: ws.as_slice(),
            });
            if let Err(e) = logged {
                inner.weight_sets.remove(name);
                return Err(durability_err(e));
            }
        }
        Ok(())
    }

    /// A registered weight population.
    pub fn weights(&self, name: &str) -> Result<Arc<Vec<Weight>>, EngineError> {
        self.inner
            .read()
            .expect("catalog lock")
            .weight_sets
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownWeightSet(name.to_string()))
    }

    /// A consistent dataset snapshot, building the shared base index on
    /// first use. The build runs *outside* the catalog lock — a cold
    /// multi-million-point dataset never stalls requests against other
    /// datasets — and the per-entry [`OnceLock`] guarantees exactly one
    /// build per base generation: concurrent cold callers block on the
    /// winner instead of burning cores on duplicate `bulk_load`s whose
    /// losers would be discarded.
    pub fn handle(&self, name: &str) -> Result<DatasetHandle, EngineError> {
        // Snapshot everything consistent under the read lock.
        let (entry_snapshot, once, dom_once) = {
            let inner = self.inner.read().expect("catalog lock");
            let entry = inner
                .datasets
                .get(name)
                .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
            (
                (
                    entry.base_coords.clone(),
                    entry.dim,
                    entry.epoch(),
                    entry.delta_rows.clone(),
                    entry.delta_ids.clone(),
                    entry.dead_rows.clone(),
                    entry.dead_ids.clone(),
                ),
                entry.index.clone(),
                entry.dom.clone(),
            )
        };
        let (coords, dim, epoch, delta_rows, delta_ids, dead_rows, dead_ids) = entry_snapshot;
        let (index, flat) = once
            .get_or_init(|| {
                // ordering: Relaxed — monotonic stats counter; the
                // OnceLock provides the once-only synchronization.
                self.index_builds.fetch_add(1, Ordering::Relaxed);
                (
                    Arc::new(RTree::bulk_load(dim, &coords)),
                    Arc::new(FlatPoints::from_row_major_with(
                        dim,
                        &coords,
                        self.quantized,
                    )),
                )
            })
            .clone();
        // The mask rides its own OnceLock on the same base generation:
        // built at most once per generation, outside the catalog lock,
        // and counted separately from index builds (overlay gates assert
        // exact `index_builds` values).
        let dom = self.prefilter.then(|| {
            dom_once
                .get_or_init(|| {
                    // ordering: Relaxed — monotonic stats counter; the
                    // OnceLock provides the once-only synchronization.
                    self.mask_builds.fetch_add(1, Ordering::Relaxed);
                    Arc::new(DominanceIndex::build(&index))
                })
                .clone()
        });
        let view = DeltaView::new(flat.clone(), delta_rows, delta_ids, dead_rows, dead_ids);
        Ok(DatasetHandle {
            coords,
            dim,
            epoch,
            index,
            flat,
            view,
            dom,
        })
    }

    /// Merges a dataset's overlay into a fresh bulk-loaded base **iff**
    /// its epoch still equals `epoch` when the merge finishes — the
    /// check-merge-recheck dance makes compaction safe to run
    /// concurrently with mutations: a mutation that lands mid-merge
    /// abandons this attempt (its own trigger will schedule the next
    /// one). Returns whether a merge was installed.
    ///
    /// # Errors
    /// [`EngineError::UnknownDataset`].
    pub fn compact_if(&self, name: &str, epoch: DatasetEpoch) -> Result<bool, EngineError> {
        // Snapshot the raw parts — deliberately NOT through `handle()`,
        // which would lazily bulk_load the *stale* base index only for
        // this merge to throw it away (ingest-only datasets never built
        // one). Materialisation needs the base coordinates alone.
        let (dim, base_coords, delta_rows, delta_ids, dead_ids) = {
            let inner = self.inner.read().expect("catalog lock");
            let entry = inner
                .datasets
                .get(name)
                .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
            if entry.epoch() != epoch || entry.overlay_len() == 0 {
                return Ok(false); // already merged, superseded, or nothing to do
            }
            (
                entry.dim,
                entry.base_coords.clone(),
                entry.delta_rows.clone(),
                entry.delta_ids.clone(),
                entry.dead_ids.clone(),
            )
        };
        // Merge + build outside the lock (the expensive part), in
        // canonical order: surviving base rows ascending, then appends.
        let live_rows = base_coords.len() / dim - dead_ids.len() + delta_ids.len();
        let mut live_coords = Vec::with_capacity(live_rows * dim);
        for (row, chunk) in base_coords.chunks_exact(dim).enumerate() {
            if dead_ids.binary_search(&(row as u32)).is_err() {
                live_coords.extend_from_slice(chunk);
            }
        }
        live_coords.extend_from_slice(&delta_rows);
        let built: BuiltIndex = (
            Arc::new(RTree::bulk_load(dim, &live_coords)),
            Arc::new(FlatPoints::from_row_major_with(
                dim,
                &live_coords,
                self.quantized,
            )),
        );
        // ordering: Relaxed — monotonic stats counter, read only by
        // `stats()`.
        self.index_builds.fetch_add(1, Ordering::Relaxed);

        let mut inner = self.inner.write().expect("catalog lock");
        let entry = inner
            .datasets
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        if entry.epoch() != epoch {
            // ordering: Relaxed — monotonic stats counter, read only by
            // `stats()`.
            self.compactions_abandoned.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        if let Some(d) = self.durability.get() {
            // Log the merge *before* installing it: a Compact record that
            // cannot be made durable abandons the merge (the overlay and
            // its trigger survive untouched), so the WAL always carries
            // the record for any installed base.
            if let Err(e) = d.log(WalRecordRef::Compact { name }) {
                // ordering: Relaxed — monotonic stats counter.
                self.compactions_abandoned.fetch_add(1, Ordering::Relaxed);
                return Err(durability_err(e));
            }
        }
        // The stale generation's mask dies with it (the fresh entry's
        // OnceLock rebuilds lazily); keep its telemetry.
        self.retire_entry_counters(entry);
        let base_epoch = entry.base_epoch + 1;
        let mut fresh = DatasetEntry::fresh(entry.dim, live_coords, base_epoch);
        let once = OnceLock::new();
        // lint: allow(no-panic) — `once` was created on the previous
        // line; the first `set` on a fresh OnceLock cannot fail.
        once.set(built).expect("fresh OnceLock");
        fresh.index = Arc::new(once);
        *entry = fresh;
        // ordering: Relaxed — monotonic stats counter; installation of
        // the merged base is published by the catalog write lock above.
        self.compactions.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.durability.get() {
            // Snapshot the post-merge catalog while the write lock still
            // excludes concurrent mutations, so the image and the WAL
            // reset inside the checkpoint agree on `last_lsn`. A failed
            // checkpoint is deliberately tolerated: the previous snapshot
            // plus the full WAL (including the Compact record just
            // logged) still recover this exact state.
            let state = Self::export_state_locked(&inner, d.last_lsn());
            let _ = d.checkpoint(&state);
        }
        Ok(true)
    }

    /// Current epoch triple of a dataset.
    pub fn epoch(&self, name: &str) -> Result<DatasetEpoch, EngineError> {
        self.inner
            .read()
            .expect("catalog lock")
            .datasets
            .get(name)
            .map(DatasetEntry::epoch)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// `(overlay rows, base rows)` of a dataset — the compaction-policy
    /// inputs.
    pub fn overlay_size(&self, name: &str) -> Result<(usize, usize), EngineError> {
        self.inner
            .read()
            .expect("catalog lock")
            .datasets
            .get(name)
            .map(|e| (e.overlay_len(), e.base_len()))
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .read()
            .expect("catalog lock")
            .datasets
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Whether a dataset's base index is currently built.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("catalog lock")
            .datasets
            .get(name)
            .is_some_and(|e| e.index.get().is_some())
    }

    /// Exports the complete catalog image under an already-held lock.
    /// The caller supplies the WAL position the image covers; datasets
    /// and weight populations are sorted by name so the same state
    /// always encodes to the same bytes.
    fn export_state_locked(inner: &CatalogInner, last_lsn: u64) -> CatalogState {
        let mut datasets: Vec<DatasetState> = inner
            .datasets
            .iter()
            .map(|(name, e)| DatasetState {
                name: name.clone(),
                dim: e.dim as u64,
                base_epoch: e.base_epoch,
                appends: e.appends,
                deletes: e.deletes,
                base_coords: (*e.base_coords).clone(),
                delta_rows: (*e.delta_rows).clone(),
                delta_ids: (*e.delta_ids).clone(),
                dead_rows: (*e.dead_rows).clone(),
                dead_ids: (*e.dead_ids).clone(),
            })
            .collect();
        datasets.sort_by(|a, b| a.name.cmp(&b.name));
        let mut weight_sets: Vec<WeightSetState> = inner
            .weight_sets
            .iter()
            .map(|(name, ws)| WeightSetState {
                name: name.clone(),
                weights: ws.iter().map(|w| w.as_slice().to_vec()).collect(),
            })
            .collect();
        weight_sets.sort_by(|a, b| a.name.cmp(&b.name));
        CatalogState {
            last_lsn,
            datasets,
            weight_sets,
        }
    }

    /// Installs a recovered snapshot image wholesale. Runs once at
    /// startup, before any traffic and strictly before the durability
    /// layer is attached — nothing here is logged (again).
    ///
    /// # Errors
    /// [`EngineError::Durability`] when the image violates an invariant
    /// the live catalog could never have produced — damage the CRC
    /// cannot see, e.g. a buffer length that disagrees with its ids.
    pub(crate) fn restore_state(&self, state: CatalogState) -> Result<(), EngineError> {
        let broken = |reason: &str| EngineError::Durability {
            reason: format!("recovered snapshot is inconsistent: {reason}"),
        };
        let mut inner = self.inner.write().expect("catalog lock");
        for d in state.datasets {
            let dim = usize::try_from(d.dim).unwrap_or(0);
            if dim == 0 {
                return Err(broken("zero dimensionality"));
            }
            if !d.base_coords.len().is_multiple_of(dim) {
                return Err(broken("ragged base coordinates"));
            }
            if d.delta_rows.len() != d.delta_ids.len() * dim {
                return Err(broken("delta rows disagree with delta ids"));
            }
            if d.dead_rows.len() != d.dead_ids.len() * dim {
                return Err(broken("tombstone rows disagree with tombstone ids"));
            }
            if !d.dead_ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(broken("tombstone ids not strictly ascending"));
            }
            let entry = DatasetEntry {
                dim,
                base_coords: Arc::new(d.base_coords),
                base_epoch: d.base_epoch,
                appends: d.appends,
                deletes: d.deletes,
                delta_rows: Arc::new(d.delta_rows),
                delta_ids: Arc::new(d.delta_ids),
                dead_rows: Arc::new(d.dead_rows),
                dead_ids: Arc::new(d.dead_ids),
                index: Arc::new(OnceLock::new()),
                dom: Arc::new(OnceLock::new()),
            };
            inner.datasets.insert(d.name, entry);
        }
        for ws in state.weight_sets {
            let weights = ws
                .weights
                .into_iter()
                .map(weight_from_state)
                .collect::<Result<Vec<Weight>, EngineError>>()?;
            inner.weight_sets.insert(ws.name, Arc::new(weights));
        }
        Ok(())
    }

    /// Replays one WAL record onto the catalog. Runs only during
    /// recovery, strictly before the durability layer is attached, so
    /// the replayed mutation is not logged a second time.
    ///
    /// # Errors
    /// Propagates the underlying mutation error — any failure means the
    /// durable log is inconsistent with the catalog's invariants.
    pub(crate) fn apply_replay(&self, rec: WalRecord) -> Result<(), EngineError> {
        match rec {
            WalRecord::Register { name, dim, coords } => {
                let dim = usize::try_from(dim).map_err(|_| EngineError::Durability {
                    reason: "replayed register has an impossible dimensionality".to_string(),
                })?;
                self.register(&name, dim, coords)
            }
            WalRecord::Append { name, points } => self.append(&name, &points).map(|_| ()),
            WalRecord::Delete { name, ids } => self.delete(&name, &ids).map(|_| ()),
            WalRecord::RegisterWeights { name, weights } => {
                let weights = weights
                    .into_iter()
                    .map(weight_from_state)
                    .collect::<Result<Vec<Weight>, EngineError>>()?;
                self.register_weights(&name, weights)
            }
            WalRecord::Compact { name } => {
                // A logged Compact means the merge installed at exactly
                // this point in the mutation order; the replayed catalog
                // is in the same pre-merge state, so compacting at the
                // current epoch reproduces the same base generation.
                let epoch = self.epoch(&name)?;
                self.compact_if(&name, epoch).map(|_| ())
            }
        }
    }

    /// Writes a full snapshot now and resets the WAL, returning whether
    /// one was written (`false` means the engine has no durability
    /// layer, which makes this a no-op).
    ///
    /// # Errors
    /// [`EngineError::Durability`] when the snapshot cannot be
    /// installed; the previous snapshot and the full WAL remain intact.
    pub fn checkpoint(&self) -> Result<bool, EngineError> {
        let Some(d) = self.durability.get() else {
            return Ok(false);
        };
        // The *write* lock excludes concurrent mutations between the
        // state export and the WAL reset inside the checkpoint — the
        // image and its `last_lsn` stay consistent.
        let inner = self.inner.write().expect("catalog lock");
        let state = Self::export_state_locked(&inner, d.last_lsn());
        d.checkpoint(&state).map_err(durability_err)?;
        Ok(true)
    }

    /// Point-in-time mutation/build counters. The two-tier tallies sum
    /// the live entries' counters (read under the catalog lock) with the
    /// retired tallies of replaced base generations, so they are
    /// monotone across compactions and re-registrations.
    pub fn stats(&self) -> CatalogStats {
        let (mut prefilter_skips, mut quantized_fallbacks) = (0u64, 0u64);
        {
            let inner = self.inner.read().expect("catalog lock");
            for entry in inner.datasets.values() {
                if let Some((_, flat)) = entry.index.get() {
                    quantized_fallbacks += flat.tier_totals().quantized_fallbacks;
                }
                if let Some(dom) = entry.dom.get() {
                    prefilter_skips += dom.skips();
                }
            }
        }
        let durability = self.durability.get().map(|d| d.stats()).unwrap_or_default();
        // ordering: Relaxed — stats snapshot reads of monotonic
        // counters; monitoring tolerates momentarily-stale values and
        // tests that assert exact counts synchronize via join/lock
        // happens-before edges first.
        CatalogStats {
            index_builds: self.index_builds.load(Ordering::Relaxed),
            rebuilds_avoided: self.rebuilds_avoided.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compactions_abandoned: self.compactions_abandoned.load(Ordering::Relaxed),
            mask_builds: self.mask_builds.load(Ordering::Relaxed),
            prefilter_skips: prefilter_skips + self.retired_prefilter_skips.load(Ordering::Relaxed),
            quantized_fallbacks: quantized_fallbacks
                + self.retired_quantized_fallbacks.load(Ordering::Relaxed),
            wal_appends: durability.wal_appends,
            snapshot_writes: durability.snapshot_writes,
            recoveries: durability.recoveries,
            wal_replayed: durability.wal_replayed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<f64> {
        vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]
    }

    #[test]
    fn register_and_lazy_index() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        assert!(!c.is_indexed("sq"));
        let h = c.handle("sq").unwrap();
        assert_eq!(h.dim, 2);
        assert_eq!(h.epoch, DatasetEpoch::fresh(1));
        assert_eq!(h.index.len(), 4);
        assert!(h.view.is_plain());
        assert!(c.is_indexed("sq"));
        // Second handle shares the same index; exactly one build ran.
        let h2 = c.handle("sq").unwrap();
        assert!(Arc::ptr_eq(&h.index, &h2.index));
        assert_eq!(c.stats().index_builds, 1);
    }

    #[test]
    fn append_is_absorbed_by_the_overlay() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        let h1 = c.handle("sq").unwrap();
        assert_eq!(c.append("sq", &[0.5, 0.5]).unwrap(), 5);
        // The base index survives: no rebuild, no index drop.
        assert!(c.is_indexed("sq"));
        let h2 = c.handle("sq").unwrap();
        assert_eq!(
            h2.epoch,
            DatasetEpoch {
                base: 1,
                delta: 1,
                tombstones: 0
            }
        );
        assert!(Arc::ptr_eq(&h1.index, &h2.index), "no rebuild on append");
        assert_eq!(h2.view.delta_ids(), &[4]);
        assert_eq!(h2.live_len(), 5);
        // The old handle still sees its consistent snapshot.
        assert_eq!(h1.epoch, DatasetEpoch::fresh(1));
        assert!(h1.view.is_plain());
        let s = c.stats();
        assert_eq!((s.index_builds, s.rebuilds_avoided), (1, 1));
    }

    #[test]
    fn delete_tombstones_base_and_drops_delta_rows() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        c.append("sq", &[0.5, 0.5, 0.25, 0.75]).unwrap(); // ids 4, 5
        assert_eq!(c.delete("sq", &[1, 4]).unwrap(), 4);
        let h = c.handle("sq").unwrap();
        assert_eq!(
            h.epoch,
            DatasetEpoch {
                base: 1,
                delta: 2,
                tombstones: 2
            }
        );
        assert_eq!(h.view.dead_ids(), &[1]);
        assert_eq!(h.view.delta_ids(), &[5]); // id 4 dropped, 5 survives
        assert_eq!(h.view.delta_rows(), &[0.25, 0.75]);
        // New appends keep allocating fresh ids (4 is never reused).
        c.append("sq", &[0.9, 0.9]).unwrap();
        assert_eq!(c.handle("sq").unwrap().view.delta_ids(), &[5, 6]);
        // Double delete and unknown ids are typed errors, atomically.
        assert_eq!(
            c.delete("sq", &[5, 1]).unwrap_err(),
            EngineError::UnknownPointId { id: 1 }
        );
        assert_eq!(
            c.handle("sq").unwrap().view.delta_ids(),
            &[5, 6],
            "failed delete must not partially apply"
        );
        assert_eq!(
            c.delete("sq", &[99]).unwrap_err(),
            EngineError::UnknownPointId { id: 99 }
        );
    }

    #[test]
    fn compaction_merges_in_canonical_order() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        c.append("sq", &[0.5, 0.5]).unwrap();
        c.delete("sq", &[0]).unwrap();
        let epoch = c.epoch("sq").unwrap();
        assert!(c.compact_if("sq", epoch).unwrap());
        let h = c.handle("sq").unwrap();
        assert_eq!(h.epoch, DatasetEpoch::fresh(2));
        assert!(h.view.is_plain());
        assert_eq!(
            *h.coords,
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5],
            "live rows in canonical order"
        );
        // Compacting again at the (stale) old epoch is a no-op.
        assert!(!c.compact_if("sq", epoch).unwrap());
        let s = c.stats();
        assert_eq!(s.compactions, 1);
    }

    #[test]
    fn compaction_abandons_when_superseded() {
        let c = Catalog::new();
        c.register("d", 2, unit_square()).unwrap();
        c.append("d", &[0.5, 0.5]).unwrap();
        let old = c.epoch("d").unwrap();
        c.append("d", &[0.6, 0.6]).unwrap();
        // `old` no longer matches: the merge must not install.
        assert!(!c.compact_if("d", old).unwrap());
        assert_eq!(c.epoch("d").unwrap().base, 1);
    }

    #[test]
    fn reregister_bumps_base_epoch() {
        let c = Catalog::new();
        c.register("d", 2, unit_square()).unwrap();
        c.append("d", &[0.5, 0.5]).unwrap();
        c.register("d", 3, vec![0.0; 9]).unwrap();
        let epoch = c.epoch("d").unwrap();
        assert_eq!(epoch, DatasetEpoch::fresh(2));
        assert_eq!(c.handle("d").unwrap().dim, 3);
    }

    #[test]
    fn errors_are_typed() {
        let c = Catalog::new();
        assert_eq!(
            c.handle("nope").unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
        assert_eq!(
            c.register("z", 0, vec![]).unwrap_err(),
            EngineError::ZeroDimension
        );
        assert_eq!(
            c.register("r", 3, vec![1.0, 2.0]).unwrap_err(),
            EngineError::RaggedCoordinates { dim: 3, len: 2 }
        );
        assert_eq!(
            c.register("nan", 2, vec![f64::NAN, 1.0]).unwrap_err(),
            EngineError::NonFiniteInput {
                field: "coordinates"
            }
        );
        c.register("d", 2, unit_square()).unwrap();
        assert_eq!(
            c.append("d", &[1.0]).unwrap_err(),
            EngineError::RaggedCoordinates { dim: 2, len: 1 }
        );
        assert_eq!(
            c.append("d", &[f64::INFINITY, 0.0]).unwrap_err(),
            EngineError::NonFiniteInput {
                field: "coordinates"
            }
        );
        assert_eq!(
            c.append("nope", &[1.0, 1.0]).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
        assert_eq!(
            c.delete("nope", &[0]).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
    }

    #[test]
    fn weight_sets_are_immutable_and_validated() {
        let c = Catalog::new();
        c.register_weights("cust", vec![Weight::new(vec![0.5, 0.5])])
            .unwrap();
        assert_eq!(c.weights("cust").unwrap().len(), 1);
        assert_eq!(
            c.register_weights("cust", vec![]).unwrap_err(),
            EngineError::WeightSetExists("cust".into())
        );
        assert_eq!(
            c.weights("nope").unwrap_err(),
            EngineError::UnknownWeightSet("nope".into())
        );
        // Weight's own constructor already rejects non-finite entries;
        // the catalog's check is the backstop for any future bypass.
        assert!(crate::request::check_weight(&[f64::NAN, 1.0], "w").is_err());
        assert!(crate::request::check_weight(&[-0.5, 1.5], "w").is_err());
        assert!(crate::request::check_weight(&[0.0, 0.0], "w").is_err());
        assert!(crate::request::check_weight(&[0.3, 0.7], "w").is_ok());
    }

    #[test]
    fn dataset_names_sorted() {
        let c = Catalog::new();
        c.register("b", 1, vec![1.0]).unwrap();
        c.register("a", 1, vec![2.0]).unwrap();
        assert_eq!(c.dataset_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn mask_builds_lazily_and_separately_from_the_index() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        let h = c.handle("sq").unwrap();
        assert!(h.flat.is_quantized(), "default catalog quantizes");
        let dom = h.dom.expect("default catalog builds the mask");
        assert_eq!(dom.counts().len(), 4);
        let s = c.stats();
        assert_eq!((s.index_builds, s.mask_builds), (1, 1));
        // A second handle shares the same mask — still one build each.
        let h2 = c.handle("sq").unwrap();
        assert!(Arc::ptr_eq(&dom, h2.dom.as_ref().unwrap()));
        let s = c.stats();
        assert_eq!((s.index_builds, s.mask_builds), (1, 1));
    }

    #[test]
    fn tiers_off_catalog_serves_the_exact_reference_plane() {
        let c = Catalog::with_config(false, false);
        c.register("sq", 2, unit_square()).unwrap();
        let h = c.handle("sq").unwrap();
        assert!(h.dom.is_none(), "prefilter off: no mask");
        assert!(!h.flat.is_quantized(), "quantized off: exact f64 only");
        let s = c.stats();
        assert_eq!(s.mask_builds, 0);
        assert_eq!(s.prefilter_skips, 0);
        assert_eq!(s.quantized_fallbacks, 0);
    }

    #[test]
    fn compaction_retires_the_mask_with_its_base_generation() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        let dom1 = c.handle("sq").unwrap().dom.unwrap();
        c.append("sq", &[0.5, 0.5]).unwrap();
        let epoch = c.epoch("sq").unwrap();
        assert!(c.compact_if("sq", epoch).unwrap());
        // The fresh base generation rebuilds its mask lazily, on demand.
        assert_eq!(c.stats().mask_builds, 1);
        let dom2 = c.handle("sq").unwrap().dom.unwrap();
        assert!(!Arc::ptr_eq(&dom1, &dom2), "new base, new mask");
        assert_eq!(dom2.counts().len(), 5);
        assert_eq!(c.stats().mask_builds, 2);
    }

    #[test]
    fn concurrent_cold_handles_build_exactly_once() {
        use std::sync::Barrier;
        let c = Arc::new(Catalog::new());
        // Big enough that a build takes real time, so the race window is
        // wide open without the OnceLock.
        let n = 20_000;
        let coords: Vec<f64> = (0..n * 2).map(|i| (i % 997) as f64).collect();
        c.register("big", 2, coords).unwrap();
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    c.handle("big").unwrap()
                })
            })
            .collect();
        let built: Vec<DatasetHandle> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            c.stats().index_builds,
            1,
            "racing cold callers must share one build"
        );
        for h in &built[1..] {
            assert!(Arc::ptr_eq(&built[0].index, &h.index));
        }
    }
}
