//! The dataset catalog: named product datasets with lazily built, shared
//! R-tree indexes, plus named (immutable) customer weight populations.
//!
//! Indexes are built once on first use and shared as `Arc<RTree>` across
//! every worker — the refactored core entry points accept them directly,
//! so no request ever rebuilds an index. Each dataset carries an
//! **epoch** that mutation (re-registration, appends) bumps; the result
//! cache keys on it, so stale entries can never be served after a
//! mutation, whether or not they have been evicted yet.

use crate::error::EngineError;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use wqrtq_geom::{FlatPoints, Weight};
use wqrtq_rtree::RTree;

/// A consistent snapshot of one dataset, handed to workers.
#[derive(Clone, Debug)]
pub struct DatasetHandle {
    /// Flat row-major coordinates (what the index was built from).
    pub coords: Arc<Vec<f64>>,
    /// Dimensionality.
    pub dim: usize,
    /// Epoch at snapshot time.
    pub epoch: u64,
    /// The shared pre-built index.
    pub index: Arc<RTree>,
    /// Column-major mirror of the coordinates for the fused flat-scan
    /// kernels, built together with the index and shared the same way.
    pub flat: Arc<FlatPoints>,
}

#[derive(Debug)]
struct DatasetEntry {
    coords: Arc<Vec<f64>>,
    dim: usize,
    epoch: u64,
    /// Built on first use, dropped on mutation.
    index: Option<(Arc<RTree>, Arc<FlatPoints>)>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    datasets: HashMap<String, DatasetEntry>,
    weight_sets: HashMap<String, Arc<Vec<Weight>>>,
}

/// Thread-safe catalog of datasets and weight populations.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a dataset from a flat `n × dim` buffer.
    /// Replacement bumps the epoch and drops any built index.
    ///
    /// # Errors
    /// [`EngineError::ZeroDimension`] when `dim` is zero,
    /// [`EngineError::RaggedCoordinates`] when the buffer length is not a
    /// multiple of `dim`.
    pub fn register(&self, name: &str, dim: usize, coords: Vec<f64>) -> Result<(), EngineError> {
        if dim == 0 {
            return Err(EngineError::ZeroDimension);
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(EngineError::RaggedCoordinates {
                dim,
                len: coords.len(),
            });
        }
        let mut inner = self.inner.write().expect("catalog lock");
        let epoch = inner.datasets.get(name).map_or(1, |e| e.epoch + 1);
        inner.datasets.insert(
            name.to_string(),
            DatasetEntry {
                coords: Arc::new(coords),
                dim,
                epoch,
                index: None,
            },
        );
        Ok(())
    }

    /// Appends points to a dataset: bumps its epoch and drops the built
    /// index (rebuilt lazily on next use).
    ///
    /// # Errors
    /// [`EngineError::UnknownDataset`] / [`EngineError::RaggedCoordinates`].
    pub fn append(&self, name: &str, points: &[f64]) -> Result<(), EngineError> {
        let mut inner = self.inner.write().expect("catalog lock");
        let entry = inner
            .datasets
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        if !points.len().is_multiple_of(entry.dim) {
            return Err(EngineError::RaggedCoordinates {
                dim: entry.dim,
                len: points.len(),
            });
        }
        let mut coords = Vec::with_capacity(entry.coords.len() + points.len());
        coords.extend_from_slice(&entry.coords);
        coords.extend_from_slice(points);
        entry.coords = Arc::new(coords);
        entry.epoch += 1;
        entry.index = None;
        Ok(())
    }

    /// Registers an immutable weight population.
    ///
    /// # Errors
    /// [`EngineError::WeightSetExists`] when the name is taken —
    /// populations are immutable so cached bichromatic results keyed on
    /// the name can never go stale; register a new name instead.
    pub fn register_weights(&self, name: &str, weights: Vec<Weight>) -> Result<(), EngineError> {
        let mut inner = self.inner.write().expect("catalog lock");
        if inner.weight_sets.contains_key(name) {
            return Err(EngineError::WeightSetExists(name.to_string()));
        }
        inner
            .weight_sets
            .insert(name.to_string(), Arc::new(weights));
        Ok(())
    }

    /// A registered weight population.
    pub fn weights(&self, name: &str) -> Result<Arc<Vec<Weight>>, EngineError> {
        self.inner
            .read()
            .expect("catalog lock")
            .weight_sets
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownWeightSet(name.to_string()))
    }

    /// A consistent dataset snapshot, building the shared index on first
    /// use. The build itself runs *outside* the catalog lock, so a cold
    /// multi-million-point dataset never stalls requests against other
    /// datasets; two racing cold callers may both build, and the first
    /// to install (at an unchanged epoch) wins.
    pub fn handle(&self, name: &str) -> Result<DatasetHandle, EngineError> {
        loop {
            // Snapshot what to build under the read lock.
            let (coords, dim, epoch) = {
                let inner = self.inner.read().expect("catalog lock");
                let entry = inner
                    .datasets
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
                if let Some((index, flat)) = &entry.index {
                    return Ok(DatasetHandle {
                        coords: entry.coords.clone(),
                        dim: entry.dim,
                        epoch: entry.epoch,
                        index: index.clone(),
                        flat: flat.clone(),
                    });
                }
                (entry.coords.clone(), entry.dim, entry.epoch)
            };
            let built = (
                Arc::new(RTree::bulk_load(dim, &coords)),
                Arc::new(FlatPoints::from_row_major(dim, &coords)),
            );
            // Install only if the dataset is still at the snapshotted
            // epoch; on a concurrent mutation the build is stale — drop
            // it and retry against the new coordinates.
            let mut inner = self.inner.write().expect("catalog lock");
            let entry = inner
                .datasets
                .get_mut(name)
                .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
            if entry.epoch != epoch {
                continue;
            }
            let (index, flat) = match &entry.index {
                Some(pair) => pair.clone(), // another builder won the race
                None => {
                    entry.index = Some(built.clone());
                    built
                }
            };
            return Ok(DatasetHandle {
                coords: entry.coords.clone(),
                dim: entry.dim,
                epoch,
                index,
                flat,
            });
        }
    }

    /// Current epoch of a dataset.
    pub fn epoch(&self, name: &str) -> Result<u64, EngineError> {
        self.inner
            .read()
            .expect("catalog lock")
            .datasets
            .get(name)
            .map(|e| e.epoch)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .read()
            .expect("catalog lock")
            .datasets
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Whether a dataset's index is currently built.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("catalog lock")
            .datasets
            .get(name)
            .is_some_and(|e| e.index.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<f64> {
        vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]
    }

    #[test]
    fn register_and_lazy_index() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        assert!(!c.is_indexed("sq"));
        let h = c.handle("sq").unwrap();
        assert_eq!(h.dim, 2);
        assert_eq!(h.epoch, 1);
        assert_eq!(h.index.len(), 4);
        assert!(c.is_indexed("sq"));
        // Second handle shares the same index.
        let h2 = c.handle("sq").unwrap();
        assert!(Arc::ptr_eq(&h.index, &h2.index));
    }

    #[test]
    fn append_bumps_epoch_and_drops_index() {
        let c = Catalog::new();
        c.register("sq", 2, unit_square()).unwrap();
        let h1 = c.handle("sq").unwrap();
        c.append("sq", &[0.5, 0.5]).unwrap();
        assert!(!c.is_indexed("sq"));
        let h2 = c.handle("sq").unwrap();
        assert_eq!(h2.epoch, 2);
        assert_eq!(h2.index.len(), 5);
        // The old handle still sees its consistent snapshot.
        assert_eq!(h1.epoch, 1);
        assert_eq!(h1.index.len(), 4);
    }

    #[test]
    fn reregister_bumps_epoch() {
        let c = Catalog::new();
        c.register("d", 2, unit_square()).unwrap();
        c.register("d", 3, vec![0.0; 9]).unwrap();
        assert_eq!(c.epoch("d").unwrap(), 2);
        assert_eq!(c.handle("d").unwrap().dim, 3);
    }

    #[test]
    fn errors_are_typed() {
        let c = Catalog::new();
        assert_eq!(
            c.handle("nope").unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
        assert_eq!(
            c.register("z", 0, vec![]).unwrap_err(),
            EngineError::ZeroDimension
        );
        assert_eq!(
            c.register("r", 3, vec![1.0, 2.0]).unwrap_err(),
            EngineError::RaggedCoordinates { dim: 3, len: 2 }
        );
        c.register("d", 2, unit_square()).unwrap();
        assert_eq!(
            c.append("d", &[1.0]).unwrap_err(),
            EngineError::RaggedCoordinates { dim: 2, len: 1 }
        );
        assert_eq!(
            c.append("nope", &[1.0, 1.0]).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
    }

    #[test]
    fn weight_sets_are_immutable() {
        let c = Catalog::new();
        c.register_weights("cust", vec![Weight::new(vec![0.5, 0.5])])
            .unwrap();
        assert_eq!(c.weights("cust").unwrap().len(), 1);
        assert_eq!(
            c.register_weights("cust", vec![]).unwrap_err(),
            EngineError::WeightSetExists("cust".into())
        );
        assert_eq!(
            c.weights("nope").unwrap_err(),
            EngineError::UnknownWeightSet("nope".into())
        );
    }

    #[test]
    fn dataset_names_sorted() {
        let c = Catalog::new();
        c.register("b", 1, vec![1.0]).unwrap();
        c.register("a", 1, vec![2.0]).unwrap();
        assert_eq!(c.dataset_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
