//! Per-request metrics, aggregated lock-free and exposed as a snapshot.
//!
//! Workers record one observation per request: latency, index nodes
//! expanded (the paper's `|RT|` cost term, via `rtree` traversal
//! counters where the primitive reports them) and whether the result
//! came from the cache. [`MetricsSnapshot`] is a consistent-enough
//! point-in-time read for dashboards and tests; cache counters live in
//! [`crate::ResultCache`] and are merged into the snapshot by the engine.

use crate::cache::CacheStats;
use crate::catalog::CatalogStats;
use crate::request::RequestKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[derive(Debug, Default)]
struct KindCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    index_nodes: AtomicU64,
    cache_hits: AtomicU64,
}

/// Lock-free metric accumulators shared by all workers.
#[derive(Debug, Default)]
pub struct Metrics {
    kinds: [KindCounters; RequestKind::ALL.len()],
    batches: AtomicU64,
    /// Requests submitted through the non-blocking completion-routed
    /// path ([`crate::Engine::submit_with`]) — the serving layer's
    /// pipelined traffic, as opposed to blocking batches.
    async_submits: AtomicU64,
    /// Requests served with a warm per-worker scratch (buffers reused
    /// instead of allocated) — the zero-allocation hot path's health
    /// signal.
    scratch_reuses: AtomicU64,
    /// RTA shards executed for parallelised bichromatic requests.
    parallel_shards: AtomicU64,
    /// Bichromatic requests that were fanned across the worker pool.
    sharded_requests: AtomicU64,
    /// Requests executed against a non-empty delta overlay (appends or
    /// tombstones folded into the answer without a rebuild).
    delta_hits: AtomicU64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(
        &self,
        kind: RequestKind,
        latency: Duration,
        index_nodes: usize,
        cache_hit: bool,
        error: bool,
    ) {
        let c = &self.kinds[kind.index()];
        let nanos = latency.as_nanos() as u64;
        c.requests.fetch_add(1, Ordering::Relaxed);
        c.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        c.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        c.index_nodes
            .fetch_add(index_nodes as u64, Ordering::Relaxed);
        if cache_hit {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        if error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one submitted batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one non-blocking (completion-routed) submission.
    pub fn record_async_submit(&self) {
        self.async_submits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request served on a warm (reused) worker scratch.
    pub fn record_scratch_reuse(&self) {
        self.scratch_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one bichromatic request fanned into `shards` pool shards.
    pub fn record_sharded_request(&self, shards: u64) {
        self.sharded_requests.fetch_add(1, Ordering::Relaxed);
        self.parallel_shards.fetch_add(shards, Ordering::Relaxed);
    }

    /// Records one request answered through a non-empty delta overlay.
    pub fn record_delta_hit(&self) {
        self.delta_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot, merged with the cache's and catalog's
    /// counters.
    pub fn snapshot(&self, cache: CacheStats, catalog: CatalogStats) -> MetricsSnapshot {
        let per_kind = RequestKind::ALL
            .iter()
            .map(|&kind| {
                let c = &self.kinds[kind.index()];
                KindSnapshot {
                    kind,
                    requests: c.requests.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                    total_latency: Duration::from_nanos(c.total_nanos.load(Ordering::Relaxed)),
                    max_latency: Duration::from_nanos(c.max_nanos.load(Ordering::Relaxed)),
                    index_nodes: c.index_nodes.load(Ordering::Relaxed),
                    cache_hits: c.cache_hits.load(Ordering::Relaxed),
                }
            })
            .collect();
        MetricsSnapshot {
            per_kind,
            batches: self.batches.load(Ordering::Relaxed),
            async_submits: self.async_submits.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            parallel_shards: self.parallel_shards.load(Ordering::Relaxed),
            sharded_requests: self.sharded_requests.load(Ordering::Relaxed),
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            catalog,
            cache,
        }
    }
}

/// Aggregates for one request kind.
#[derive(Clone, Copy, Debug)]
pub struct KindSnapshot {
    /// The kind.
    pub kind: RequestKind,
    /// Requests served (including errors and cache hits).
    pub requests: u64,
    /// Requests answered with [`crate::Response::Error`].
    pub errors: u64,
    /// Summed latency.
    pub total_latency: Duration,
    /// Worst single-request latency.
    pub max_latency: Duration,
    /// Index nodes expanded (where the primitive reports it; refinement
    /// requests run composite algorithms and report 0).
    pub index_nodes: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
}

impl KindSnapshot {
    /// Mean latency (zero when no requests).
    pub fn avg_latency(&self) -> Duration {
        // u64 nanosecond arithmetic: `Duration / u32` would truncate the
        // divisor (and panic on 2^32 requests).
        match (self.total_latency.as_nanos() as u64).checked_div(self.requests) {
            Some(nanos) => Duration::from_nanos(nanos),
            None => Duration::ZERO,
        }
    }
}

/// Point-in-time engine metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// One row per request kind (fixed order of [`RequestKind::ALL`]).
    pub per_kind: Vec<KindSnapshot>,
    /// Batches submitted.
    pub batches: u64,
    /// Requests submitted through [`crate::Engine::submit_with`].
    pub async_submits: u64,
    /// Requests served on a warm (reused) per-worker scratch — each one
    /// is a request that allocated no fresh score/probe buffers.
    pub scratch_reuses: u64,
    /// RTA shards executed for pool-parallelised bichromatic requests.
    pub parallel_shards: u64,
    /// Bichromatic requests fanned across the worker pool.
    pub sharded_requests: u64,
    /// Requests answered through a non-empty delta overlay.
    pub delta_hits: u64,
    /// Catalog build/mutation counters (index builds, rebuilds avoided,
    /// compactions).
    pub catalog: CatalogStats,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Total requests across kinds.
    pub fn total_requests(&self) -> u64 {
        self.per_kind.iter().map(|k| k.requests).sum()
    }

    /// Total index nodes expanded across kinds.
    pub fn total_index_nodes(&self) -> u64 {
        self.per_kind.iter().map(|k| k.index_nodes).sum()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine metrics: {} requests in {} batches (+{} async), cache {}/{} hit rate {:.1}% ({} entries)",
            self.total_requests(),
            self.batches,
            self.async_submits,
            self.cache.hits,
            self.cache.hits + self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.len,
        )?;
        writeln!(
            f,
            "  scratch reuse {} requests, {} bichromatic requests sharded into {} pool shards",
            self.scratch_reuses, self.sharded_requests, self.parallel_shards,
        )?;
        writeln!(
            f,
            "  overlay: {} delta hits, {} rebuilds avoided, {} index builds, {} compactions ({} abandoned)",
            self.delta_hits,
            self.catalog.rebuilds_avoided,
            self.catalog.index_builds,
            self.catalog.compactions,
            self.catalog.compactions_abandoned,
        )?;
        writeln!(
            f,
            "  {:<16} {:>8} {:>7} {:>12} {:>12} {:>12} {:>10}",
            "kind", "requests", "errors", "avg latency", "max latency", "index nodes", "cache hits"
        )?;
        for k in &self.per_kind {
            if k.requests == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<16} {:>8} {:>7} {:>12} {:>12} {:>12} {:>10}",
                k.kind.name(),
                k.requests,
                k.errors,
                format!("{:.1?}", k.avg_latency()),
                format!("{:.1?}", k.max_latency),
                k.index_nodes,
                k.cache_hits,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_cache_stats() -> CacheStats {
        CacheStats {
            hits: 0,
            misses: 0,
            len: 0,
            capacity: 8,
        }
    }

    fn empty_catalog_stats() -> CatalogStats {
        CatalogStats::default()
    }

    #[test]
    fn record_aggregates_per_kind() {
        let m = Metrics::new();
        m.record(
            RequestKind::TopK,
            Duration::from_micros(10),
            5,
            false,
            false,
        );
        m.record(RequestKind::TopK, Duration::from_micros(30), 7, true, false);
        m.record(
            RequestKind::WhyNotRefine,
            Duration::from_millis(2),
            0,
            false,
            true,
        );
        m.record_batch();
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.batches, 1);
        assert_eq!(s.total_index_nodes(), 12);
        let topk = &s.per_kind[RequestKind::TopK.index()];
        assert_eq!(topk.requests, 2);
        assert_eq!(topk.cache_hits, 1);
        assert_eq!(topk.avg_latency(), Duration::from_micros(20));
        assert_eq!(topk.max_latency, Duration::from_micros(30));
        let refine = &s.per_kind[RequestKind::WhyNotRefine.index()];
        assert_eq!(refine.errors, 1);
    }

    #[test]
    fn display_renders_only_active_kinds() {
        let m = Metrics::new();
        m.record(
            RequestKind::TopK,
            Duration::from_micros(10),
            5,
            false,
            false,
        );
        let text = m
            .snapshot(empty_cache_stats(), empty_catalog_stats())
            .to_string();
        assert!(text.contains("topk"));
        assert!(!text.contains("whynot-refine"));
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let m = Metrics::new();
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.per_kind[0].avg_latency(), Duration::ZERO);
    }
}
