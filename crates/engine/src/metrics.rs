//! Per-request metrics, aggregated lock-free and exposed as a snapshot.
//!
//! Workers record one observation per request: latency (into a
//! log-linear [`Histogram`] per kind, so snapshots answer p50/p90/p99
//! instead of mean-only), index nodes expanded (the paper's `|RT|` cost
//! term, via `rtree` traversal counters where the primitive reports
//! them) and whether the result came from the cache. Pipeline stages
//! (queue wait, cache lookup, index probe, …) feed a second histogram
//! family keyed by [`Stage`]. [`MetricsSnapshot`] is a
//! consistent-enough point-in-time read for dashboards and tests; once
//! workers quiesce it is exact, which is what the wire `Stats`
//! differential test relies on. Cache counters live in
//! [`crate::ResultCache`] and are merged into the snapshot by the engine.

use crate::cache::CacheStats;
use crate::catalog::CatalogStats;
use crate::request::RequestKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wqrtq_obs::{Histogram, HistogramSnapshot, Stage};

#[derive(Debug, Default)]
struct KindCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
    index_nodes: AtomicU64,
    cache_hits: AtomicU64,
}

/// Lock-free metric accumulators shared by all workers.
#[derive(Debug, Default)]
pub struct Metrics {
    kinds: [KindCounters; RequestKind::ALL.len()],
    /// Latency per pipeline stage ([`Stage::ALL`] order), recorded by
    /// whichever layer owns the stage (workers for queue wait / cache
    /// lookup / execute, the server for admission / serialize).
    stages: [Histogram; Stage::COUNT],
    batches: AtomicU64,
    /// Requests submitted through the non-blocking completion-routed
    /// path ([`crate::Engine::submit_with`]) — the serving layer's
    /// pipelined traffic, as opposed to blocking batches.
    async_submits: AtomicU64,
    /// Requests served with a warm per-worker scratch (buffers reused
    /// instead of allocated) — the zero-allocation hot path's health
    /// signal.
    scratch_reuses: AtomicU64,
    /// RTA shards executed for parallelised bichromatic requests.
    parallel_shards: AtomicU64,
    /// Bichromatic requests that were fanned across the worker pool.
    sharded_requests: AtomicU64,
    /// Requests executed against a non-empty delta overlay (appends or
    /// tombstones folded into the answer without a rebuild).
    delta_hits: AtomicU64,
}

impl Metrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request.
    pub fn record(
        &self,
        kind: RequestKind,
        latency: Duration,
        index_nodes: usize,
        cache_hit: bool,
        error: bool,
    ) {
        let c = &self.kinds[kind.index()];
        c.requests.fetch_add(1, Ordering::Relaxed);
        c.latency.record_duration(latency);
        c.index_nodes
            .fetch_add(index_nodes as u64, Ordering::Relaxed);
        if cache_hit {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        if error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one pipeline-stage latency observation.
    pub fn record_stage(&self, stage: Stage, latency: Duration) {
        self.stages[stage.index()].record_duration(latency);
    }

    /// Records one submitted batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one non-blocking (completion-routed) submission.
    pub fn record_async_submit(&self) {
        self.async_submits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request served on a warm (reused) worker scratch.
    pub fn record_scratch_reuse(&self) {
        self.scratch_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one bichromatic request fanned into `shards` pool shards.
    pub fn record_sharded_request(&self, shards: u64) {
        self.sharded_requests.fetch_add(1, Ordering::Relaxed);
        self.parallel_shards.fetch_add(shards, Ordering::Relaxed);
    }

    /// Records one request answered through a non-empty delta overlay.
    pub fn record_delta_hit(&self) {
        self.delta_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot, merged with the cache's and catalog's
    /// counters.
    pub fn snapshot(&self, cache: CacheStats, catalog: CatalogStats) -> MetricsSnapshot {
        let per_kind = RequestKind::ALL
            .iter()
            .map(|&kind| {
                let c = &self.kinds[kind.index()];
                KindSnapshot {
                    kind,
                    requests: c.requests.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                    latency: c.latency.snapshot(),
                    index_nodes: c.index_nodes.load(Ordering::Relaxed),
                    cache_hits: c.cache_hits.load(Ordering::Relaxed),
                }
            })
            .collect();
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageSnapshot {
                stage,
                latency: self.stages[stage.index()].snapshot(),
            })
            .collect();
        MetricsSnapshot {
            per_kind,
            stages,
            batches: self.batches.load(Ordering::Relaxed),
            async_submits: self.async_submits.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            parallel_shards: self.parallel_shards.load(Ordering::Relaxed),
            sharded_requests: self.sharded_requests.load(Ordering::Relaxed),
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            catalog,
            cache,
        }
    }
}

/// Aggregates for one request kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KindSnapshot {
    /// The kind.
    pub kind: RequestKind,
    /// Requests served (including errors and cache hits).
    pub requests: u64,
    /// Requests answered with [`crate::Response::Error`].
    pub errors: u64,
    /// The full latency distribution (p50/p90/p99/max within the
    /// histogram's relative-error bound; max is exact).
    pub latency: HistogramSnapshot,
    /// Index nodes expanded (where the primitive reports it; refinement
    /// requests run composite algorithms and report 0).
    pub index_nodes: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
}

impl KindSnapshot {
    /// Mean latency (zero when no requests).
    pub fn avg_latency(&self) -> Duration {
        Duration::from_nanos(self.latency.mean())
    }

    /// Worst single-request latency (exact, not bucketed).
    pub fn max_latency(&self) -> Duration {
        Duration::from_nanos(self.latency.max)
    }
}

/// Aggregates for one pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// The stage.
    pub stage: Stage,
    /// The stage's latency distribution.
    pub latency: HistogramSnapshot,
}

/// Point-in-time engine metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One row per request kind (fixed order of [`RequestKind::ALL`]).
    pub per_kind: Vec<KindSnapshot>,
    /// One row per pipeline stage (fixed order of [`Stage::ALL`]).
    pub stages: Vec<StageSnapshot>,
    /// Batches submitted.
    pub batches: u64,
    /// Requests submitted through [`crate::Engine::submit_with`].
    pub async_submits: u64,
    /// Requests served on a warm (reused) per-worker scratch — each one
    /// is a request that allocated no fresh score/probe buffers.
    pub scratch_reuses: u64,
    /// RTA shards executed for pool-parallelised bichromatic requests.
    pub parallel_shards: u64,
    /// Bichromatic requests fanned across the worker pool.
    pub sharded_requests: u64,
    /// Requests answered through a non-empty delta overlay.
    pub delta_hits: u64,
    /// Catalog build/mutation counters (index builds, rebuilds avoided,
    /// compactions).
    pub catalog: CatalogStats,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Total requests across kinds.
    pub fn total_requests(&self) -> u64 {
        self.per_kind.iter().map(|k| k.requests).sum()
    }

    /// Total index nodes expanded across kinds.
    pub fn total_index_nodes(&self) -> u64 {
        self.per_kind.iter().map(|k| k.index_nodes).sum()
    }

    /// Every kind's latency histogram folded into one distribution —
    /// the engine-wide percentiles the benches report.
    pub fn merged_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for k in &self.per_kind {
            merged.merge(&k.latency);
        }
        merged
    }

    /// The latency distribution of one pipeline stage.
    pub fn stage_latency(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()].latency
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the
    /// workspace is std-only).
    pub fn to_json(&self) -> String {
        let kinds: Vec<String> = self
            .per_kind
            .iter()
            .filter(|k| k.requests > 0)
            .map(|k| {
                format!(
                    concat!(
                        "{{\"kind\": \"{}\", \"requests\": {}, \"errors\": {}, ",
                        "\"index_nodes\": {}, \"cache_hits\": {}, \"latency\": {}}}"
                    ),
                    k.kind.name(),
                    k.requests,
                    k.errors,
                    k.index_nodes,
                    k.cache_hits,
                    k.latency.to_json()
                )
            })
            .collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .filter(|s| s.latency.count > 0)
            .map(|s| format!("\"{}\": {}", s.stage.name(), s.latency.to_json()))
            .collect();
        format!(
            concat!(
                "{{\"total_requests\": {}, \"batches\": {}, \"async_submits\": {}, ",
                "\"scratch_reuses\": {}, \"parallel_shards\": {}, \"sharded_requests\": {}, ",
                "\"delta_hits\": {}, ",
                "\"cache\": {{\"hits\": {}, \"misses\": {}, \"len\": {}, \"capacity\": {}}}, ",
                "\"catalog\": {{\"index_builds\": {}, \"rebuilds_avoided\": {}, ",
                "\"compactions\": {}, \"compactions_abandoned\": {}, ",
                "\"mask_builds\": {}, \"prefilter_skips\": {}, ",
                "\"quantized_fallbacks\": {}, ",
                "\"wal_appends\": {}, \"snapshot_writes\": {}, ",
                "\"recoveries\": {}, \"wal_replayed\": {}}}, ",
                "\"per_kind\": [{}], \"stages\": {{{}}}}}"
            ),
            self.total_requests(),
            self.batches,
            self.async_submits,
            self.scratch_reuses,
            self.parallel_shards,
            self.sharded_requests,
            self.delta_hits,
            self.cache.hits,
            self.cache.misses,
            self.cache.len,
            self.cache.capacity,
            self.catalog.index_builds,
            self.catalog.rebuilds_avoided,
            self.catalog.compactions,
            self.catalog.compactions_abandoned,
            self.catalog.mask_builds,
            self.catalog.prefilter_skips,
            self.catalog.quantized_fallbacks,
            self.catalog.wal_appends,
            self.catalog.snapshot_writes,
            self.catalog.recoveries,
            self.catalog.wal_replayed,
            kinds.join(", "),
            stages.join(", "),
        )
    }
}

/// Server-side counters carried in a [`StatsSnapshot`] when the stats
/// request arrived over the wire (mirrors the server crate's aggregate
/// stats; plain data here so the engine can speak the type without
/// depending on the server).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Currently open connections.
    pub connections_open: u64,
    /// Frames read across all connections.
    pub frames_in: u64,
    /// Frames written across all connections.
    pub frames_out: u64,
    /// Submissions refused with `Busy`.
    pub busy_rejections: u64,
    /// Malformed frames answered with `ProtocolError`.
    pub protocol_errors: u64,
    /// Requests admitted but not yet completed.
    pub in_flight: u64,
    /// `read(2)` calls the event loops issued across all connections —
    /// `frames_in / read_syscalls` is the decode amortisation ratio.
    pub read_syscalls: u64,
    /// `write(2)`/`writev(2)` calls issued across all connections —
    /// `frames_out / write_syscalls` is the reply-coalescing ratio.
    pub write_syscalls: u64,
}

impl ServerCounters {
    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"connections_accepted\": {}, \"connections_open\": {}, ",
                "\"frames_in\": {}, \"frames_out\": {}, \"busy_rejections\": {}, ",
                "\"protocol_errors\": {}, \"in_flight\": {}, ",
                "\"read_syscalls\": {}, \"write_syscalls\": {}}}"
            ),
            self.connections_accepted,
            self.connections_open,
            self.frames_in,
            self.frames_out,
            self.busy_rejections,
            self.protocol_errors,
            self.in_flight,
            self.read_syscalls,
            self.write_syscalls,
        )
    }
}

/// The payload of a [`crate::Response::Stats`]: the engine's merged
/// metrics, plus the front door's counters when the request came over
/// the wire (`None` for in-process callers — the engine has no server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// The engine metrics at the serving worker's point in time.
    pub metrics: MetricsSnapshot,
    /// Server counters, injected by the server before serialization.
    pub server: Option<ServerCounters>,
}

impl StatsSnapshot {
    /// Renders the payload as a JSON object.
    pub fn to_json(&self) -> String {
        match self.server {
            Some(server) => format!(
                "{{\"engine\": {}, \"server\": {}}}",
                self.metrics.to_json(),
                server.to_json()
            ),
            None => format!("{{\"engine\": {}}}", self.metrics.to_json()),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine metrics: {} requests in {} batches (+{} async), cache {}/{} hit rate {:.1}% ({} entries)",
            self.total_requests(),
            self.batches,
            self.async_submits,
            self.cache.hits,
            self.cache.hits + self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.len,
        )?;
        writeln!(
            f,
            "  scratch reuse {} requests, {} bichromatic requests sharded into {} pool shards",
            self.scratch_reuses, self.sharded_requests, self.parallel_shards,
        )?;
        writeln!(
            f,
            "  overlay: {} delta hits, {} rebuilds avoided, {} index builds, {} compactions ({} abandoned)",
            self.delta_hits,
            self.catalog.rebuilds_avoided,
            self.catalog.index_builds,
            self.catalog.compactions,
            self.catalog.compactions_abandoned,
        )?;
        writeln!(
            f,
            "  two-tier: {} mask builds, {} prefilter skips, {} quantized fallbacks",
            self.catalog.mask_builds,
            self.catalog.prefilter_skips,
            self.catalog.quantized_fallbacks,
        )?;
        writeln!(
            f,
            "  durability: {} wal appends, {} snapshots, {} recoveries ({} records replayed)",
            self.catalog.wal_appends,
            self.catalog.snapshot_writes,
            self.catalog.recoveries,
            self.catalog.wal_replayed,
        )?;
        writeln!(
            f,
            "  {:<16} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "kind", "requests", "errors", "p50", "p99", "max latency", "index nodes", "cache hits"
        )?;
        for k in &self.per_kind {
            if k.requests == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<16} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
                k.kind.name(),
                k.requests,
                k.errors,
                format!("{:.1?}", Duration::from_nanos(k.latency.p50())),
                format!("{:.1?}", Duration::from_nanos(k.latency.p99())),
                format!("{:.1?}", k.max_latency()),
                k.index_nodes,
                k.cache_hits,
            )?;
        }
        for s in &self.stages {
            if s.latency.count == 0 {
                continue;
            }
            writeln!(
                f,
                "  stage {:<12} {:>8} observations, p50 {:.1?} p99 {:.1?} max {:.1?}",
                s.stage.name(),
                s.latency.count,
                Duration::from_nanos(s.latency.p50()),
                Duration::from_nanos(s.latency.p99()),
                Duration::from_nanos(s.latency.max),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_cache_stats() -> CacheStats {
        CacheStats {
            hits: 0,
            misses: 0,
            len: 0,
            capacity: 8,
        }
    }

    fn empty_catalog_stats() -> CatalogStats {
        CatalogStats::default()
    }

    #[test]
    fn record_aggregates_per_kind() {
        let m = Metrics::new();
        m.record(
            RequestKind::TopK,
            Duration::from_micros(10),
            5,
            false,
            false,
        );
        m.record(RequestKind::TopK, Duration::from_micros(30), 7, true, false);
        m.record(
            RequestKind::WhyNotRefine,
            Duration::from_millis(2),
            0,
            false,
            true,
        );
        m.record_batch();
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.batches, 1);
        assert_eq!(s.total_index_nodes(), 12);
        let topk = &s.per_kind[RequestKind::TopK.index()];
        assert_eq!(topk.requests, 2);
        assert_eq!(topk.cache_hits, 1);
        assert_eq!(topk.avg_latency(), Duration::from_micros(20));
        assert_eq!(topk.max_latency(), Duration::from_micros(30));
        let refine = &s.per_kind[RequestKind::WhyNotRefine.index()];
        assert_eq!(refine.errors, 1);
    }

    #[test]
    fn kind_histogram_answers_percentiles_within_the_bound() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record(
                RequestKind::TopK,
                Duration::from_micros(us),
                0,
                false,
                false,
            );
        }
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        let h = &s.per_kind[RequestKind::TopK.index()].latency;
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 100_000);
        let p50 = h.p50() as f64;
        assert!(
            (p50 - 50_000.0).abs() <= 50_000.0 * wqrtq_obs::RELATIVE_ERROR_BOUND,
            "p50 {p50}"
        );
    }

    #[test]
    fn stage_recordings_land_in_their_own_histograms() {
        let m = Metrics::new();
        m.record_stage(Stage::QueueWait, Duration::from_micros(3));
        m.record_stage(Stage::QueueWait, Duration::from_micros(5));
        m.record_stage(Stage::Execute, Duration::from_micros(40));
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        assert_eq!(s.stage_latency(Stage::QueueWait).count, 2);
        assert_eq!(s.stage_latency(Stage::Execute).count, 1);
        assert_eq!(s.stage_latency(Stage::CacheLookup).count, 0);
        assert_eq!(s.stages.len(), Stage::COUNT);
    }

    #[test]
    fn display_renders_only_active_kinds() {
        let m = Metrics::new();
        m.record(
            RequestKind::TopK,
            Duration::from_micros(10),
            5,
            false,
            false,
        );
        let text = m
            .snapshot(empty_cache_stats(), empty_catalog_stats())
            .to_string();
        assert!(text.contains("topk"));
        assert!(!text.contains("whynot-refine"));
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let m = Metrics::new();
        let s = m.snapshot(empty_cache_stats(), empty_catalog_stats());
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.per_kind[0].avg_latency(), Duration::ZERO);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough_to_nest() {
        let m = Metrics::new();
        m.record(
            RequestKind::TopK,
            Duration::from_micros(10),
            5,
            false,
            false,
        );
        m.record_stage(Stage::Execute, Duration::from_micros(9));
        let snap = StatsSnapshot {
            metrics: m.snapshot(empty_cache_stats(), empty_catalog_stats()),
            server: Some(ServerCounters {
                frames_in: 3,
                ..ServerCounters::default()
            }),
        };
        let json = snap.to_json();
        assert!(json.contains("\"engine\""));
        assert!(json.contains("\"server\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"execute\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }
}
