//! Storage backends: where the WAL and snapshot bytes actually live.
//!
//! [`Durability`](super::Durability) speaks this narrow trait so the
//! formats, recovery logic, and crash-window reasoning are identical
//! whether the bytes sit on disk ([`DiskBackend`]) or in a shared
//! buffer ([`MemBackend`]). The in-memory backend is what the torn-write
//! and corrupt-corpus tests use for byte-level surgery without touching
//! a filesystem — and it keeps the default engine configuration (no
//! `data_dir`) truly zero-cost, because no backend is constructed at
//! all in that case.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// WAL file name inside a [`DiskBackend`] data directory.
pub const WAL_FILE: &str = "wal.log";

/// Snapshot file name inside a [`DiskBackend`] data directory.
pub const SNAPSHOT_FILE: &str = "catalog.snap";

/// Temp name the snapshot is staged under before its atomic rename.
pub const SNAPSHOT_TMP_FILE: &str = "catalog.snap.tmp";

/// Byte-level storage for one engine's WAL + snapshot pair.
///
/// Implementations must make `install_checkpoint` crash-safe: a crash
/// at any point leaves either the old (snapshot, WAL) pair or the new
/// one observable — never a half-written snapshot. Leaving *stale* WAL
/// records behind the new snapshot is fine (recovery skips records at
/// or below the snapshot's LSN); losing acknowledged records is not.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// The full current WAL image.
    fn wal_bytes(&self) -> io::Result<Vec<u8>>;

    /// Appends one framed record; when `sync` is set the bytes are
    /// durable (fsynced) before returning.
    fn wal_append(&self, record: &[u8], sync: bool) -> io::Result<()>;

    /// Truncates the WAL to `len` bytes (cutting a torn tail after a
    /// crash) and makes the truncation durable.
    fn wal_truncate(&self, len: u64) -> io::Result<()>;

    /// The current snapshot image, or `None` when none was ever
    /// installed.
    fn snapshot_bytes(&self) -> io::Result<Option<Vec<u8>>>;

    /// Atomically installs `snapshot` as the current image, then resets
    /// the WAL to empty. See the trait docs for the crash contract.
    fn install_checkpoint(&self, snapshot: &[u8]) -> io::Result<()>;

    /// Flushes any buffered WAL bytes durably (the graceful-shutdown
    /// path — under [`super::FsyncPolicy::Never`] this is the only sync
    /// that ever runs).
    fn sync(&self) -> io::Result<()>;
}

/// Files in a data directory: `wal.log` + `catalog.snap`.
pub struct DiskBackend {
    dir: PathBuf,
    /// Kept open in append mode for the life of the engine — one open
    /// file descriptor, not one `open(2)` per mutation.
    wal: Mutex<File>,
}

impl fmt::Debug for DiskBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskBackend")
            .field("dir", &self.dir)
            .finish()
    }
}

impl DiskBackend {
    /// Opens (creating as needed) the data directory and its WAL file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(Self {
            dir,
            wal: Mutex::new(wal),
        })
    }

    /// The data directory this backend writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fsyncs the directory entry itself, so a rename or truncation
    /// survives a crash of the metadata journal. Best-effort on
    /// platforms where directories cannot be opened.
    fn sync_dir(&self) -> io::Result<()> {
        match File::open(&self.dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

impl StorageBackend for DiskBackend {
    fn wal_bytes(&self) -> io::Result<Vec<u8>> {
        fs::read(self.dir.join(WAL_FILE))
    }

    fn wal_append(&self, record: &[u8], sync: bool) -> io::Result<()> {
        let mut wal = self.wal.lock().expect("wal file lock");
        wal.write_all(record)?;
        if sync {
            wal.sync_data()?;
        }
        Ok(())
    }

    fn wal_truncate(&self, len: u64) -> io::Result<()> {
        let wal = self.wal.lock().expect("wal file lock");
        wal.set_len(len)?;
        wal.sync_data()
    }

    fn snapshot_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn install_checkpoint(&self, snapshot: &[u8]) -> io::Result<()> {
        // Stage, fsync, rename, fsync the directory: a crash anywhere in
        // this sequence leaves either the old image (rename not yet
        // durable) or the new one — never a torn snapshot.
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(snapshot)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.sync_dir()?;
        // Only now retire the log: records at or below the snapshot's
        // LSN are skipped on replay anyway, so a crash *before* this
        // truncation merely replays no-ops.
        self.wal_truncate(0)
    }

    fn sync(&self) -> io::Result<()> {
        self.wal.lock().expect("wal file lock").sync_data()
    }
}

#[derive(Debug, Default)]
struct MemState {
    wal: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

/// An in-memory backend: the WAL and snapshot live in a shared buffer.
///
/// Clones share the same buffers, so "restarting" is dropping one
/// [`super::Durability`] and opening another over a clone — exactly the
/// crash-recovery cycle, minus the filesystem. [`MemBackend::mutate_wal`]
/// exposes the raw image for the torn-write and corrupt-corpus tests to
/// damage surgically.
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    state: Arc<Mutex<MemState>>,
}

impl MemBackend {
    /// A fresh, empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` over the raw WAL image (test corruption hook).
    pub fn mutate_wal(&self, f: impl FnOnce(&mut Vec<u8>)) {
        f(&mut self.state.lock().expect("mem state lock").wal)
    }

    /// Runs `f` over the raw snapshot image (test corruption hook).
    pub fn mutate_snapshot(&self, f: impl FnOnce(&mut Option<Vec<u8>>)) {
        f(&mut self.state.lock().expect("mem state lock").snapshot)
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.state.lock().expect("mem state lock").wal.len()
    }
}

impl StorageBackend for MemBackend {
    fn wal_bytes(&self) -> io::Result<Vec<u8>> {
        Ok(self.state.lock().expect("mem state lock").wal.clone())
    }

    fn wal_append(&self, record: &[u8], _sync: bool) -> io::Result<()> {
        self.state
            .lock()
            .expect("mem state lock")
            .wal
            .extend_from_slice(record);
        Ok(())
    }

    fn wal_truncate(&self, len: u64) -> io::Result<()> {
        self.state
            .lock()
            .expect("mem state lock")
            .wal
            .truncate(len as usize);
        Ok(())
    }

    fn snapshot_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.state.lock().expect("mem state lock").snapshot.clone())
    }

    fn install_checkpoint(&self, snapshot: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("mem state lock");
        state.snapshot = Some(snapshot.to_vec());
        state.wal.clear();
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}
