//! Snapshot format: one full catalog image, written atomically.
//!
//! ```text
//! +----------+--------------+-----------+---------------------+
//! | "WQSN"   | version: u8  | crc: u32  | body (rest of file) |
//! +----------+--------------+-----------+---------------------+
//! ```
//!
//! The body carries the WAL position the image covers (`last_lsn` —
//! recovery replays only records beyond it) and the complete catalog
//! state: every dataset's base coordinates *and* its live overlay
//! (delta memtable + tombstones) *and* its monotone `appends`/`deletes`
//! counters, plus every weight population. Persisting the counters is
//! what lets recovery resume the **exact epoch triple**: `appends` is
//! also the delta id allocator, and it is not derivable from the live
//! delta ids once rows have been deleted.
//!
//! Snapshots are never written in place — the backend writes a temp
//! file, fsyncs, and renames over the old image, so a crash mid-snapshot
//! leaves the previous (snapshot, WAL) pair fully intact. Unlike the
//! WAL, a snapshot that fails its CRC is **structural corruption**, not
//! a torn tail: the atomic install means no partially written snapshot
//! can ever be observed, so damage here is a typed error, never silently
//! dropped state.

use wqrtq_codec::{crc32, ByteReader, ByteWriter, DecodeError};

/// Snapshot file magic (`WQSN` — WQRTQ snapshot).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"WQSN";

/// Snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u8 = 1;

/// One dataset's complete durable state.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetState {
    /// Dataset name.
    pub name: String,
    /// Dimensionality.
    pub dim: u64,
    /// Base generation counter.
    pub base_epoch: u64,
    /// Appends since the base was built (monotone; the delta id
    /// allocator).
    pub appends: u64,
    /// Deletes since the base was built (monotone).
    pub deletes: u64,
    /// Flat row-major base coordinates.
    pub base_coords: Vec<f64>,
    /// Live appended rows (row-major, parallel to `delta_ids`).
    pub delta_rows: Vec<f64>,
    /// Ids of the live appended rows.
    pub delta_ids: Vec<u32>,
    /// Coordinates of tombstoned base rows (parallel to `dead_ids`).
    pub dead_rows: Vec<f64>,
    /// Ids of tombstoned base rows, sorted ascending.
    pub dead_ids: Vec<u32>,
}

/// One immutable weight population.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightSetState {
    /// Population name.
    pub name: String,
    /// One weighting vector per customer.
    pub weights: Vec<Vec<f64>>,
}

/// A complete catalog image at one WAL position.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CatalogState {
    /// The highest LSN this image covers; recovery replays only WAL
    /// records with a strictly greater LSN.
    pub last_lsn: u64,
    /// Every dataset, sorted by name (deterministic bytes).
    pub datasets: Vec<DatasetState>,
    /// Every weight population, sorted by name.
    pub weight_sets: Vec<WeightSetState>,
}

fn put_ids(w: &mut ByteWriter, ids: &[u32]) {
    w.put_usize(ids.len());
    for &id in ids {
        w.put_u64(u64::from(id));
    }
}

fn take_ids(r: &mut ByteReader<'_>, what: &'static str) -> Result<Vec<u32>, DecodeError> {
    let n = r.take_count(8, what)?;
    (0..n)
        .map(|_| {
            let id = r.take_u64(what)?;
            u32::try_from(id).map_err(|_| DecodeError::new(what))
        })
        .collect()
}

impl CatalogState {
    /// Encodes the image into a complete snapshot file (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.last_lsn);
        w.put_usize(self.datasets.len());
        for d in &self.datasets {
            w.put_str(&d.name);
            w.put_u64(d.dim);
            w.put_u64(d.base_epoch);
            w.put_u64(d.appends);
            w.put_u64(d.deletes);
            w.put_f64s(&d.base_coords);
            w.put_f64s(&d.delta_rows);
            put_ids(&mut w, &d.delta_ids);
            w.put_f64s(&d.dead_rows);
            put_ids(&mut w, &d.dead_ids);
        }
        w.put_usize(self.weight_sets.len());
        for ws in &self.weight_sets {
            w.put_str(&ws.name);
            w.put_usize(ws.weights.len());
            for weight in &ws.weights {
                w.put_f64s(weight);
            }
        }
        let body = w.into_vec();
        let mut file = Vec::with_capacity(9 + body.len());
        file.extend_from_slice(&SNAPSHOT_MAGIC);
        file.push(SNAPSHOT_VERSION);
        file.extend_from_slice(&crc32::checksum(&body).to_le_bytes());
        file.extend_from_slice(&body);
        file
    }

    /// Decodes a snapshot file.
    ///
    /// # Errors
    /// [`super::StorageError::SnapshotCorrupt`] on a bad magic, an
    /// unsupported version, a CRC mismatch, or an undecodable body —
    /// snapshots are installed atomically, so any of these means the
    /// image is damaged, not half-written.
    pub fn decode(file: &[u8]) -> Result<Self, super::StorageError> {
        use super::StorageError;
        // lint: allow(no-panic) — short-circuit: `file[..4]` is reached
        // only after `file.len() >= 9` holds.
        if file.len() < 9 || file[..4] != SNAPSHOT_MAGIC {
            return Err(StorageError::SnapshotCorrupt {
                reason: "bad snapshot magic",
            });
        }
        // lint: allow(no-panic) — header bytes 0..9 are in bounds after
        // the `file.len() >= 9` check above.
        if file[4] != SNAPSHOT_VERSION {
            return Err(StorageError::SnapshotCorrupt {
                reason: "unsupported snapshot version",
            });
        }
        // lint: allow(no-panic) — same `file.len() >= 9` bound.
        let crc = u32::from_le_bytes([file[5], file[6], file[7], file[8]]);
        // lint: allow(no-panic) — same `file.len() >= 9` bound.
        let body = &file[9..];
        if crc32::checksum(body) != crc {
            return Err(StorageError::SnapshotCorrupt {
                reason: "snapshot crc mismatch",
            });
        }
        Self::decode_body(body).map_err(|_| StorageError::SnapshotCorrupt {
            reason: "snapshot body undecodable",
        })
    }

    fn decode_body(body: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(body);
        let last_lsn = r.take_u64("snapshot lsn")?;
        let n = r.take_count(1, "snapshot dataset count")?;
        let mut datasets = Vec::with_capacity(n);
        for _ in 0..n {
            datasets.push(DatasetState {
                name: r.take_str("snapshot dataset name")?,
                dim: r.take_u64("snapshot dim")?,
                base_epoch: r.take_u64("snapshot base epoch")?,
                appends: r.take_u64("snapshot appends")?,
                deletes: r.take_u64("snapshot deletes")?,
                base_coords: r.take_f64s("snapshot base coords")?,
                delta_rows: r.take_f64s("snapshot delta rows")?,
                delta_ids: take_ids(&mut r, "snapshot delta ids")?,
                dead_rows: r.take_f64s("snapshot dead rows")?,
                dead_ids: take_ids(&mut r, "snapshot dead ids")?,
            });
        }
        let w = r.take_count(1, "snapshot weight-set count")?;
        let mut weight_sets = Vec::with_capacity(w);
        for _ in 0..w {
            let name = r.take_str("snapshot weight-set name")?;
            let count = r.take_count(8, "snapshot weight count")?;
            let weights = (0..count)
                .map(|_| r.take_f64s("snapshot weight vector"))
                .collect::<Result<Vec<Vec<f64>>, DecodeError>>()?;
            weight_sets.push(WeightSetState { name, weights });
        }
        r.finish()?;
        Ok(Self {
            last_lsn,
            datasets,
            weight_sets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CatalogState {
        CatalogState {
            last_lsn: 41,
            datasets: vec![DatasetState {
                name: "p".into(),
                dim: 2,
                base_epoch: 3,
                appends: 7,
                deletes: 2,
                base_coords: vec![0.1, -0.0, 2.5, 3.5],
                delta_rows: vec![9.0, 9.5],
                delta_ids: vec![6],
                dead_rows: vec![0.1, -0.0],
                dead_ids: vec![0],
            }],
            weight_sets: vec![WeightSetState {
                name: "cust".into(),
                weights: vec![vec![0.5, 0.5], vec![1.0, 0.0]],
            }],
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let state = sample_state();
        let file = state.encode();
        let back = CatalogState::decode(&file).unwrap();
        assert_eq!(back, state);
        assert_eq!(
            back.datasets[0].base_coords[1].to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let file = sample_state().encode();
        // Bad magic.
        let mut bad = file.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CatalogState::decode(&bad),
            Err(crate::storage::StorageError::SnapshotCorrupt { .. })
        ));
        // Unsupported version.
        let mut bad = file.clone();
        bad[4] = 99;
        assert!(CatalogState::decode(&bad).is_err());
        // Any single corrupted body byte must trip the CRC.
        for idx in [9, 17, file.len() - 1] {
            let mut bad = file.clone();
            bad[idx] ^= 0x01;
            assert!(CatalogState::decode(&bad).is_err(), "byte {idx}");
        }
        // Truncations anywhere must fail cleanly too.
        for cut in 0..file.len() {
            assert!(CatalogState::decode(&file[..cut]).is_err(), "cut {cut}");
        }
    }
}
