//! WAL record format: the wire codec's framing discipline applied to
//! disk.
//!
//! Each record is one self-delimiting unit:
//!
//! ```text
//! +----------+-----------+-----------+------------------------+
//! | "WQRW"   | len: u32  | crc: u32  | payload (len bytes)    |
//! | 4 bytes  | LE        | LE        | lsn u64, tag u8, body  |
//! +----------+-----------+-----------+------------------------+
//! ```
//!
//! The payload reuses [`wqrtq_codec`]'s primitives — little-endian
//! integers, `f64`s by IEEE-754 bit pattern — so a replayed mutation is
//! **bit-identical** to the one that was logged, exactly like a wire
//! round trip. The CRC covers the payload; the magic and length let a
//! scanner resynchronise its trust: any violation (bad magic, impossible
//! length, short payload, CRC mismatch) marks the spot where the last
//! crash tore the log, and everything before it is the longest valid
//! prefix.

use wqrtq_codec::{crc32, ByteReader, ByteWriter, DecodeError};
use wqrtq_geom::Weight;

/// Per-record magic preamble (`WQRW` — WQRTQ WAL record).
pub const RECORD_MAGIC: [u8; 4] = *b"WQRW";

/// Bytes of header before the payload: magic + length + CRC.
pub const RECORD_HEADER_LEN: usize = 12;

/// Upper bound on one record's payload (1 GiB). A length field beyond
/// this is treated as torn-tail corruption rather than trusted, and
/// [`super::Durability::log`] refuses to write a larger record in the
/// first place.
pub const MAX_WAL_RECORD_LEN: usize = 1 << 30;

/// One durable mutation, as read back from the log (owned — the replay
/// path feeds these through the normal catalog mutation methods).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Dataset registration (or replacement): a fresh base.
    Register {
        /// Dataset name.
        name: String,
        /// Dimensionality.
        dim: u64,
        /// Flat row-major base coordinates.
        coords: Vec<f64>,
    },
    /// Rows appended to the delta memtable.
    Append {
        /// Dataset name.
        name: String,
        /// Flat row-major appended coordinates.
        points: Vec<f64>,
    },
    /// Points deleted by stable id.
    Delete {
        /// Dataset name.
        name: String,
        /// The deleted ids, in request order.
        ids: Vec<u32>,
    },
    /// An immutable weight population registration.
    RegisterWeights {
        /// Population name.
        name: String,
        /// One weighting vector per customer.
        weights: Vec<Vec<f64>>,
    },
    /// An installed compaction: base + delta − tombstones merged into a
    /// fresh base in canonical order. The merge is deterministic, so the
    /// record carries no data — replay recomputes it.
    Compact {
        /// Dataset name.
        name: String,
    },
}

/// A borrowed view of a mutation about to be logged — encoding borrows
/// the catalog's own buffers, so logging a million-row append copies the
/// rows into the record bytes exactly once (no intermediate owned
/// `WalRecord`).
#[derive(Clone, Copy, Debug)]
pub enum WalRecordRef<'a> {
    /// See [`WalRecord::Register`].
    Register {
        /// Dataset name.
        name: &'a str,
        /// Dimensionality.
        dim: u64,
        /// Flat row-major base coordinates.
        coords: &'a [f64],
    },
    /// See [`WalRecord::Append`].
    Append {
        /// Dataset name.
        name: &'a str,
        /// Flat row-major appended coordinates.
        points: &'a [f64],
    },
    /// See [`WalRecord::Delete`].
    Delete {
        /// Dataset name.
        name: &'a str,
        /// The deleted ids, in request order.
        ids: &'a [u32],
    },
    /// See [`WalRecord::RegisterWeights`].
    RegisterWeights {
        /// Population name.
        name: &'a str,
        /// One weighting vector per customer.
        weights: &'a [Weight],
    },
    /// See [`WalRecord::Compact`].
    Compact {
        /// Dataset name.
        name: &'a str,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_APPEND: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_REGISTER_WEIGHTS: u8 = 4;
const TAG_COMPACT: u8 = 5;

impl WalRecordRef<'_> {
    /// Encodes the record under `lsn` into a complete framed unit
    /// (header + payload), ready to append to the log.
    pub fn encode(&self, lsn: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(lsn);
        match *self {
            WalRecordRef::Register { name, dim, coords } => {
                w.put_u8(TAG_REGISTER);
                w.put_str(name);
                w.put_u64(dim);
                w.put_f64s(coords);
            }
            WalRecordRef::Append { name, points } => {
                w.put_u8(TAG_APPEND);
                w.put_str(name);
                w.put_f64s(points);
            }
            WalRecordRef::Delete { name, ids } => {
                w.put_u8(TAG_DELETE);
                w.put_str(name);
                w.put_usize(ids.len());
                for &id in ids {
                    w.put_u64(u64::from(id));
                }
            }
            WalRecordRef::RegisterWeights { name, weights } => {
                w.put_u8(TAG_REGISTER_WEIGHTS);
                w.put_str(name);
                w.put_usize(weights.len());
                for weight in weights {
                    w.put_f64s(weight.as_slice());
                }
            }
            WalRecordRef::Compact { name } => {
                w.put_u8(TAG_COMPACT);
                w.put_str(name);
            }
        }
        let payload = w.into_vec();
        let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        framed.extend_from_slice(&RECORD_MAGIC);
        // lint: allow(narrowing-cast) — any record that reaches the WAL
        // passed the `MAX_WAL_RECORD_LEN` (1 GiB) check in
        // `Durability::log`, so the length fits in u32; an oversized
        // encode is rejected there before these bytes are written.
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32::checksum(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    }
}

/// Decodes one CRC-verified payload into `(lsn, record)`.
///
/// # Errors
/// [`DecodeError`] on a structurally malformed payload — the bytes
/// passed their CRC, so this is not a torn write but genuine corruption
/// (or a version the reader does not speak).
pub fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), DecodeError> {
    let mut r = ByteReader::new(payload);
    let lsn = r.take_u64("wal lsn")?;
    let tag = r.take_u8("wal record tag")?;
    let record = match tag {
        TAG_REGISTER => WalRecord::Register {
            name: r.take_str("wal register name")?,
            dim: r.take_u64("wal register dim")?,
            coords: r.take_f64s("wal register coords")?,
        },
        TAG_APPEND => WalRecord::Append {
            name: r.take_str("wal append name")?,
            points: r.take_f64s("wal append points")?,
        },
        TAG_DELETE => {
            let name = r.take_str("wal delete name")?;
            let n = r.take_count(8, "wal delete id count")?;
            let ids = (0..n)
                .map(|_| {
                    let id = r.take_u64("wal delete id")?;
                    u32::try_from(id).map_err(|_| DecodeError::new("wal delete id exceeds u32"))
                })
                .collect::<Result<Vec<u32>, DecodeError>>()?;
            WalRecord::Delete { name, ids }
        }
        TAG_REGISTER_WEIGHTS => {
            let name = r.take_str("wal weights name")?;
            let n = r.take_count(8, "wal weight count")?;
            let weights = (0..n)
                .map(|_| r.take_f64s("wal weight vector"))
                .collect::<Result<Vec<Vec<f64>>, DecodeError>>()?;
            WalRecord::RegisterWeights { name, weights }
        }
        TAG_COMPACT => WalRecord::Compact {
            name: r.take_str("wal compact name")?,
        },
        _ => return Err(DecodeError::new("unknown wal record tag")),
    };
    r.finish()?;
    Ok((lsn, record))
}

/// The result of scanning a WAL image from its first byte.
#[derive(Debug)]
pub struct WalReadout {
    /// Every structurally valid record, in log order, with its LSN.
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes of the longest valid prefix — where appending may resume
    /// after truncating a torn tail.
    pub valid_len: u64,
    /// Whether the scan stopped before the end of the image (a torn
    /// tail: short header, bad magic, impossible length, short payload,
    /// or CRC mismatch). The tail bytes are unrecoverable by design —
    /// the crash interrupted their write before any acknowledgement.
    pub torn: bool,
}

/// Scans a WAL image, collecting the longest valid prefix of records.
///
/// Torn-write damage (anything the framing or CRC rejects) ends the scan
/// with `torn = true` — never an error, because an append interrupted by
/// a crash is the expected failure mode. A payload that *passes* its CRC
/// but does not decode is different: the record was written that way, so
/// the log is corrupt and the scan fails with [`DecodeError`].
///
/// # Errors
/// [`DecodeError`] on a CRC-valid but undecodable payload.
pub fn scan_wal(image: &[u8]) -> Result<WalReadout, DecodeError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while pos < image.len() {
        // lint: allow(no-panic) — loop guard: `pos < image.len()`, and
        // `pos` only advances by fully-validated record lengths.
        let rest = &image[pos..];
        // lint: allow(no-panic) — short-circuit: `rest[..4]` is reached
        // only after `rest.len() >= RECORD_HEADER_LEN` (= 12) holds.
        if rest.len() < RECORD_HEADER_LEN || rest[..4] != RECORD_MAGIC {
            torn = true;
            break;
        }
        // lint: allow(no-panic) — header bytes 4..12 are in bounds: the
        // check above guarantees `rest.len() >= RECORD_HEADER_LEN` (12).
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        // lint: allow(no-panic) — same bound as the line above.
        let crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        if len > MAX_WAL_RECORD_LEN || rest.len() < RECORD_HEADER_LEN + len {
            torn = true;
            break;
        }
        // lint: allow(no-panic) — the torn-write check above guarantees
        // `rest.len() >= RECORD_HEADER_LEN + len`.
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32::checksum(payload) != crc {
            torn = true;
            break;
        }
        records.push(decode_payload(payload)?);
        pos += RECORD_HEADER_LEN + len;
    }
    Ok(WalReadout {
        records,
        valid_len: pos as u64,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(u64, WalRecord)> {
        vec![
            (
                1,
                WalRecord::Register {
                    name: "p".into(),
                    dim: 2,
                    coords: vec![0.25, -0.0, 1.5, 2.0f64.powi(-1074)],
                },
            ),
            (
                2,
                WalRecord::Append {
                    name: "p".into(),
                    points: vec![0.5, 0.5],
                },
            ),
            (
                3,
                WalRecord::Delete {
                    name: "p".into(),
                    ids: vec![1, 4],
                },
            ),
            (
                4,
                WalRecord::RegisterWeights {
                    name: "cust".into(),
                    weights: vec![vec![0.5, 0.5], vec![0.9, 0.1]],
                },
            ),
            (5, WalRecord::Compact { name: "p".into() }),
        ]
    }

    fn encode_all(records: &[(u64, WalRecord)]) -> Vec<u8> {
        let mut image = Vec::new();
        for (lsn, rec) in records {
            image.extend_from_slice(&as_ref(rec).encode(*lsn));
        }
        image
    }

    fn as_ref(rec: &WalRecord) -> WalRecordRef<'_> {
        match rec {
            WalRecord::Register { name, dim, coords } => WalRecordRef::Register {
                name,
                dim: *dim,
                coords,
            },
            WalRecord::Append { name, points } => WalRecordRef::Append { name, points },
            WalRecord::Delete { name, ids } => WalRecordRef::Delete { name, ids },
            WalRecord::RegisterWeights { name, weights } => {
                // Tests only: round through Weight for the borrow shape.
                unreachable!("weights variant exercised via encode_weights, got {name} {weights:?}")
            }
            WalRecord::Compact { name } => WalRecordRef::Compact { name },
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let records = sample_records();
        let mut image = Vec::new();
        for (lsn, rec) in &records {
            let framed = match rec {
                WalRecord::RegisterWeights { name, weights } => {
                    let ws: Vec<Weight> = weights.iter().map(|w| Weight::new(w.clone())).collect();
                    WalRecordRef::RegisterWeights { name, weights: &ws }.encode(*lsn)
                }
                other => as_ref(other).encode(*lsn),
            };
            image.extend_from_slice(&framed);
        }
        let readout = scan_wal(&image).unwrap();
        assert!(!readout.torn);
        assert_eq!(readout.valid_len, image.len() as u64);
        assert_eq!(readout.records, records);
        // Bit-identity of the floats, not just PartialEq.
        if let WalRecord::Register { coords, .. } = &readout.records[0].1 {
            assert_eq!(coords[1].to_bits(), (-0.0f64).to_bits());
            assert_eq!(coords[3].to_bits(), 2.0f64.powi(-1074).to_bits());
        } else {
            panic!("first record must be the registration");
        }
    }

    #[test]
    fn every_truncation_offset_recovers_the_longest_valid_prefix() {
        let records: Vec<(u64, WalRecord)> = sample_records()
            .into_iter()
            .filter(|(_, r)| !matches!(r, WalRecord::RegisterWeights { .. }))
            .collect();
        let image = encode_all(&records);
        // Record end offsets, for computing the expected prefix.
        let mut ends = Vec::new();
        let mut pos = 0;
        for (lsn, rec) in &records {
            pos += as_ref(rec).encode(*lsn).len();
            ends.push(pos);
        }
        for cut in 0..=image.len() {
            let readout = scan_wal(&image[..cut]).expect("truncation never errors");
            let expected = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(readout.records.len(), expected, "cut {cut}");
            assert_eq!(
                readout.valid_len,
                ends[..expected].last().copied().unwrap_or(0) as u64,
                "cut {cut}"
            );
            assert_eq!(
                readout.torn,
                cut != ends[..expected].last().copied().unwrap_or(0)
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_torn_tail_not_garbage() {
        let records = vec![
            (
                1,
                WalRecord::Append {
                    name: "p".into(),
                    points: vec![1.0, 2.0],
                },
            ),
            (
                2,
                WalRecord::Append {
                    name: "p".into(),
                    points: vec![3.0, 4.0],
                },
            ),
        ];
        let image = encode_all(&records);
        let first_len = as_ref(&records[0].1).encode(1).len();
        // Flip a byte inside the second record's payload: the first
        // record must survive, the second must be rejected by its CRC.
        let mut bad = image.clone();
        let idx = first_len + RECORD_HEADER_LEN + 3;
        bad[idx] ^= 0x40;
        let readout = scan_wal(&bad).unwrap();
        assert!(readout.torn);
        assert_eq!(readout.records.len(), 1);
        assert_eq!(readout.valid_len, first_len as u64);
    }

    #[test]
    fn oversized_length_field_is_torn_not_trusted() {
        let mut image = encode_all(&[(
            1,
            WalRecord::Append {
                name: "p".into(),
                points: vec![1.0],
            },
        )]);
        // Corrupt the length field to an absurd value.
        image[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        let readout = scan_wal(&image).unwrap();
        assert!(readout.torn);
        assert!(readout.records.is_empty());
        assert_eq!(readout.valid_len, 0);
    }

    #[test]
    fn crc_valid_garbage_payload_is_a_typed_decode_error() {
        // Hand-frame a payload with an unknown tag but a correct CRC:
        // this was *written* malformed, so it must be an error, not a
        // silently dropped tail.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(99); // no such tag
        let mut image = Vec::new();
        image.extend_from_slice(&RECORD_MAGIC);
        image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        image.extend_from_slice(&crc32::checksum(&payload).to_le_bytes());
        image.extend_from_slice(&payload);
        assert!(scan_wal(&image).is_err());
    }
}
