//! Durability: write-ahead log + atomic snapshots + crash recovery.
//!
//! The catalog's delta-overlay layout (bulk base, copy-on-write delta
//! memtable, id-sorted tombstones) is already LSM-shaped; this module
//! persists it as the classic pair:
//!
//! * a **WAL** of mutation records (see [`record`]) appended inside the
//!   catalog's write lock, so log order *is* apply order;
//! * a **snapshot** of the full catalog (see [`snapshot`]) written
//!   atomically whenever a compaction installs (and on explicit
//!   [`crate::Engine::checkpoint`] calls), after which the WAL resets.
//!
//! **Recovery** ([`Durability::open`]) loads the snapshot, truncates any
//! torn WAL tail to the longest valid prefix, and hands back the records
//! beyond the snapshot's LSN; the engine replays them through the same
//! catalog mutation methods that produced them, so the recovered catalog
//! answers every request **bit-identically** to the never-restarted one
//! and resumes the exact epoch triple (the snapshot persists the
//! monotone `appends`/`deletes` counters, not just the live rows).
//!
//! ## Failure taxonomy
//!
//! *Torn-tail* damage — short header, bad record magic, impossible
//! length, short payload, CRC mismatch — is the expected signature of a
//! crash mid-append: recovery silently keeps the longest valid prefix
//! (nothing past it was ever acknowledged) and truncates. *Structural*
//! damage — a corrupt snapshot, a CRC-valid record that does not decode,
//! a non-monotonic LSN — cannot be produced by a crash under this
//! design, so it surfaces as a typed [`StorageError`], never a panic and
//! never silent data loss.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades the crash window against append latency:
//! `Always` fsyncs every record before the mutation is acknowledged,
//! `EveryN(n)` amortises one fsync over `n` records, `Never` leaves
//! flushing to the OS — but even then, dropping the engine syncs the log
//! durably, so a *graceful* restart loses nothing under any policy.

mod backend;
pub mod record;
pub mod snapshot;

pub use backend::{
    DiskBackend, MemBackend, StorageBackend, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE, WAL_FILE,
};
pub use record::{WalReadout, WalRecord, WalRecordRef, MAX_WAL_RECORD_LEN, RECORD_MAGIC};
pub use snapshot::{CatalogState, DatasetState, WeightSetState, SNAPSHOT_MAGIC};

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// When WAL appends are forced to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync every record before acknowledging the mutation — the
    /// no-acknowledged-loss default.
    #[default]
    Always,
    /// Fsync once every `n` records (group commit): a crash can lose at
    /// most the last `n − 1` acknowledged mutations.
    EveryN(u64),
    /// Never fsync on the append path; the OS flushes when it pleases.
    /// A graceful shutdown still syncs (the engine syncs the log on
    /// drop), so this only widens the *crash* window.
    Never,
}

/// Durability-layer failures. Every variant is a typed, recoverable
/// error — corruption and IO trouble never panic the engine.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying backend (filesystem) failed.
    Io(io::Error),
    /// The snapshot image is damaged (bad magic, version, CRC, or
    /// body). Snapshots install atomically, so this is real corruption,
    /// not a torn write.
    SnapshotCorrupt {
        /// What the decoder rejected.
        reason: &'static str,
    },
    /// A WAL record passed its CRC but did not decode — it was written
    /// malformed, which replay must not paper over.
    WalCorrupt {
        /// What the decoder rejected.
        reason: String,
    },
    /// WAL record LSNs must be strictly increasing; a duplicate or
    /// regression means the log was spliced or doubly written.
    NonMonotonicLsn {
        /// The previous record's LSN.
        prev: u64,
        /// The offending record's LSN.
        got: u64,
    },
    /// A mutation would encode past [`MAX_WAL_RECORD_LEN`].
    OversizedRecord {
        /// The record's payload length.
        len: usize,
        /// The cap.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::SnapshotCorrupt { reason } => {
                write!(f, "snapshot corrupt: {reason}")
            }
            StorageError::WalCorrupt { reason } => write!(f, "wal corrupt: {reason}"),
            StorageError::NonMonotonicLsn { prev, got } => {
                write!(f, "wal lsn not monotonic: {got} after {prev}")
            }
            StorageError::OversizedRecord { len, max } => {
                write!(f, "wal record of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Monotone durability counters, folded into
/// [`crate::CatalogStats`] when a durability layer is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (replay excluded).
    pub wal_appends: u64,
    /// Snapshots installed.
    pub snapshot_writes: u64,
    /// Recoveries performed (1 after resuming pre-existing durable
    /// state, 0 for a fresh data directory).
    pub recoveries: u64,
    /// WAL records replayed by the last recovery.
    pub wal_replayed: u64,
}

/// The durable state [`Durability::open`] hands back for replay.
#[derive(Debug)]
pub struct Recovered {
    /// The durability layer, positioned to append after the last valid
    /// record. Attach it to the catalog only *after* replaying, so the
    /// replayed mutations are not logged twice.
    pub durability: Durability,
    /// The snapshot image, if one was ever installed.
    pub state: Option<CatalogState>,
    /// WAL records beyond the snapshot, in log order, to replay through
    /// the normal catalog mutation methods.
    pub records: Vec<WalRecord>,
}

/// One engine's durability layer: an LSN allocator over a
/// [`StorageBackend`], logging mutations and installing snapshots.
#[derive(Debug)]
pub struct Durability {
    backend: Box<dyn StorageBackend>,
    fsync: FsyncPolicy,
    /// The next LSN to allocate. Mutations log under the catalog write
    /// lock, so allocation and append are never reordered relative to
    /// each other.
    next_lsn: AtomicU64,
    /// Appends since the last fsync (drives [`FsyncPolicy::EveryN`]).
    unsynced: AtomicU64,
    wal_appends: AtomicU64,
    snapshot_writes: AtomicU64,
    recoveries: AtomicU64,
    wal_replayed: AtomicU64,
}

impl Durability {
    /// Opens the backend and recovers: loads the snapshot, scans the
    /// WAL, truncates any torn tail to the longest valid prefix, and
    /// returns the records past the snapshot's LSN for replay.
    ///
    /// # Errors
    /// [`StorageError::Io`] on backend failure and the structural
    /// variants ([`StorageError::SnapshotCorrupt`] /
    /// [`StorageError::WalCorrupt`] / [`StorageError::NonMonotonicLsn`])
    /// on damage a crash cannot explain. A torn WAL tail is *not* an
    /// error.
    pub fn open(
        backend: Box<dyn StorageBackend>,
        fsync: FsyncPolicy,
    ) -> Result<Recovered, StorageError> {
        let state = match backend.snapshot_bytes()? {
            Some(bytes) => Some(CatalogState::decode(&bytes)?),
            None => None,
        };
        let image = backend.wal_bytes()?;
        let had_state = state.is_some() || !image.is_empty();
        let readout = record::scan_wal(&image).map_err(|e| StorageError::WalCorrupt {
            reason: e.to_string(),
        })?;
        let mut prev_lsn = None;
        for &(lsn, _) in &readout.records {
            if let Some(prev) = prev_lsn {
                if lsn <= prev {
                    return Err(StorageError::NonMonotonicLsn { prev, got: lsn });
                }
            }
            prev_lsn = Some(lsn);
        }
        if readout.torn {
            backend.wal_truncate(readout.valid_len)?;
        }
        let snapshot_lsn = state.as_ref().map_or(0, |s| s.last_lsn);
        let next_lsn = prev_lsn.unwrap_or(0).max(snapshot_lsn) + 1;
        let records: Vec<WalRecord> = readout
            .records
            .into_iter()
            .filter(|&(lsn, _)| lsn > snapshot_lsn)
            .map(|(_, rec)| rec)
            .collect();
        let durability = Durability {
            backend,
            fsync,
            next_lsn: AtomicU64::new(next_lsn),
            unsynced: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            snapshot_writes: AtomicU64::new(0),
            recoveries: AtomicU64::new(u64::from(had_state)),
            wal_replayed: AtomicU64::new(records.len() as u64),
        };
        Ok(Recovered {
            durability,
            state,
            records,
        })
    }

    /// Appends one mutation record under a fresh LSN, fsyncing per
    /// policy, and returns the LSN. Callers hold the catalog write lock,
    /// so log order equals apply order.
    ///
    /// # Errors
    /// [`StorageError::OversizedRecord`] /  [`StorageError::Io`].
    pub fn log(&self, rec: WalRecordRef<'_>) -> Result<u64, StorageError> {
        // ordering: Relaxed — LSN ticket; callers serialize under the
        // catalog write lock (see doc comment), which is the
        // happens-before edge, so the counter only needs atomicity.
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let framed = rec.encode(lsn);
        let payload_len = framed.len() - record::RECORD_HEADER_LEN;
        if payload_len > MAX_WAL_RECORD_LEN {
            return Err(StorageError::OversizedRecord {
                len: payload_len,
                max: MAX_WAL_RECORD_LEN,
            });
        }
        let sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryN(n) => {
                // ordering: Relaxed — fsync cadence heuristic under the
                // same catalog-lock serialization as the LSN ticket; an
                // off-by-one sync costs one extra fsync, never
                // durability.
                let pending = self.unsynced.fetch_add(1, Ordering::Relaxed) + 1;
                if pending >= n.max(1) {
                    self.unsynced.store(0, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        };
        self.backend.wal_append(&framed, sync)?;
        // ordering: Relaxed — monotonic stats counter, read only by
        // `stats()`.
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Atomically installs `state` as the current snapshot and resets
    /// the WAL. The caller (the catalog) holds its write lock, so no
    /// record can slip between the image and the reset.
    ///
    /// # Errors
    /// [`StorageError::Io`]. The install sequence is crash-safe at
    /// every step, so a failure here never loses acknowledged state —
    /// at worst the old snapshot plus the full WAL remain.
    pub fn checkpoint(&self, state: &CatalogState) -> Result<(), StorageError> {
        self.backend.install_checkpoint(&state.encode())?;
        // ordering: Relaxed — monotonic stats counter, read only by
        // `stats()`.
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The highest LSN allocated so far (0 before any append).
    pub fn last_lsn(&self) -> u64 {
        // ordering: Relaxed — read under the same catalog-lock
        // serialization as the `log()` ticket allocation.
        self.next_lsn.load(Ordering::Relaxed) - 1
    }

    /// Point-in-time durability counters.
    pub fn stats(&self) -> DurabilityStats {
        // ordering: Relaxed — stats snapshot of monotonic counters;
        // monitoring tolerates momentarily-stale values.
        DurabilityStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Graceful shutdown makes the log durable even under
        // FsyncPolicy::Never; a crash obviously skips this, which is
        // exactly the window the policy chose to accept.
        let _ = self.backend.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_mem(backend: &MemBackend) -> Recovered {
        Durability::open(Box::new(backend.clone()), FsyncPolicy::Never).unwrap()
    }

    #[test]
    fn fresh_backend_recovers_nothing() {
        let mem = MemBackend::new();
        let rec = open_mem(&mem);
        assert!(rec.state.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.durability.stats().recoveries, 0);
        assert_eq!(rec.durability.last_lsn(), 0);
    }

    #[test]
    fn log_then_reopen_replays_in_order() {
        let mem = MemBackend::new();
        {
            let d = open_mem(&mem).durability;
            d.log(WalRecordRef::Register {
                name: "p",
                dim: 1,
                coords: &[1.0, 2.0],
            })
            .unwrap();
            d.log(WalRecordRef::Append {
                name: "p",
                points: &[3.0],
            })
            .unwrap();
            assert_eq!(d.stats().wal_appends, 2);
            assert_eq!(d.last_lsn(), 2);
        }
        let rec = open_mem(&mem);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.durability.stats().recoveries, 1);
        assert_eq!(rec.durability.stats().wal_replayed, 2);
        // Appending resumes past the recovered LSNs.
        assert_eq!(
            rec.durability
                .log(WalRecordRef::Compact { name: "p" })
                .unwrap(),
            3
        );
    }

    #[test]
    fn checkpoint_resets_the_wal_and_bounds_replay() {
        let mem = MemBackend::new();
        let d = open_mem(&mem).durability;
        d.log(WalRecordRef::Register {
            name: "p",
            dim: 1,
            coords: &[1.0],
        })
        .unwrap();
        let state = CatalogState {
            last_lsn: d.last_lsn(),
            ..CatalogState::default()
        };
        d.checkpoint(&state).unwrap();
        assert_eq!(mem.wal_len(), 0);
        d.log(WalRecordRef::Append {
            name: "p",
            points: &[2.0],
        })
        .unwrap();
        drop(d);
        let rec = open_mem(&mem);
        assert_eq!(rec.state.as_ref().unwrap().last_lsn, 1);
        // Only the post-checkpoint record replays.
        assert_eq!(rec.records.len(), 1);
        assert!(matches!(rec.records[0], WalRecord::Append { .. }));
        assert_eq!(rec.durability.last_lsn(), 2);
    }

    #[test]
    fn stale_records_below_the_snapshot_lsn_are_skipped() {
        // Simulates a crash after the snapshot rename but before the WAL
        // truncation: old records linger with LSNs the snapshot covers.
        let mem = MemBackend::new();
        let d = open_mem(&mem).durability;
        d.log(WalRecordRef::Register {
            name: "p",
            dim: 1,
            coords: &[1.0],
        })
        .unwrap();
        d.log(WalRecordRef::Append {
            name: "p",
            points: &[2.0],
        })
        .unwrap();
        drop(d);
        // Install a snapshot covering LSN 2 WITHOUT clearing the WAL.
        let state = CatalogState {
            last_lsn: 2,
            ..CatalogState::default()
        };
        mem.mutate_snapshot(|s| *s = Some(state.encode()));
        let rec = open_mem(&mem);
        assert!(rec.records.is_empty(), "covered records must not replay");
        assert_eq!(rec.durability.last_lsn(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let mem = MemBackend::new();
        let d = open_mem(&mem).durability;
        d.log(WalRecordRef::Append {
            name: "p",
            points: &[1.0],
        })
        .unwrap();
        d.log(WalRecordRef::Append {
            name: "p",
            points: &[2.0],
        })
        .unwrap();
        drop(d);
        let full = mem.wal_len();
        mem.mutate_wal(|wal| wal.truncate(full - 5));
        let rec = open_mem(&mem);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(mem.wal_len(), full / 2, "torn tail must be cut");
        // The replacement for the lost record reuses its LSN slot
        // correctly (strictly increasing from the surviving prefix).
        assert_eq!(
            rec.durability
                .log(WalRecordRef::Append {
                    name: "p",
                    points: &[9.0],
                })
                .unwrap(),
            2
        );
    }

    #[test]
    fn duplicate_lsn_is_a_typed_error() {
        let mem = MemBackend::new();
        let d = open_mem(&mem).durability;
        d.log(WalRecordRef::Append {
            name: "p",
            points: &[1.0],
        })
        .unwrap();
        drop(d);
        // Double the record's bytes: same LSN twice.
        mem.mutate_wal(|wal| {
            let copy = wal.clone();
            wal.extend_from_slice(&copy);
        });
        match Durability::open(Box::new(mem.clone()), FsyncPolicy::Never) {
            Err(StorageError::NonMonotonicLsn { prev: 1, got: 1 }) => {}
            other => panic!("expected NonMonotonicLsn, got {other:?}"),
        }
    }

    #[test]
    fn every_n_policy_counts_appends() {
        let mem = MemBackend::new();
        let rec = Durability::open(Box::new(mem.clone()), FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u64 {
            rec.durability
                .log(WalRecordRef::Append {
                    name: "p",
                    points: &[i as f64],
                })
                .unwrap();
        }
        assert_eq!(rec.durability.stats().wal_appends, 7);
    }
}
